//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, groups, `bench_with_input`,
//! `Bencher::iter`) over a plain wall-clock harness: each benchmark is
//! calibrated to the configured measurement time, run in fixed-size
//! samples, and reported as `min / mean / max` nanoseconds per iteration
//! on stdout. No statistics beyond that, no HTML reports.
//!
//! CLI behaviour: positional arguments act as substring filters on the
//! benchmark id; `--test` (what `cargo test --benches` passes) runs every
//! benchmark body exactly once to check it executes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {} // ignore harness flags
                s => filters.push(s.to_string()),
            }
        }
        Criterion { filters, test_mode }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let id = id.to_string();
        if !self.selected(&id) {
            return;
        }
        run_one(&id, self.test_mode, 10, Duration::from_secs(1), &mut f);
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.selected(&full) {
            return;
        }
        run_one(&full, self.criterion.test_mode, self.sample_size, self.measurement_time, &mut f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark id of the form `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    mode: BenchMode,
    /// Nanoseconds per iteration of each timed sample.
    samples: Vec<f64>,
}

enum BenchMode {
    /// Run the closure once (`--test`).
    Once,
    /// Calibrate then time: (samples, time budget).
    Measure(usize, Duration),
}

impl Bencher {
    /// Measures the closure. Results are accumulated into the harness
    /// report; return values are passed through `black_box` so the work is
    /// not optimised away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            BenchMode::Once => {
                black_box(f());
            }
            BenchMode::Measure(samples, budget) => {
                // Calibrate: how many iterations fit one sample slot?
                let t0 = Instant::now();
                black_box(f());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let per_sample = budget.div_duration_f64(once) / samples as f64;
                let iters = per_sample.clamp(1.0, 1e9) as u64;
                for _ in 0..samples {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let ns = t.elapsed().as_nanos() as f64 / iters as f64;
                    self.samples.push(ns);
                }
            }
        }
    }
}

fn run_one(
    id: &str,
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mode =
        if test_mode { BenchMode::Once } else { BenchMode::Measure(sample_size, measurement_time) };
    let mut b = Bencher { mode, samples: Vec::new() };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("{id:<50} [{} {} {}]", format_ns(min), format_ns(mean), format_ns(max));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("prop", 500).to_string(), "prop/500");
    }

    #[test]
    fn measure_collects_samples() {
        let mut b =
            Bencher { mode: BenchMode::Measure(3, Duration::from_millis(10)), samples: Vec::new() };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&ns| ns > 0.0));
        assert!(count > 3);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
        assert_eq!(format_ns(1_500_000_000.0), "1.500 s");
    }
}
