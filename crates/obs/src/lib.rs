//! # crossmine-obs
//!
//! Unified, zero-dependency observability for the CrossMine workspace:
//! one layer shared by the learner (per-clause spans, literal-search and
//! propagation counters), the sampler, and the serving stack (batch spans,
//! queue-wait histograms) — so the efficiency the paper claims (Figures
//! 9–12) is measurable on every run instead of asserted.
//!
//! Three pieces:
//!
//! * [`trace`] — a span/event tracing core: [`ObsHandle::span`] returns an
//!   RAII guard with monotonic timing; a thread-safe
//!   [`Recorder`](trace::Recorder) streams structured events to pluggable
//!   sinks (in-memory [`RingSink`](trace::RingSink), line-oriented
//!   [`JsonlSink`](trace::JsonlSink), [`NoopSink`](trace::NoopSink)).
//! * [`metrics`] — counters, gauges, and the log₂
//!   [`Histogram`](metrics::Histogram) (grown out of `crossmine-serve`,
//!   which now re-exports it), interned by name in a
//!   [`MetricsRegistry`](metrics::MetricsRegistry).
//! * [`report`] — [`TrainReport`]/[`ServeReport`] text rendering (span
//!   table with count/total/p50/p99, counters, histograms) plus JSONL
//!   export for reproducible experiment artifacts.
//! * [`expose`] — Prometheus text exposition ([`render_registry`],
//!   [`PromWriter`]): the same registry rendered as `_total` counters,
//!   gauges, and cumulative `le`-labelled histogram buckets for a
//!   `GET /metrics` scrape endpoint (wired up by `crossmine-serve`).
//! * [`tracectx`] — per-request causal tracing: a [`TraceCtx`] born at
//!   the wire collects a parent-linked span tree across every serving
//!   layer, a [`Tracer`] tail-samples completed traces (every error plus
//!   the slowest K per window) into a bounded ring for the `/trace`
//!   endpoint, and [`Exemplars`] join histogram buckets to stored
//!   traces.
//!
//! ## Cost model
//!
//! The hot loops must pay nothing when observability is off. The default
//! handle, [`ObsHandle::noop`], is a `None` — every instrumentation call
//! is one branch on an `Option` discriminant, takes no clock reading, and
//! performs **zero allocation** (asserted by a counting-allocator test).
//! [`ObsHandle::enabled`] aggregates span timings into lock-free
//! histograms without emitting events; sink-backed handles additionally
//! stream every event. The [`span!`]/[`trace!`] macros compile to nothing
//! under the `compile-out` feature for builds that want the branch gone
//! too.
//!
//! ```
//! use crossmine_obs::{ObsHandle, TrainReport};
//!
//! let obs = ObsHandle::enabled();
//! {
//!     let _clause = obs.span("learner.clause");
//!     obs.add("propagation.passes", 3);
//! }
//! let report = TrainReport::from_handle(&obs);
//! assert!(report.to_string().contains("learner.clause"));
//! ```

#![warn(missing_docs)]

pub mod expose;
pub mod jsonl;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod trace;
pub mod tracectx;

use std::sync::Arc;
use std::time::Instant;

use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use trace::{pop_depth, push_depth, EventKind, Recorder, RingSink, Sink};

pub use expose::{render_registry, PromWriter};
pub use profile::{
    heap_snapshot, process_stats, HeapEntry, LockTimer, LockWait, ProcessStats, ProfileConfig,
    ProfileGuard, ProfileStats, ProfiledAllocator, Profiler,
};
pub use report::{Report, ServeReport, TrainReport};
pub use trace::{Event, FieldValue};
pub use tracectx::{
    CompletedTrace, Exemplars, SpanId, SpanRec, StoredTrace, TraceConfig, TraceCtx, TraceId,
    TraceStats, Tracer, ROOT_SPAN,
};

/// Everything one enabled handle owns; shared by all clones.
#[derive(Debug)]
struct ObsInner {
    registry: MetricsRegistry,
    recorder: Recorder,
    /// Whether span enter/exit and `trace!` points become sink events (in
    /// addition to the always-on aggregated histograms).
    events: bool,
    /// When enabled, every span additionally publishes a frame to this
    /// thread's profiling slot ([`profile::Profiler`]), so instrumented
    /// code shows up in wall profiles without separate annotations.
    profiler: profile::Profiler,
}

/// A cheaply cloneable handle to one observability session — or a no-op.
///
/// The no-op handle (also the [`Default`]) is what every
/// `CrossMineParams`/`ServerConfig` carries unless the caller opts in, so
/// instrumented code paths are free in ordinary runs. All methods are safe
/// to call from any thread.
#[derive(Clone, Default)]
pub struct ObsHandle(Option<Arc<ObsInner>>);

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("ObsHandle(noop)"),
            Some(inner) => {
                write!(f, "ObsHandle(enabled, events: {})", inner.events)
            }
        }
    }
}

impl ObsHandle {
    /// The no-op handle: every call is a branch and nothing else.
    pub fn noop() -> Self {
        ObsHandle(None)
    }

    /// An aggregating handle: span timings, counters, gauges, and
    /// histograms accumulate lock-free; no events are emitted. This is the
    /// lowest-overhead *enabled* mode and what `--report` uses.
    pub fn enabled() -> Self {
        Self::enabled_with_profiler(profile::Profiler::noop())
    }

    /// [`enabled`](Self::enabled) plus continuous profiling: every span
    /// this handle starts also publishes a frame to the calling thread's
    /// [`profile::Profiler`] slot, so the learner's existing `span!`
    /// instrumentation shows up in wall profiles with no extra hooks.
    pub fn enabled_with_profiler(profiler: profile::Profiler) -> Self {
        ObsHandle(Some(Arc::new(ObsInner {
            registry: MetricsRegistry::new(),
            recorder: Recorder::new(Arc::new(trace::NoopSink)),
            events: false,
            profiler,
        })))
    }

    /// An event-streaming handle: everything `enabled` does, plus every
    /// span enter/exit and [`trace!`] point goes to `sink`.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        ObsHandle(Some(Arc::new(ObsInner {
            registry: MetricsRegistry::new(),
            recorder: Recorder::new(sink),
            events: true,
            profiler: profile::Profiler::noop(),
        })))
    }

    /// An event-streaming handle over an in-memory ring of `capacity`
    /// events; returns the ring so callers can drain it.
    pub fn with_ring(capacity: usize) -> (Self, Arc<RingSink>) {
        let ring = Arc::new(RingSink::new(capacity));
        (Self::with_sink(Arc::clone(&ring) as Arc<dyn Sink>), ring)
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.0.as_deref().map(|i| &i.registry)
    }

    /// The profiler this handle publishes spans to — the noop profiler
    /// on plain or disabled handles. Lets downstream layers (e.g. the
    /// learner's count store) register lock timers against the same
    /// profiling session.
    pub fn profiler(&self) -> profile::Profiler {
        self.0.as_deref().map(|i| i.profiler.clone()).unwrap_or_default()
    }

    /// Starts a span named `name`; the returned guard records its duration
    /// into the span histogram (and emits enter/exit events on
    /// event-streaming handles) when dropped.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_with(name, &[])
    }

    /// [`span`](Self::span) with structured fields attached to the enter
    /// event (fields are dropped on aggregate-only handles, which emit no
    /// events).
    #[inline]
    pub fn span_with(
        &self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) -> SpanGuard<'_> {
        match &self.0 {
            None => SpanGuard { inner: None, profile: profile::ProfileGuard::disabled() },
            Some(inner) => {
                if inner.events {
                    inner.recorder.emit(EventKind::Enter, name, None, fields);
                }
                let depth = push_depth();
                SpanGuard {
                    inner: Some(ActiveSpan { obs: inner, name, start: Instant::now(), depth }),
                    profile: inner.profiler.enter(name),
                }
            }
        }
    }

    /// Emits one instant event (only on event-streaming handles) and
    /// counts it under `name` in the registry.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if let Some(inner) = &self.0 {
            if inner.events {
                inner.recorder.emit(EventKind::Instant, name, None, fields);
            }
            inner.registry.counter(name).add(1);
        }
    }

    /// Adds `v` to the counter named `name`.
    #[inline]
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.0 {
            inner.registry.counter(name).add(v);
        }
    }

    /// Sets the gauge named `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        if let Some(inner) = &self.0 {
            inner.registry.gauge(name).set(v);
        }
    }

    /// Records `v` into the value histogram named `name`.
    #[inline]
    pub fn record(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.0 {
            inner.registry.histogram(name).record(v);
        }
    }

    /// The counter named `name`, for hot paths that want to skip the
    /// per-call name lookup. `None` on a no-op handle.
    pub fn counter(&self, name: &'static str) -> Option<Arc<Counter>> {
        self.0.as_deref().map(|i| i.registry.counter(name))
    }

    /// The gauge named `name` (see [`counter`](Self::counter)).
    pub fn gauge(&self, name: &'static str) -> Option<Arc<Gauge>> {
        self.0.as_deref().map(|i| i.registry.gauge(name))
    }

    /// The value histogram named `name` (see [`counter`](Self::counter)).
    pub fn histogram(&self, name: &'static str) -> Option<Arc<Histogram>> {
        self.0.as_deref().map(|i| i.registry.histogram(name))
    }

    /// Flushes the event sink (meaningful for [`JsonlSink`](trace::JsonlSink)).
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            inner.recorder.flush();
        }
    }

    /// Writes the registry's metrics as JSONL (no-op handles write
    /// nothing).
    pub fn write_metrics_jsonl(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        match self.registry() {
            Some(r) => r.write_jsonl(w),
            None => Ok(()),
        }
    }
}

struct ActiveSpan<'a> {
    obs: &'a ObsInner,
    name: &'static str,
    start: Instant,
    depth: u16,
}

/// RAII guard returned by [`ObsHandle::span`]: on drop, records the span's
/// duration (nanoseconds) into the handle's span histogram and restores
/// the thread's nesting depth. On profiling handles it also carries the
/// published profile frame, popped on drop. The disabled guard does
/// nothing.
pub struct SpanGuard<'a> {
    inner: Option<ActiveSpan<'a>>,
    /// The frame published to this thread's profiling slot (disabled on
    /// non-profiling handles); dropped — popped — with the guard.
    profile: profile::ProfileGuard,
}

impl SpanGuard<'_> {
    /// A guard that records nothing (what [`span!`] expands to under the
    /// `compile-out` feature).
    pub fn disabled() -> SpanGuard<'static> {
        SpanGuard { inner: None, profile: profile::ProfileGuard::disabled() }
    }

    /// Whether this guard will record on drop — into the span histogram,
    /// the profiling slot, or both.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some() || self.profile.is_recording()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.inner.take() {
            let ns = span.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            pop_depth(span.depth);
            span.obs.registry.span_histogram(span.name).record(ns);
            if span.obs.events {
                span.obs.recorder.emit(EventKind::Exit, span.name, Some(ns), &[]);
            }
        }
    }
}

/// Starts a span on an [`ObsHandle`]; expands to a disabled guard under
/// the `compile-out` feature. Bind the result (`let _span = span!(…)`) so
/// the guard lives to the end of the scope being timed.
///
/// ```
/// use crossmine_obs::{span, ObsHandle};
/// let obs = ObsHandle::enabled();
/// let _s = span!(obs, "work", items = 3usize);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(,)?) => {{
        #[cfg(feature = "compile-out")]
        {
            $crate::SpanGuard::disabled()
        }
        #[cfg(not(feature = "compile-out"))]
        {
            $obs.span($name)
        }
    }};
    ($obs:expr, $name:expr, $($k:ident = $v:expr),+ $(,)?) => {{
        #[cfg(feature = "compile-out")]
        {
            $crate::SpanGuard::disabled()
        }
        #[cfg(not(feature = "compile-out"))]
        {
            $obs.span_with($name, &[$((stringify!($k), $crate::FieldValue::from($v))),+])
        }
    }};
}

/// Emits an instant event with structured fields; expands to nothing under
/// the `compile-out` feature.
///
/// ```
/// use crossmine_obs::{trace, ObsHandle};
/// let obs = ObsHandle::enabled();
/// trace!(obs, "sampling.done", kept = 10usize);
/// ```
#[macro_export]
macro_rules! trace {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        #[cfg(not(feature = "compile-out"))]
        $obs.event($name, &[$((stringify!($k), $crate::FieldValue::from($v))),*]);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing() {
        let obs = ObsHandle::noop();
        assert!(!obs.is_enabled());
        {
            let g = obs.span("x");
            assert!(!g.is_recording());
        }
        obs.add("c", 1);
        obs.record("h", 1);
        obs.gauge_set("g", 1);
        obs.event("e", &[]);
        assert!(obs.registry().is_none());
        assert!(obs.counter("c").is_none());
    }

    #[test]
    fn enabled_handle_aggregates_without_events() {
        let obs = ObsHandle::enabled();
        {
            let _g = obs.span("learner.clause");
        }
        obs.add("passes", 2);
        let reg = obs.registry().unwrap();
        let spans = reg.span_snapshots();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "learner.clause");
        assert_eq!(spans[0].count, 1);
        assert_eq!(reg.counter_values(), vec![("passes", 2)]);
    }

    #[test]
    fn ring_handle_streams_enter_and_exit() {
        let (obs, ring) = ObsHandle::with_ring(16);
        {
            let _g = obs.span_with("outer", &[("k", FieldValue::U64(1))]);
        }
        obs.event("point", &[("v", FieldValue::U64(7))]);
        let events = ring.drain();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::Enter, EventKind::Exit, EventKind::Instant]);
        assert_eq!(events[0].fields, vec![("k", FieldValue::U64(1))]);
        assert!(events[1].elapsed_ns.is_some());
        // `event` also counts under the registry.
        assert_eq!(obs.registry().unwrap().counter_values(), vec![("point", 1)]);
    }

    #[test]
    #[cfg(not(feature = "compile-out"))]
    fn macros_compile_and_record() {
        let obs = ObsHandle::enabled();
        {
            let _s = span!(obs, "macro.span");
            let _t = span!(obs, "macro.span2", n = 3usize, label = "x");
        }
        trace!(obs, "macro.trace");
        let names: Vec<_> =
            obs.registry().unwrap().span_snapshots().iter().map(|s| s.name).collect();
        assert!(names.contains(&"macro.span"));
        assert!(names.contains(&"macro.span2"));
    }

    #[test]
    fn clones_share_state() {
        let obs = ObsHandle::enabled();
        let clone = obs.clone();
        clone.add("shared", 4);
        assert_eq!(obs.registry().unwrap().counter_values(), vec![("shared", 4)]);
        assert_eq!(format!("{obs:?}"), "ObsHandle(enabled, events: false)");
        assert_eq!(format!("{:?}", ObsHandle::noop()), "ObsHandle(noop)");
    }
}
