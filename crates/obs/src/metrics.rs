//! Lock-free metric primitives — counters, gauges, and fixed-bucket log₂
//! histograms — plus the name-keyed [`MetricsRegistry`] that aggregates
//! them for reporting.
//!
//! Everything is updated with relaxed atomics on the hot path — a worker
//! never takes a lock to record a sample — and read with point-in-time
//! snapshot accessors. Quantiles come from a 40-bucket power-of-two
//! histogram: `quantile(q)` returns the upper bound of the bucket holding
//! the q-th ranked sample, i.e. an over-estimate by at most 2×, which is
//! the standard fidelity/footprint trade for serving dashboards. The
//! histogram began life private to `crossmine-serve`; it lives here so the
//! learner, the propagation layer, and the server all share one
//! implementation (serve re-exports it for compatibility).

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of power-of-two histogram buckets (covers `0..=u64::MAX`).
pub const NUM_BUCKETS: usize = 40;

/// The bucket index of value `v`: bucket `i > 0` holds `[2^(i-1), 2^i - 1]`;
/// bucket 0 holds zero.
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(NUM_BUCKETS - 1)
}

/// Upper bound of bucket `i` (what [`Histogram::quantile`] reports).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram with power-of-two buckets: bucket `i > 0` holds
/// values in `[2^(i-1), 2^i - 1]`; bucket 0 holds zero.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket the
    /// ranked sample falls in; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        self.max()
    }

    /// All per-bucket counts, index-aligned with [`bucket_upper_bound`].
    /// The exposition layer cumulates these into Prometheus `le` buckets.
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Per-bucket counts `(upper_bound, count)` for nonempty buckets.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper_bound(i), n))
            })
            .collect()
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the count.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed instantaneous value (e.g. "positives remaining").
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (may be negative) to the gauge.
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time rendering of one histogram, used by the report and the
/// JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

impl HistSnapshot {
    fn of(name: &'static str, h: &Histogram) -> Self {
        HistSnapshot {
            name,
            count: h.count(),
            sum: h.sum(),
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

/// Name-keyed storage for counters, gauges, value histograms, and span
/// timing histograms. Lookup takes a read lock; first use of a name takes a
/// write lock once. Hot paths that record repeatedly should hold the
/// returned `Arc` instead of re-looking-up.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    /// Span duration histograms (nanoseconds), kept apart from value
    /// histograms so the report can render them as a timing table.
    spans: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
) -> Arc<T> {
    if let Some(v) = map.read().expect("metrics registry poisoned").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("metrics registry poisoned");
    Arc::clone(w.entry(name).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The value histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// The span-duration histogram (nanoseconds) named `name`, created on
    /// first use.
    pub fn span_histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&self.spans, name)
    }

    /// All counters as `(name, value)`, name-ascending.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        let m = self.counters.read().expect("metrics registry poisoned");
        m.iter().map(|(&n, c)| (n, c.get())).collect()
    }

    /// All gauges as `(name, value)`, name-ascending.
    pub fn gauge_values(&self) -> Vec<(&'static str, i64)> {
        let m = self.gauges.read().expect("metrics registry poisoned");
        m.iter().map(|(&n, g)| (n, g.get())).collect()
    }

    /// Handles to all value histograms, name-ascending — for renderers
    /// (like the Prometheus exposition) that need full bucket contents,
    /// not just the [`HistSnapshot`] quantile digest.
    pub fn histogram_handles(&self) -> Vec<(&'static str, Arc<Histogram>)> {
        let m = self.histograms.read().expect("metrics registry poisoned");
        m.iter().map(|(&n, h)| (n, Arc::clone(h))).collect()
    }

    /// Handles to all span-duration histograms, name-ascending (see
    /// [`histogram_handles`](Self::histogram_handles)).
    pub fn span_handles(&self) -> Vec<(&'static str, Arc<Histogram>)> {
        let m = self.spans.read().expect("metrics registry poisoned");
        m.iter().map(|(&n, h)| (n, Arc::clone(h))).collect()
    }

    /// Snapshots of all value histograms, name-ascending.
    pub fn histogram_snapshots(&self) -> Vec<HistSnapshot> {
        let m = self.histograms.read().expect("metrics registry poisoned");
        m.iter().map(|(&n, h)| HistSnapshot::of(n, h)).collect()
    }

    /// Snapshots of all span-duration histograms, name-ascending.
    pub fn span_snapshots(&self) -> Vec<HistSnapshot> {
        let m = self.spans.read().expect("metrics registry poisoned");
        m.iter().map(|(&n, h)| HistSnapshot::of(n, h)).collect()
    }

    /// Writes every metric as one JSON line (`{"metric":"counter",...}`),
    /// the machine-readable counterpart of the text report.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for (name, v) in self.counter_values() {
            writeln!(w, "{{\"metric\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}")?;
        }
        for (name, v) in self.gauge_values() {
            writeln!(w, "{{\"metric\":\"gauge\",\"name\":\"{name}\",\"value\":{v}}}")?;
        }
        for (kind, snaps) in
            [("histogram", self.histogram_snapshots()), ("span", self.span_snapshots())]
        {
            for s in snaps {
                writeln!(
                    w,
                    "{{\"metric\":\"{kind}\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
                     \"p50\":{},\"p99\":{},\"max\":{}}}",
                    s.name, s.count, s.sum, s.p50, s.p99, s.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_special_cased() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 1);
        // The 100 sample sits in bucket [64, 127] -> upper bound 127.
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 10.9).abs() < 1e-9);
    }

    #[test]
    fn quantile_never_exceeds_one_bucket_of_error() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q) as f64;
            let exact = q * 999.0;
            assert!(est >= exact, "quantile {q} must not under-report: {est} < {exact}");
            assert!(est <= exact.max(1.0) * 2.0, "at most 2x over: {est} vs {exact}");
        }
    }

    #[test]
    fn counters_and_gauges() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a").add(1);
        r.counter("a").add(2);
        r.counter("b").add(5);
        assert_eq!(r.counter_values(), vec![("a", 3), ("b", 5)]);
        r.gauge("g").set(-2);
        assert_eq!(r.gauge_values(), vec![("g", -2)]);
        r.histogram("h").record(9);
        let snaps = r.histogram_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!((snaps[0].name, snaps[0].count, snaps[0].max), ("h", 1, 9));
        // Span histograms live in their own namespace.
        r.span_histogram("h").record(1);
        assert_eq!(r.histogram_snapshots()[0].count, 1);
        assert_eq!(r.span_snapshots()[0].count, 1);
    }

    #[test]
    fn jsonl_export_lists_every_metric() {
        let r = MetricsRegistry::new();
        r.counter("c").add(2);
        r.gauge("g").set(-1);
        r.histogram("h").record(5);
        r.span_histogram("s").record(1000);
        let mut out = Vec::new();
        r.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("{\"metric\":\"counter\",\"name\":\"c\",\"value\":2}"));
        assert!(text.contains("{\"metric\":\"gauge\",\"name\":\"g\",\"value\":-1}"));
        assert!(text.contains("\"metric\":\"histogram\",\"name\":\"h\""));
        assert!(text.contains("\"metric\":\"span\",\"name\":\"s\""));
    }
}
