//! JSONL wire format for trace events: a hand-rolled writer and a matching
//! minimal parser, so exported traces can be round-tripped (and tested)
//! without any external JSON dependency.
//!
//! One event is one line:
//!
//! ```text
//! {"seq":3,"thread":0,"depth":1,"kind":"exit","name":"learner.clause",
//!  "elapsed_ns":8123,"fields":{"literals":2}}
//! ```
//!
//! The parser accepts exactly the subset the writer emits (flat object,
//! one optional nested `fields` object, no arrays), which is all a trace
//! consumer needs.

use crate::trace::{Event, EventKind, FieldValue};

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_field_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(x) => out.push_str(&x.to_string()),
        FieldValue::I64(x) => out.push_str(&x.to_string()),
        FieldValue::F64(x) => {
            if x.is_finite() {
                // Always keep a decimal point so the parser can tell floats
                // from integers.
                let s = format!("{x:?}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; encode as null like serde_json does.
                out.push_str("null");
            }
        }
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Renders one event as a single JSON line (no trailing newline).
pub fn event_to_json(ev: &Event) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"seq\":");
    out.push_str(&ev.seq.to_string());
    out.push_str(",\"thread\":");
    out.push_str(&ev.thread.to_string());
    out.push_str(",\"depth\":");
    out.push_str(&ev.depth.to_string());
    out.push_str(",\"kind\":\"");
    out.push_str(ev.kind.as_str());
    out.push_str("\",\"name\":\"");
    escape_json(ev.name, &mut out);
    out.push('"');
    if let Some(ns) = ev.elapsed_ns {
        out.push_str(",\"elapsed_ns\":");
        out.push_str(&ns.to_string());
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in ev.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, &mut out);
        out.push_str("\":");
        push_field_value(v, &mut out);
    }
    out.push_str("}}");
    out
}

/// An owned field value produced by the parser ([`FieldValue`] with owned
/// strings).
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// JSON null (non-finite floats encode as null).
    Null,
}

impl ParsedValue {
    /// Whether this parsed value is the wire form of `v`.
    pub fn matches(&self, v: &FieldValue) -> bool {
        match (self, v) {
            (ParsedValue::U64(a), FieldValue::U64(b)) => a == b,
            (ParsedValue::I64(a), FieldValue::I64(b)) => a == b,
            // Non-negative i64s serialize without a sign and parse as U64.
            (ParsedValue::U64(a), FieldValue::I64(b)) => *b >= 0 && *a == *b as u64,
            (ParsedValue::F64(a), FieldValue::F64(b)) => a == b,
            (ParsedValue::Null, FieldValue::F64(b)) => !b.is_finite(),
            (ParsedValue::Bool(a), FieldValue::Bool(b)) => a == b,
            (ParsedValue::Str(a), FieldValue::Str(b)) => a == b,
            _ => false,
        }
    }
}

/// One event read back from its JSONL line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Global emission order.
    pub seq: u64,
    /// Emitting thread ordinal.
    pub thread: u64,
    /// Span nesting depth at emission.
    pub depth: u16,
    /// "enter" / "exit" / "instant".
    pub kind: String,
    /// Span or trace-point name.
    pub name: String,
    /// Span duration for exit events.
    pub elapsed_ns: Option<u64>,
    /// Structured payload.
    pub fields: Vec<(String, ParsedValue)>,
}

impl ParsedEvent {
    /// The [`EventKind`] this event's `kind` string names, if valid.
    pub fn event_kind(&self) -> Option<EventKind> {
        match self.kind.as_str() {
            "enter" => Some(EventKind::Enter),
            "exit" => Some(EventKind::Exit),
            "instant" => Some(EventKind::Instant),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.s.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let bytes = self.s.get(start..start + len)?;
                    self.i = start + len;
                    out.push_str(std::str::from_utf8(bytes).ok()?);
                }
            }
        }
    }

    fn value(&mut self) -> Option<ParsedValue> {
        match self.peek()? {
            b'"' => Some(ParsedValue::Str(self.string()?)),
            b't' => {
                self.literal("true")?;
                Some(ParsedValue::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Some(ParsedValue::Bool(false))
            }
            b'n' => {
                self.literal("null")?;
                Some(ParsedValue::Null)
            }
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        self.skip_ws();
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Some(())
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<ParsedValue> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(self.s[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).ok()?;
        if text.is_empty() {
            return None;
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            Some(ParsedValue::F64(text.parse().ok()?))
        } else if text.starts_with('-') {
            Some(ParsedValue::I64(text.parse().ok()?))
        } else {
            Some(ParsedValue::U64(text.parse().ok()?))
        }
    }
}

/// Parses one line previously produced by [`event_to_json`]. Returns `None`
/// on any malformed input.
pub fn parse_event(line: &str) -> Option<ParsedEvent> {
    let mut c = Cursor { s: line.trim().as_bytes(), i: 0 };
    c.eat(b'{')?;
    let mut seq = None;
    let mut thread = None;
    let mut depth = None;
    let mut kind = None;
    let mut name = None;
    let mut elapsed_ns = None;
    let mut fields = Vec::new();
    loop {
        if c.peek()? == b'}' {
            c.eat(b'}')?;
            break;
        }
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "seq" | "thread" | "depth" | "elapsed_ns" => {
                let ParsedValue::U64(v) = c.number()? else { return None };
                match key.as_str() {
                    "seq" => seq = Some(v),
                    "thread" => thread = Some(v),
                    "depth" => depth = Some(u16::try_from(v).ok()?),
                    _ => elapsed_ns = Some(v),
                }
            }
            "kind" => kind = Some(c.string()?),
            "name" => name = Some(c.string()?),
            "fields" => {
                c.eat(b'{')?;
                loop {
                    if c.peek()? == b'}' {
                        c.eat(b'}')?;
                        break;
                    }
                    let k = c.string()?;
                    c.eat(b':')?;
                    let v = c.value()?;
                    fields.push((k, v));
                    if c.peek()? == b',' {
                        c.eat(b',')?;
                    }
                }
            }
            _ => return None,
        }
        if c.peek() == Some(b',') {
            c.eat(b',')?;
        }
    }
    Some(ParsedEvent {
        seq: seq?,
        thread: thread?,
        depth: depth?,
        kind: kind?,
        name: name?,
        elapsed_ns,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_control_and_quote() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn event_renders_and_parses() {
        let ev = Event {
            seq: 7,
            thread: 2,
            depth: 1,
            kind: EventKind::Exit,
            name: "propagation.pass",
            elapsed_ns: Some(12_345),
            fields: vec![
                ("ids", FieldValue::U64(42)),
                ("rel", FieldValue::Str("Loan")),
                ("gain", FieldValue::F64(2.5)),
                ("ok", FieldValue::Bool(true)),
                ("delta", FieldValue::I64(-3)),
            ],
        };
        let line = event_to_json(&ev);
        let parsed = parse_event(&line).expect("line parses");
        assert_eq!(parsed.seq, 7);
        assert_eq!(parsed.thread, 2);
        assert_eq!(parsed.depth, 1);
        assert_eq!(parsed.event_kind(), Some(EventKind::Exit));
        assert_eq!(parsed.name, "propagation.pass");
        assert_eq!(parsed.elapsed_ns, Some(12_345));
        assert_eq!(parsed.fields.len(), ev.fields.len());
        for ((pk, pv), (k, v)) in parsed.fields.iter().zip(&ev.fields) {
            assert_eq!(pk, k);
            assert!(pv.matches(v), "{pk}: {pv:?} vs {v:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_event("").is_none());
        assert!(parse_event("{").is_none());
        assert!(parse_event("{\"seq\":1}").is_none(), "missing required keys");
        assert!(parse_event("{\"seq\":1,\"thread\":0,\"depth\":0,\"kind\":\"exit\"}").is_none());
    }
}
