//! Continuous in-process profiling: span-stack wall sampling, allocation
//! attribution, and lock-contention attribution — the third observability
//! pillar next to [`metrics`](crate::metrics) ("what moved?") and
//! [`tracectx`](crate::tracectx) ("why was this request slow?"). This
//! module answers "*where do the cycles, bytes, and lock waits go?*",
//! continuously, on the production binary.
//!
//! Three collectors share one [`Profiler`] handle:
//!
//! * **Span-stack wall sampler.** Every instrumented thread publishes its
//!   current span stack into a per-thread [seqlock] slot: entering a
//!   [`ProfileGuard`] pushes one `&'static str` frame, dropping it pops.
//!   A background sampler thread snapshots every slot at a configurable
//!   rate and folds the observed stacks into collapsed-stack counts —
//!   rendered as `a;b;c N` text ([`Profiler::collapsed`]) and as a
//!   self-contained flamegraph SVG ([`Profiler::flamegraph_svg`]).
//! * **Allocation attribution.** [`ProfiledAllocator`] wraps any
//!   [`GlobalAlloc`]; when profiling is live it charges every allocation's
//!   bytes to the innermost active span of the allocating thread, into a
//!   fixed-size lock-free table (the allocator itself never allocates).
//! * **Contention attribution.** [`LockTimer`]s handed out by
//!   [`Profiler::lock_timer`] time lock acquisitions into per-lock wait
//!   histograms, so "the queue mutex ate the p99" is a measurement.
//!
//! ## Cost model
//!
//! The crate-wide rule holds: **noop is free**. [`Profiler::noop`] (also
//! the [`Default`]) is a `None` inside — [`Profiler::enter`] is one branch
//! and zero allocations, [`LockTimer::noop`] runs the closure and nothing
//! else, and the wrapped allocator is a single relaxed load when no
//! profiler is live. Under the `compile-out` feature every constructor
//! returns the noop, erasing the subsystem from builds that want it gone.
//! The enabled hot path is small by construction: a guard push is two
//! sequence-counter bumps and two relaxed stores into a preallocated
//! per-thread slot; the sampler's work happens on its own thread.
//!
//! [seqlock]: https://en.wikipedia.org/wiki/Seqlock
//!
//! ```
//! use crossmine_obs::profile::Profiler;
//!
//! let profiler = Profiler::noop(); // production default: free
//! {
//!     let _outer = profiler.enter("serve.batch");
//!     let _inner = profiler.enter("serve.eval");
//! } // stacks publish only on enabled profilers
//! assert!(profiler.collapsed().is_empty());
//! ```

use std::alloc::{GlobalAlloc, Layout};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::Histogram;

/// Deepest span stack a slot stores. Pushes beyond this depth are counted
/// (and the stack truncates) rather than lost — CrossMine's deepest real
/// nesting (wire → admission → shard → batch → eval → clause → literal)
/// is well under half of this.
pub const MAX_STACK_DEPTH: usize = 32;

/// How many distinct span names the process-global allocation table can
/// attribute to. Collisions beyond this fall into the overflow bucket
/// rather than being dropped.
pub const HEAP_TABLE_SLOTS: usize = 256;

/// Sampler knobs. The defaults — 97 Hz, allocation tracking on — suit
/// continuous production profiling: a prime rate avoids lockstep with
/// millisecond-periodic work, and ~100 samples/s/thread costs well under
/// a percent of one core.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Wall-sampling rate in samples per second per thread (clamped to
    /// `1..=10_000`). Prime rates avoid phase-locking with periodic work.
    pub hz: u32,
    /// Whether a live [`ProfiledAllocator`] should attribute allocations
    /// while this profiler exists.
    pub track_allocs: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { hz: 97, track_allocs: true }
    }
}

// ---------------------------------------------------------------------------
// Per-thread seqlock slot
// ---------------------------------------------------------------------------

/// One frame: the raw parts of a `&'static str` span name, stored as two
/// relaxed atomics so a concurrent sampler read is a race on *values*,
/// never UB — the seqlock sequence check rejects torn combinations before
/// anything is dereferenced.
#[derive(Debug)]
struct Frame {
    ptr: AtomicUsize,
    len: AtomicUsize,
}

/// The per-thread span-stack slot: a single-writer seqlock. The owning
/// thread pushes/pops frames bracketed by sequence-counter bumps (odd =
/// write in progress); the sampler retries any read that observes an odd
/// or changed sequence, so it never acts on a torn stack.
#[derive(Debug)]
pub(crate) struct SpanSlot {
    /// Seqlock generation: odd while the owner is writing.
    seq: AtomicU64,
    /// Logical stack depth (may exceed [`MAX_STACK_DEPTH`]; frames beyond
    /// it are not stored).
    depth: AtomicUsize,
    frames: [Frame; MAX_STACK_DEPTH],
}

impl SpanSlot {
    fn new() -> Self {
        SpanSlot {
            seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| Frame {
                ptr: AtomicUsize::new(0),
                len: AtomicUsize::new(0),
            }),
        }
    }

    /// Owner-only: push one frame. Two `Release` sequence bumps bracket
    /// the relaxed data stores, the classic seqlock write protocol.
    pub(crate) fn push(&self, name: &'static str) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_STACK_DEPTH {
            self.frames[d].ptr.store(name.as_ptr() as usize, Ordering::Relaxed);
            self.frames[d].len.store(name.len(), Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Owner-only: pop one frame.
    pub(crate) fn pop(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Sampler-side: snapshot the stack into `buf` (raw `(ptr, len)`
    /// pairs). Returns `(frames_copied, torn_retries)`; `None` for
    /// `frames_copied` means the writer kept the slot busy past the retry
    /// budget and this sample should be skipped. The raw pairs are only
    /// turned into strings *after* the sequence check accepted the read,
    /// so every returned pair was genuinely published as one frame.
    pub(crate) fn read_stack(
        &self,
        buf: &mut [(usize, usize); MAX_STACK_DEPTH],
    ) -> (Option<usize>, u64) {
        let mut retries = 0u64;
        // A writer's critical section is a handful of stores; 64 retries
        // only trips if the owner thread is pathologically preempted
        // mid-write, in which case skipping one sample is the right call.
        while retries < 64 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                retries += 1;
                std::hint::spin_loop();
                continue;
            }
            let depth = self.depth.load(Ordering::Relaxed).min(MAX_STACK_DEPTH);
            for (i, slot) in buf.iter_mut().enumerate().take(depth) {
                *slot = (
                    self.frames[i].ptr.load(Ordering::Relaxed),
                    self.frames[i].len.load(Ordering::Relaxed),
                );
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return (Some(depth), retries);
            }
            retries += 1;
        }
        (None, retries)
    }
}

/// Recovers the `&'static str` a frame published. Sound because the only
/// writers of frame pairs are [`SpanSlot::push`] (raw parts of a genuine
/// `&'static str`) and because callers pass pairs validated by the
/// seqlock sequence check — a pair is never assembled from two different
/// writes.
fn frame_name(pair: (usize, usize)) -> &'static str {
    // SAFETY: see the function doc — (ptr, len) is the exact decomposition
    // of a `&'static str` that some `ProfileGuard` published, and 'static
    // string data never moves or deallocates.
    unsafe {
        std::str::from_utf8_unchecked(std::slice::from_raw_parts(pair.0 as *const u8, pair.1))
    }
}

// ---------------------------------------------------------------------------
// Allocation attribution (process-global: the allocator is)
// ---------------------------------------------------------------------------

/// Number of live profilers that asked for allocation tracking; the
/// wrapped allocator attributes only while this is nonzero, so disabled
/// runs pay one relaxed load per allocation.
static ALLOC_PROFILERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The innermost active span of this thread, as raw `&'static str`
    /// parts — `(0, 0)` when none. Maintained by [`ProfileGuard`]; read
    /// by the allocator (which must not touch anything that allocates).
    static CURRENT_SPAN: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

/// One row of the global attribution table. `ptr` doubles as the claim
/// word: slots are claimed by CAS from 0, then `len` is published, then
/// counts accumulate. All cumulative (bytes ever allocated, not live).
struct HeapSlot {
    ptr: AtomicUsize,
    len: AtomicUsize,
    bytes: AtomicU64,
    allocs: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as an array-repeat seed
const HEAP_SLOT_INIT: HeapSlot = HeapSlot {
    ptr: AtomicUsize::new(0),
    len: AtomicUsize::new(0),
    bytes: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
};

/// The process-global span → (bytes, allocs) table, plus an overflow
/// bucket for the (unlikely) case of more than [`HEAP_TABLE_SLOTS`]
/// distinct span names. Fixed-size and lock-free: the allocator writes
/// it, so it can never allocate or block.
static HEAP_TABLE: [HeapSlot; HEAP_TABLE_SLOTS] = [HEAP_SLOT_INIT; HEAP_TABLE_SLOTS];
static HEAP_OVERFLOW_BYTES: AtomicU64 = AtomicU64::new(0);
static HEAP_OVERFLOW_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Bytes allocated with no active span (startup, unprofiled threads).
static HEAP_UNATTRIBUTED_BYTES: AtomicU64 = AtomicU64::new(0);
static HEAP_UNATTRIBUTED_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Charges `size` bytes to the allocating thread's innermost span.
/// Called from inside the global allocator: no allocation, no locks, no
/// panics. `try_with` covers TLS teardown during thread exit.
fn charge_alloc(size: usize) {
    let span = CURRENT_SPAN.try_with(Cell::get).unwrap_or((0, 0));
    if span.0 == 0 {
        HEAP_UNATTRIBUTED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        HEAP_UNATTRIBUTED_ALLOCS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // Open addressing keyed by the name's address. Distinct `&'static
    // str`s have distinct addresses (identical literals that the linker
    // merged share both address and length), so address equality is name
    // equality here.
    let mut idx = (span.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % HEAP_TABLE_SLOTS;
    for _ in 0..HEAP_TABLE_SLOTS {
        let slot = &HEAP_TABLE[idx];
        let cur = slot.ptr.load(Ordering::Relaxed);
        if cur == span.0
            || (cur == 0
                && slot
                    .ptr
                    .compare_exchange(0, span.0, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok())
        {
            slot.len.store(span.1, Ordering::Release);
            slot.bytes.fetch_add(size as u64, Ordering::Relaxed);
            slot.allocs.fetch_add(1, Ordering::Relaxed);
            return;
        }
        idx = (idx + 1) % HEAP_TABLE_SLOTS;
    }
    HEAP_OVERFLOW_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    HEAP_OVERFLOW_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Cumulative allocation attribution of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapEntry {
    /// The innermost span the bytes were charged to.
    pub span: &'static str,
    /// Bytes ever allocated under that span (cumulative, not live).
    pub bytes: u64,
    /// Allocation count.
    pub allocs: u64,
}

/// Snapshot of the process-global allocation table, descending by bytes.
/// Populated only while a [`ProfiledAllocator`] is installed and a
/// profiler with `track_allocs` is live.
pub fn heap_snapshot() -> Vec<HeapEntry> {
    let mut out = Vec::new();
    for slot in HEAP_TABLE.iter() {
        let ptr = slot.ptr.load(Ordering::Relaxed);
        let len = slot.len.load(Ordering::Acquire);
        if ptr == 0 || len == 0 {
            continue;
        }
        let bytes = slot.bytes.load(Ordering::Relaxed);
        let allocs = slot.allocs.load(Ordering::Relaxed);
        if allocs == 0 {
            continue;
        }
        out.push(HeapEntry { span: frame_name((ptr, len)), bytes, allocs });
    }
    out.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.span.cmp(b.span)));
    out
}

/// A [`GlobalAlloc`] wrapper that attributes allocations to the
/// allocating thread's innermost active span. Install it as the global
/// allocator of binaries that want heap attribution:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ProfiledAllocator<std::alloc::System> =
///     ProfiledAllocator(std::alloc::System);
/// ```
///
/// While no profiler with `track_allocs` is live, every call is one
/// relaxed load plus the inner allocator — attribution machinery is never
/// touched.
#[derive(Debug)]
pub struct ProfiledAllocator<A>(pub A);

impl<A> ProfiledAllocator<A> {
    #[inline]
    fn live() -> bool {
        ALLOC_PROFILERS.load(Ordering::Relaxed) > 0
    }
}

// SAFETY: defers every allocation to the inner allocator unchanged; the
// attribution side channel allocates nothing and never unwinds.
unsafe impl<A: GlobalAlloc> GlobalAlloc for ProfiledAllocator<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if Self::live() {
            charge_alloc(layout.size());
        }
        self.0.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if Self::live() {
            charge_alloc(layout.size());
        }
        self.0.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if Self::live() {
            charge_alloc(new_size);
        }
        self.0.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.0.dealloc(ptr, layout)
    }
}

// ---------------------------------------------------------------------------
// Lock contention attribution
// ---------------------------------------------------------------------------

/// Times lock acquisitions into a per-lock wait histogram. Handed out by
/// [`Profiler::lock_timer`] and cached at construction by the code that
/// owns the lock — the noop timer (from a noop profiler, or the
/// [`Default`]) runs the closure with zero further cost.
#[derive(Clone, Default)]
pub struct LockTimer(Option<Arc<Histogram>>);

impl std::fmt::Debug for LockTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "LockTimer(enabled)" } else { "LockTimer(noop)" })
    }
}

impl LockTimer {
    /// The free timer: [`time`](Self::time) is the closure and a branch.
    pub fn noop() -> Self {
        LockTimer(None)
    }

    /// Whether acquisitions are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Runs `acquire` (typically `|| mutex.lock()`) and records how long
    /// it took, in nanoseconds, into the wait histogram.
    #[inline]
    pub fn time<T>(&self, acquire: impl FnOnce() -> T) -> T {
        match &self.0 {
            None => acquire(),
            Some(h) => {
                let t = Instant::now();
                let out = acquire();
                h.record(t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                out
            }
        }
    }
}

/// One lock's wait profile, for [`Profiler::lock_waits`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockWait {
    /// The lock's registered name (e.g. `serve.queue`).
    pub name: &'static str,
    /// Acquisitions recorded.
    pub count: u64,
    /// Total nanoseconds spent acquiring.
    pub total_ns: u64,
    /// Median wait (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile wait (bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Worst wait observed, nanoseconds.
    pub max_ns: u64,
}

// ---------------------------------------------------------------------------
// The profiler proper
// ---------------------------------------------------------------------------

/// Source of unique profiler ids, keying the thread-local slot cache.
static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's registered slots, keyed by profiler id. A thread
    /// rarely serves more than one profiler; the vec keeps re-registration
    /// bounded if it ever does.
    static TLS_SLOTS: RefCell<Vec<(u64, Arc<SpanSlot>)>> = const { RefCell::new(Vec::new()) };
}

/// Folded sample state the sampler thread accumulates.
#[derive(Default)]
struct SampleState {
    /// Collapsed stacks: frame chain → samples observed.
    folded: HashMap<Vec<&'static str>, u64>,
    /// Samples where the thread had no active span.
    idle: u64,
    /// Samples skipped because the seqlock stayed busy.
    skipped: u64,
}

struct ProfilerCore {
    id: u64,
    cfg: ProfileConfig,
    /// Every registered thread slot (threads register on first
    /// [`Profiler::enter`] and are sampled until the profiler dies).
    slots: Mutex<Vec<Arc<SpanSlot>>>,
    state: Mutex<SampleState>,
    /// Per-lock wait histograms, interned by name.
    locks: Mutex<Vec<(&'static str, Arc<Histogram>)>>,
    samples: AtomicU64,
    torn_retries: AtomicU64,
    stop: AtomicBool,
}

impl ProfilerCore {
    fn enter(self: &Arc<Self>, name: &'static str) -> ProfileGuard {
        let slot = TLS_SLOTS
            .try_with(|cache| {
                let mut cache = cache.borrow_mut();
                if let Some((_, slot)) = cache.iter().find(|(id, _)| *id == self.id) {
                    return Some(Arc::clone(slot));
                }
                let slot = Arc::new(SpanSlot::new());
                self.slots.lock().expect("profiler slots poisoned").push(Arc::clone(&slot));
                cache.push((self.id, Arc::clone(&slot)));
                Some(slot)
            })
            .ok()
            .flatten();
        let Some(slot) = slot else {
            return ProfileGuard { inner: None };
        };
        slot.push(name);
        let prev = CURRENT_SPAN
            .try_with(|c| c.replace((name.as_ptr() as usize, name.len())))
            .unwrap_or((0, 0));
        ProfileGuard { inner: Some(GuardInner { slot, prev }) }
    }

    /// One sampling sweep over every registered slot.
    fn sample_once(&self) {
        let slots = {
            let guard = self.slots.lock().expect("profiler slots poisoned");
            guard.clone()
        };
        if slots.is_empty() {
            return;
        }
        let mut buf = [(0usize, 0usize); MAX_STACK_DEPTH];
        let mut state = self.state.lock().expect("profiler state poisoned");
        for slot in &slots {
            let (depth, retries) = slot.read_stack(&mut buf);
            self.torn_retries.fetch_add(retries, Ordering::Relaxed);
            self.samples.fetch_add(1, Ordering::Relaxed);
            match depth {
                None => state.skipped += 1,
                Some(0) => state.idle += 1,
                Some(d) => {
                    let stack: Vec<&'static str> =
                        buf[..d].iter().map(|&pair| frame_name(pair)).collect();
                    *state.folded.entry(stack).or_insert(0) += 1;
                }
            }
        }
    }

    fn run_sampler(self: Arc<Self>) {
        let hz = self.cfg.hz.clamp(1, 10_000);
        let interval = Duration::from_nanos(1_000_000_000 / u64::from(hz));
        while !self.stop.load(Ordering::Relaxed) {
            self.sample_once();
            std::thread::sleep(interval);
        }
    }
}

/// What the `Profiler` handles share: the core plus the sampler thread,
/// stopped and joined when the last handle drops.
struct ProfilerShared {
    core: Arc<ProfilerCore>,
    sampler: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for ProfilerShared {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::Relaxed);
        if let Ok(mut guard) = self.sampler.lock() {
            if let Some(handle) = guard.take() {
                let _ = handle.join();
            }
        }
        if self.core.cfg.track_allocs {
            ALLOC_PROFILERS.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Cumulative sampler statistics, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Thread-samples taken (threads swept × sweeps).
    pub samples: u64,
    /// Samples that found an empty span stack.
    pub idle: u64,
    /// Samples abandoned because the slot's writer stayed busy.
    pub skipped: u64,
    /// Seqlock read retries (a retry is the tear-*avoidance* mechanism
    /// working, not a tear observed).
    pub torn_retries: u64,
    /// Threads currently registered.
    pub threads: usize,
}

/// A cheaply cloneable handle to one profiling session — or a no-op.
///
/// The no-op handle (also the [`Default`]) is what every config carries
/// unless the caller opts in; every instrumentation call on it is one
/// branch. Under the `compile-out` feature all constructors return the
/// noop.
#[derive(Clone, Default)]
pub struct Profiler(Option<Arc<ProfilerShared>>);

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Profiler(noop)"),
            Some(sh) => write!(f, "Profiler(enabled, {} hz)", sh.core.cfg.hz),
        }
    }
}

impl Profiler {
    /// The free profiler: guards, timers, and renderers all no-op.
    pub fn noop() -> Self {
        Profiler(None)
    }

    /// An enabled profiler with default knobs (97 Hz, allocation
    /// tracking on). Spawns the sampler thread.
    pub fn enabled() -> Self {
        Self::with_config(ProfileConfig::default())
    }

    /// An enabled profiler with explicit knobs.
    #[cfg(not(feature = "compile-out"))]
    pub fn with_config(cfg: ProfileConfig) -> Self {
        if cfg.track_allocs {
            ALLOC_PROFILERS.fetch_add(1, Ordering::Relaxed);
        }
        let core = Arc::new(ProfilerCore {
            id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
            cfg,
            slots: Mutex::new(Vec::new()),
            state: Mutex::new(SampleState::default()),
            locks: Mutex::new(Vec::new()),
            samples: AtomicU64::new(0),
            torn_retries: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let sampler_core = Arc::clone(&core);
        let sampler = std::thread::Builder::new()
            .name("crossmine-prof".into())
            .spawn(move || sampler_core.run_sampler())
            .ok();
        Profiler(Some(Arc::new(ProfilerShared { core, sampler: Mutex::new(sampler) })))
    }

    /// Under `compile-out`, every constructor is the noop.
    #[cfg(feature = "compile-out")]
    pub fn with_config(_cfg: ProfileConfig) -> Self {
        Profiler(None)
    }

    /// Whether this profiler records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Pushes `name` onto this thread's published span stack; the
    /// returned guard pops it on drop. The innermost live guard is also
    /// where [`ProfiledAllocator`] charges this thread's allocations.
    #[inline]
    pub fn enter(&self, name: &'static str) -> ProfileGuard {
        match &self.0 {
            None => ProfileGuard { inner: None },
            Some(sh) => sh.core.enter(name),
        }
    }

    /// A wait timer for the lock named `name`, interned per profiler.
    /// Noop profilers hand out noop timers.
    pub fn lock_timer(&self, name: &'static str) -> LockTimer {
        match &self.0 {
            None => LockTimer(None),
            Some(sh) => {
                let mut locks = sh.core.locks.lock().expect("profiler locks poisoned");
                if let Some((_, h)) = locks.iter().find(|(n, _)| *n == name) {
                    return LockTimer(Some(Arc::clone(h)));
                }
                let h = Arc::new(Histogram::new());
                locks.push((name, Arc::clone(&h)));
                LockTimer(Some(h))
            }
        }
    }

    /// Every registered lock's wait profile, name-ascending.
    pub fn lock_waits(&self) -> Vec<LockWait> {
        let Some(sh) = &self.0 else { return Vec::new() };
        let mut out: Vec<LockWait> = sh
            .core
            .locks
            .lock()
            .expect("profiler locks poisoned")
            .iter()
            .map(|(name, h)| LockWait {
                name,
                count: h.count(),
                total_ns: h.sum(),
                p50_ns: h.quantile(0.50),
                p99_ns: h.quantile(0.99),
                max_ns: h.max(),
            })
            .collect();
        out.sort_by_key(|w| w.name);
        out
    }

    /// Sampler statistics so far.
    pub fn stats(&self) -> ProfileStats {
        let Some(sh) = &self.0 else { return ProfileStats::default() };
        let state = sh.core.state.lock().expect("profiler state poisoned");
        ProfileStats {
            samples: sh.core.samples.load(Ordering::Relaxed),
            idle: state.idle,
            skipped: state.skipped,
            torn_retries: sh.core.torn_retries.load(Ordering::Relaxed),
            threads: sh.core.slots.lock().expect("profiler slots poisoned").len(),
        }
    }

    /// Forces one sampling sweep now, in addition to the timed cadence —
    /// used by tests and by short-lived runs that would otherwise race
    /// the sampler interval.
    pub fn sample_now(&self) {
        if let Some(sh) = &self.0 {
            sh.core.sample_once();
        }
    }

    /// The folded (collapsed-stack) profile: one `frame;frame;... count`
    /// line per distinct stack, lexicographically sorted — the format
    /// `flamegraph.pl` and speedscope ingest. Empty on a noop profiler
    /// or before any sample landed.
    pub fn collapsed(&self) -> String {
        let Some(sh) = &self.0 else { return String::new() };
        let state = sh.core.state.lock().expect("profiler state poisoned");
        let mut lines: Vec<String> =
            state.folded.iter().map(|(stack, n)| format!("{} {n}", stack.join(";"))).collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The folded profile rendered as a self-contained flamegraph SVG
    /// (no scripts, no external fonts): frame width ∝ samples, hover
    /// titles carry exact counts. Empty string on a noop profiler.
    pub fn flamegraph_svg(&self) -> String {
        let Some(sh) = &self.0 else { return String::new() };
        let folded: Vec<(Vec<&'static str>, u64)> = {
            let state = sh.core.state.lock().expect("profiler state poisoned");
            let mut v: Vec<_> = state.folded.iter().map(|(s, &n)| (s.clone(), n)).collect();
            v.sort();
            v
        };
        render_flamegraph(&folded)
    }

    /// The `/profile/heap` document: the allocation attribution table
    /// (process-global, populated when a [`ProfiledAllocator`] is
    /// installed) followed by this profiler's lock-wait table.
    pub fn heap_report(&self) -> String {
        if self.0.is_none() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("# heap: cumulative bytes charged to the innermost active span\n");
        out.push_str("# bytes allocs span\n");
        for e in heap_snapshot() {
            let _ = writeln!(out, "{} {} {}", e.bytes, e.allocs, e.span);
        }
        let (ub, ua) = (
            HEAP_UNATTRIBUTED_BYTES.load(Ordering::Relaxed),
            HEAP_UNATTRIBUTED_ALLOCS.load(Ordering::Relaxed),
        );
        if ua > 0 {
            let _ = writeln!(out, "{ub} {ua} (no active span)");
        }
        let (ob, oa) = (
            HEAP_OVERFLOW_BYTES.load(Ordering::Relaxed),
            HEAP_OVERFLOW_ALLOCS.load(Ordering::Relaxed),
        );
        if oa > 0 {
            let _ = writeln!(out, "{ob} {oa} (table overflow)");
        }
        out.push_str("# locks: acquisition wait, nanoseconds\n");
        out.push_str("# count total_ns p50_ns p99_ns max_ns lock\n");
        for w in self.lock_waits() {
            let _ = writeln!(
                out,
                "{} {} {} {} {} {}",
                w.count, w.total_ns, w.p50_ns, w.p99_ns, w.max_ns, w.name
            );
        }
        out
    }
}

/// What a live guard owns: the thread's slot (kept alive past profiler
/// shutdown so the pop always has a target) and the previous innermost
/// span to restore for allocation attribution.
struct GuardInner {
    slot: Arc<SpanSlot>,
    prev: (usize, usize),
}

/// RAII frame guard returned by [`Profiler::enter`]: pops the published
/// frame and restores the previous allocation-attribution span on drop.
/// The disabled guard does nothing.
pub struct ProfileGuard {
    inner: Option<GuardInner>,
}

impl ProfileGuard {
    /// A guard that records nothing.
    pub fn disabled() -> ProfileGuard {
        ProfileGuard { inner: None }
    }

    /// Whether this guard published a frame.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            g.slot.pop();
            let _ = CURRENT_SPAN.try_with(|c| c.set(g.prev));
        }
    }
}

// ---------------------------------------------------------------------------
// Flamegraph rendering
// ---------------------------------------------------------------------------

/// One node of the frame trie the renderer lays out.
struct FlameNode {
    name: String,
    total: u64,
    children: Vec<FlameNode>,
}

impl FlameNode {
    fn child(&mut self, name: &str) -> &mut FlameNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(FlameNode { name: name.to_string(), total: 0, children: Vec::new() });
        self.children.last_mut().expect("just pushed")
    }

    fn depth(&self) -> usize {
        1 + self.children.iter().map(FlameNode::depth).max().unwrap_or(0)
    }
}

const FLAME_WIDTH: f64 = 1200.0;
const FRAME_HEIGHT: f64 = 17.0;

/// Escapes text for SVG/XML attribute and text content.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// A stable warm color per frame name (flamegraph convention), via a
/// small string hash — same name, same color, across runs.
fn frame_color(name: &str) -> String {
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(16777619);
    }
    let r = 205 + (h % 50);
    let g = 80 + ((h >> 8) % 110);
    let b = (h >> 16) % 55;
    format!("rgb({r},{g},{b})")
}

/// Renders folded stacks as a self-contained flamegraph SVG. Pure
/// function of its input, so tests can pin the layout.
fn render_flamegraph(folded: &[(Vec<&'static str>, u64)]) -> String {
    let mut root = FlameNode { name: "all".to_string(), total: 0, children: Vec::new() };
    for (stack, n) in folded {
        root.total += n;
        let mut node = &mut root;
        for frame in stack {
            node = node.child(frame);
            node.total += n;
        }
    }
    let depth = root.depth();
    let height = (depth as f64 + 2.0) * FRAME_HEIGHT;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{FLAME_WIDTH}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(
        svg,
        "<text x=\"4\" y=\"{}\">crossmine wall profile — {} samples</text>",
        height - 4.0,
        root.total
    );
    render_node(&mut svg, &root, 0.0, FLAME_WIDTH, 0, root.total.max(1));
    svg.push_str("</svg>\n");
    svg
}

fn render_node(svg: &mut String, node: &FlameNode, x: f64, width: f64, level: usize, total: u64) {
    if width < 0.5 {
        return;
    }
    let y = level as f64 * FRAME_HEIGHT;
    let pct = 100.0 * node.total as f64 / total as f64;
    let name = xml_escape(&node.name);
    let frame_h = FRAME_HEIGHT - 1.0;
    let color = frame_color(&node.name);
    let _ = writeln!(
        svg,
        "<g><title>{name} ({} samples, {pct:.1}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{width:.2}\" height=\"{frame_h:.2}\" \
         fill=\"{color}\" stroke=\"white\" stroke-width=\"0.5\"/>",
        node.total,
    );
    // Label only frames wide enough to hold any text.
    if width >= 30.0 {
        let shown: String = name.chars().take((width / 7.0) as usize).collect();
        let _ = writeln!(svg, "<text x=\"{:.2}\" y=\"{:.2}\">{shown}</text>", x + 3.0, y + 12.0);
    }
    svg.push_str("</g>\n");
    let mut child_x = x;
    for child in &node.children {
        let child_w = width * child.total as f64 / node.total.max(1) as f64;
        render_node(svg, child, child_x, child_w, level + 1, total);
        child_x += child_w;
    }
}

// ---------------------------------------------------------------------------
// Process-level stats (/proc/self)
// ---------------------------------------------------------------------------

/// Point-in-time process facts read from `/proc/self/status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessStats {
    /// Resident set size, bytes.
    pub resident_bytes: u64,
    /// OS threads in the process.
    pub threads: u64,
}

/// Reads [`ProcessStats`] from procfs; `None` on platforms without
/// `/proc/self/status` (macOS, Windows) or on any parse surprise, so
/// callers degrade to simply not exposing the gauges.
pub fn process_stats() -> Option<ProcessStats> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut rss_kb: Option<u64> = None;
    let mut threads: Option<u64> = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss_kb = rest.trim().trim_end_matches("kB").trim().parse().ok();
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse().ok();
        }
    }
    Some(ProcessStats { resident_bytes: rss_kb? * 1024, threads: threads? })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_profiler_is_inert() {
        let p = Profiler::noop();
        assert!(!p.is_enabled());
        {
            let g = p.enter("x");
            assert!(!g.is_recording());
        }
        p.sample_now();
        assert_eq!(p.collapsed(), "");
        assert_eq!(p.flamegraph_svg(), "");
        assert_eq!(p.heap_report(), "");
        assert_eq!(p.stats(), ProfileStats::default());
        assert!(p.lock_waits().is_empty());
        let t = p.lock_timer("l");
        assert!(!t.is_enabled());
        assert_eq!(t.time(|| 7), 7);
        assert_eq!(format!("{p:?}"), "Profiler(noop)");
    }

    #[cfg(not(feature = "compile-out"))]
    mod enabled {
        use super::*;

        #[test]
        fn nested_guards_fold_into_stacks() {
            let p = Profiler::with_config(ProfileConfig { hz: 1, track_allocs: false });
            let _a = p.enter("outer");
            {
                let _b = p.enter("inner");
                p.sample_now();
            }
            p.sample_now();
            let collapsed = p.collapsed();
            assert!(collapsed.contains("outer;inner 1"), "{collapsed}");
            assert!(collapsed.contains("outer 1"), "{collapsed}");
            let stats = p.stats();
            assert_eq!(stats.threads, 1);
            assert!(stats.samples >= 2);
        }

        #[test]
        fn guard_drop_restores_the_previous_frame() {
            let p = Profiler::with_config(ProfileConfig { hz: 1, track_allocs: false });
            let _a = p.enter("a");
            {
                let _b = p.enter("b");
            }
            p.sample_now();
            let collapsed = p.collapsed();
            assert!(collapsed.contains("a 1"), "{collapsed}");
            assert!(!collapsed.contains("a;b"), "popped frame resampled: {collapsed}");
        }

        #[test]
        fn deep_stacks_truncate_but_stay_balanced() {
            let p = Profiler::with_config(ProfileConfig { hz: 1, track_allocs: false });
            let guards: Vec<_> = (0..MAX_STACK_DEPTH + 4).map(|_| p.enter("deep")).collect();
            p.sample_now();
            drop(guards);
            // After dropping every guard the stack must be empty again.
            p.sample_now();
            let collapsed = p.collapsed();
            let deepest = "deep;".repeat(MAX_STACK_DEPTH - 1) + "deep 1";
            assert!(collapsed.contains(&deepest), "{collapsed}");
            let stats = p.stats();
            assert_eq!(stats.idle, 1, "{stats:?}");
        }

        #[test]
        fn lock_timer_records_waits() {
            let p = Profiler::enabled();
            let t = p.lock_timer("test.lock");
            assert!(t.is_enabled());
            let m = Mutex::new(0u32);
            for _ in 0..5 {
                let mut g = t.time(|| m.lock().expect("unpoisoned"));
                *g += 1;
            }
            let waits = p.lock_waits();
            assert_eq!(waits.len(), 1);
            assert_eq!(waits[0].name, "test.lock");
            assert_eq!(waits[0].count, 5);
            // Interning: same name, same histogram.
            let t2 = p.lock_timer("test.lock");
            t2.time(|| ());
            assert_eq!(p.lock_waits()[0].count, 6);
        }

        #[test]
        fn flamegraph_is_wellformed_svg_with_proportional_frames() {
            let folded: Vec<(Vec<&'static str>, u64)> = vec![
                (vec!["serve.worker", "serve.batch", "serve.eval"], 30),
                (vec!["serve.worker", "serve.wait"], 10),
            ];
            let svg = render_flamegraph(&folded);
            assert!(svg.starts_with("<svg "), "{svg}");
            assert!(svg.trim_end().ends_with("</svg>"), "{svg}");
            assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
            assert!(svg.contains("serve.eval (30 samples, 75.0%)"), "{svg}");
            assert!(svg.contains("serve.wait (10 samples, 25.0%)"), "{svg}");
            assert!(svg.contains("40 samples"), "{svg}");
        }

        #[test]
        fn xml_and_label_escaping() {
            assert_eq!(xml_escape("a<b>&\"c"), "a&lt;b&gt;&amp;&quot;c");
            // Same name always maps to the same color.
            assert_eq!(frame_color("serve.eval"), frame_color("serve.eval"));
        }

        /// The seqlock torn-read proof, at the slot level: one writer
        /// thread churns push/pop of a canonical nested stack while a
        /// reader snapshots continuously. Every accepted read must be an
        /// exact prefix of the canonical stack — a single torn frame or
        /// mismatched depth fails the run. (A name-level tear would also
        /// be UB before it was a wrong answer; the prefix check catches
        /// the logic-level corruption the seqlock exists to prevent.)
        #[test]
        fn sampler_never_observes_a_torn_stack() {
            const NAMES: [&str; 6] = ["d0", "d1", "d2", "d3", "d4", "d5"];
            let slot = Arc::new(SpanSlot::new());
            let stop = Arc::new(AtomicBool::new(false));
            let writer = {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for name in NAMES {
                            slot.push(name);
                        }
                        for _ in NAMES {
                            slot.pop();
                        }
                    }
                })
            };
            let mut buf = [(0usize, 0usize); MAX_STACK_DEPTH];
            let mut accepted = 0u64;
            let deadline = Instant::now() + Duration::from_millis(400);
            while Instant::now() < deadline {
                let (depth, _) = slot.read_stack(&mut buf);
                let Some(d) = depth else { continue };
                accepted += 1;
                assert!(d <= NAMES.len(), "impossible depth {d}");
                for (i, &pair) in buf[..d].iter().enumerate() {
                    let name = frame_name(pair);
                    assert_eq!(
                        name, NAMES[i],
                        "torn stack: frame {i} of a depth-{d} read was {name:?}"
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
            writer.join().expect("writer thread");
            assert!(accepted > 1_000, "reader starved: only {accepted} accepted reads");
        }

        /// The same property through the public API: concurrent guard
        /// churn plus the real sampler thread, then every collapsed line
        /// must be a prefix chain of the canonical nesting.
        #[test]
        fn collapsed_stacks_are_always_valid_prefixes_under_concurrency() {
            let p = Profiler::with_config(ProfileConfig { hz: 5_000, track_allocs: false });
            let stop = Arc::new(AtomicBool::new(false));
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let p = p.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let _a = p.enter("w0");
                            let _b = p.enter("w1");
                            let _c = p.enter("w2");
                        }
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(150));
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                w.join().expect("worker thread");
            }
            let collapsed = p.collapsed();
            assert!(!collapsed.is_empty(), "sampler never caught a stack");
            for line in collapsed.lines() {
                let stack = line.rsplit_once(' ').expect("count suffix").0;
                assert!(
                    ["w0", "w0;w1", "w0;w1;w2"].contains(&stack),
                    "non-prefix stack sampled: {line:?}"
                );
            }
        }

        #[test]
        fn allocation_attribution_charges_the_innermost_span() {
            let p = Profiler::with_config(ProfileConfig { hz: 1, track_allocs: true });
            // The table is process-global; use a name unique to this test.
            {
                let _g = p.enter("test.alloc_attr_span");
                charge_alloc(1000);
                charge_alloc(24);
            }
            charge_alloc(8); // no active span on this thread now
            let snap = heap_snapshot();
            let e = snap
                .iter()
                .find(|e| e.span == "test.alloc_attr_span")
                .expect("attributed entry present");
            assert_eq!(e.bytes, 1024);
            assert_eq!(e.allocs, 2);
            let report = p.heap_report();
            assert!(report.contains("1024 2 test.alloc_attr_span"), "{report}");
            assert!(report.contains("# locks"), "{report}");
        }

        #[test]
        fn process_stats_parse_on_procfs_platforms() {
            // On Linux this must parse; elsewhere None is the contract.
            if std::path::Path::new("/proc/self/status").exists() {
                let s = process_stats().expect("procfs present but unparsed");
                assert!(s.resident_bytes > 0);
                assert!(s.threads >= 1);
            } else {
                assert!(process_stats().is_none());
            }
        }
    }

    #[cfg(feature = "compile-out")]
    #[test]
    fn constructors_compile_out_to_noop() {
        assert!(!Profiler::enabled().is_enabled());
        assert!(!Profiler::with_config(ProfileConfig::default()).is_enabled());
        assert!(!Profiler::enabled().enter("x").is_recording());
    }
}
