//! Human-readable reporting: a table of span timings (count / total / p50 /
//! p99 / max) plus counters, gauges, and value histograms, rendered from a
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) snapshot.
//!
//! [`TrainReport`] and [`ServeReport`] are thin titled wrappers over the
//! same [`Report`]; the titles keep the two phases apart when a binary
//! (like `loadgen`) prints both. The machine-readable counterpart is
//! [`MetricsRegistry::write_jsonl`](crate::metrics::MetricsRegistry::write_jsonl).

use crate::metrics::HistSnapshot;
use crate::ObsHandle;

/// Formats a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// A point-in-time, renderable view of one observability handle.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report title (printed in the header).
    pub title: String,
    /// Span timing rows, total-duration descending.
    pub spans: Vec<HistSnapshot>,
    /// Counter values, name-ascending.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values, name-ascending.
    pub gauges: Vec<(&'static str, i64)>,
    /// Value-histogram snapshots, name-ascending.
    pub histograms: Vec<HistSnapshot>,
}

impl Report {
    /// Snapshots `obs` under `title`. A no-op handle yields an empty report
    /// (rendered with an explanatory line rather than an empty table).
    pub fn from_handle(obs: &ObsHandle, title: &str) -> Self {
        let mut report = Report { title: title.to_string(), ..Default::default() };
        let Some(registry) = obs.registry() else {
            return report;
        };
        report.spans = registry.span_snapshots();
        report.spans.sort_by(|a, b| b.sum.cmp(&a.sum).then(a.name.cmp(b.name)));
        report.counters = registry.counter_values();
        report.gauges = registry.gauge_values();
        report.histograms = registry.histogram_snapshots();
        report
    }

    /// Whether the report holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== crossmine-obs report: {} ==", self.title)?;
        if self.is_empty() {
            return write!(f, "(no instrumentation recorded: handle is a no-op)");
        }
        if !self.spans.is_empty() {
            writeln!(
                f,
                "{:<34} {:>9} {:>10} {:>9} {:>9} {:>9}",
                "span", "count", "total", "p50", "p99", "max"
            )?;
            for s in &self.spans {
                writeln!(
                    f,
                    "{:<34} {:>9} {:>10} {:>9} {:>9} {:>9}",
                    s.name,
                    s.count,
                    fmt_ns(s.sum),
                    fmt_ns(s.p50),
                    fmt_ns(s.p99),
                    fmt_ns(s.max)
                )?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "  {:<32} count {}  p50 {}  p99 {}  max {}",
                    h.name, h.count, h.p50, h.p99, h.max
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<32} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, v) in &self.gauges {
                writeln!(f, "  {name:<32} {v}")?;
            }
        }
        Ok(())
    }
}

/// A [`Report`] over a training run (titled "train").
#[derive(Debug, Clone)]
pub struct TrainReport(pub Report);

impl TrainReport {
    /// Snapshots `obs` as a training report.
    pub fn from_handle(obs: &ObsHandle) -> Self {
        TrainReport(Report::from_handle(obs, "train"))
    }
}

impl std::fmt::Display for TrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A [`Report`] over a serving run (titled "serve").
#[derive(Debug, Clone)]
pub struct ServeReport(pub Report);

impl ServeReport {
    /// Snapshots `obs` as a serving report.
    pub fn from_handle(obs: &ObsHandle) -> Self {
        ServeReport(Report::from_handle(obs, "serve"))
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_unit() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(25_000), "25.0us");
        assert_eq!(fmt_ns(25_000_000), "25.0ms");
        assert_eq!(fmt_ns(25_000_000_000), "25.00s");
    }

    #[test]
    fn noop_handle_renders_placeholder() {
        let r = Report::from_handle(&ObsHandle::noop(), "train");
        assert!(r.is_empty());
        let text = r.to_string();
        assert!(text.contains("crossmine-obs report: train"), "{text}");
        assert!(text.contains("no-op"), "{text}");
    }

    #[test]
    fn report_orders_spans_by_total_and_lists_counters() {
        let obs = ObsHandle::enabled();
        {
            let _a = obs.span("short");
        }
        obs.registry().unwrap().span_histogram("long").record(1_000_000_000);
        obs.add("things.counted", 5);
        obs.gauge_set("level", -2);
        obs.record("sizes", 64);
        let r = Report::from_handle(&obs, "train");
        assert_eq!(r.spans[0].name, "long", "largest total first");
        assert!(r.spans.iter().any(|s| s.name == "short"));
        assert_eq!(r.counters, vec![("things.counted", 5)]);
        assert_eq!(r.gauges, vec![("level", -2)]);
        let text = r.to_string();
        for needle in ["span", "count", "total", "p50", "p99", "things.counted", "level", "sizes"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
