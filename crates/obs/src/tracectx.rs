//! Per-request trace context: a causal span tree that follows one
//! request from the wire to the worker and back.
//!
//! Aggregate metrics (the rest of `crossmine-obs`) answer "how slow is
//! the p99?"; this module answers "*why was this request slow?*". One
//! [`TraceCtx`] is born when a predict request is parsed off a socket
//! (or submitted in-process), rides through the admission queue on the
//! request itself, collects parent-linked [`SpanRec`]s from every layer
//! it crosses (`net.sniff` → `net.parse` → `serve.queue_wait` →
//! `serve.batch` → `serve.eval` → `net.write`), and is **completed**
//! exactly once — when the reply's bytes hit the socket (wire path) or
//! when the reply is delivered (in-process path).
//!
//! Three design rules carried over from the rest of the crate:
//!
//! * **Noop is free.** [`Tracer::noop`] and the contexts it hands out
//!   are a `None` inside; every instrumentation call is one branch and
//!   zero allocations (pinned by the counting-allocator test). Under the
//!   `compile-out` feature every constructor returns the noop, so the
//!   whole subsystem erases from release builds that want it gone.
//! * **Tail-based sampling.** No trace is dropped at birth — the keep
//!   decision happens at completion time, when the outcome is known: a
//!   bounded ring retains every error/shed/deadline trace plus the
//!   slowest K per window of completions, and discards the rest. This is
//!   what makes "show me the p99" answerable: the interesting tail is
//!   retained *because* it is the tail.
//! * **Exemplars join metrics to traces.** An [`Exemplars`] array
//!   remembers, per log₂ histogram bucket, the most recent [`TraceId`]
//!   that landed there — so a p99 latency bucket on `/metrics` resolves
//!   through `/trace` to a concrete stored trace.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::metrics::{bucket_of, bucket_upper_bound, NUM_BUCKETS};
use crate::trace::FieldValue;

/// Identifies one request's trace. `0` is the "unset" sentinel (noop
/// contexts, empty exemplar slots); generated ids start at 1. Wire
/// callers reuse the client's request id (binary frames) or the
/// `X-Request-Id` header (HTTP) so a trace is joinable to client logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The unset sentinel.
    pub const UNSET: TraceId = TraceId(0);

    /// Whether this is a real id (nonzero).
    pub fn is_set(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies one span within a trace. Span 0 is the implicit root
/// (`request`) covering the whole trace lifetime; recorded spans start
/// at 1. Passing [`ROOT_SPAN`] as the parent links a span to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u32);

/// The implicit root span every recorded span ultimately parents to.
pub const ROOT_SPAN: SpanId = SpanId(0);

/// Hard cap on recorded spans per trace: a wire batch of thousands of
/// rows must not turn one trace into an unbounded allocation. Spans past
/// the cap are counted, not stored.
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// One recorded span: a named `[start, end]` interval with a parent
/// link, nanosecond offsets relative to the trace origin, and typed
/// attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// This span's id within its trace.
    pub id: SpanId,
    /// The parent span ([`ROOT_SPAN`] for top-level stages).
    pub parent: SpanId,
    /// Stage name, e.g. `net.parse` or `serve.eval`.
    pub name: &'static str,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace origin, nanoseconds.
    pub end_ns: u64,
    /// Typed attributes (batch seq, row counts, ...).
    pub attrs: Vec<(&'static str, FieldValue)>,
}

/// Sampling and retention knobs for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// How many sampled traces the ring retains (oldest evicted first).
    pub ring_capacity: usize,
    /// Completions per sampling window; the slowest-K tracker resets at
    /// each window boundary so "slowest" stays recent.
    pub window: u64,
    /// How many of the slowest traces each window keeps (error traces
    /// are always kept, on top of this).
    pub keep_slowest: usize,
    /// When set, every completed trace at least this slow is written to
    /// the slow-request log (independent of the sampling decision).
    pub slow_threshold: Option<Duration>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ring_capacity: 256, window: 128, keep_slowest: 8, slow_threshold: None }
    }
}

/// A completed, retained trace: what the ring stores and `/trace`
/// serves.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTrace {
    /// The trace's id.
    pub id: TraceId,
    /// Total lifetime (origin to completion), nanoseconds.
    pub duration_ns: u64,
    /// Whether any layer marked the trace as failed (shed, deadline,
    /// panic, wire error).
    pub error: bool,
    /// Spans dropped past [`MAX_SPANS_PER_TRACE`].
    pub spans_dropped: u32,
    /// The span tree, root (`request`, id 0) first.
    pub spans: Vec<SpanRec>,
}

fn write_json_field_value(out: &mut String, v: &FieldValue) {
    use std::fmt::Write as _;
    match v {
        FieldValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::Str(s) => {
            let _ = write!(out, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""));
        }
    }
}

impl StoredTrace {
    /// Renders the trace as one JSON line (the `/trace` and slow-log
    /// format): id, duration, error flag, and the full span tree with
    /// parent links.
    pub fn render_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128 + self.spans.len() * 96);
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"duration_ns\":{},\"error\":{},\"spans_dropped\":{},\"spans\":[",
            self.id.0, self.duration_ns, self.error, self.spans_dropped
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{}",
                s.id.0,
                if s.id == ROOT_SPAN { "null".to_string() } else { s.parent.0.to_string() },
                s.name,
                s.start_ns,
                s.end_ns
            );
            if !s.attrs.is_empty() {
                out.push_str(",\"attrs\":{");
                for (j, (k, v)) in s.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":");
                    write_json_field_value(&mut out, v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Appends this trace's spans as Chrome trace-event objects
    /// (`ph:"X"` complete events, microsecond timestamps relative to the
    /// trace origin, `tid` = trace id) to `out` — load the enclosing
    /// array in `about:tracing` or Perfetto.
    pub fn write_chrome_events(&self, out: &mut String, first: &mut bool) {
        use std::fmt::Write as _;
        for s in &self.spans {
            if !*first {
                out.push(',');
            }
            *first = false;
            let ts = s.start_ns as f64 / 1000.0;
            let dur = s.end_ns.saturating_sub(s.start_ns) as f64 / 1000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"crossmine\",\"ph\":\"X\",\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{}",
                s.name, self.id.0, self.id.0
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, ",\"{k}\":");
                write_json_field_value(out, v);
            }
            out.push_str("}}");
        }
    }
}

/// Per-bucket trace exemplars for a log₂ histogram: each bucket
/// remembers the most recent [`TraceId`] whose sample landed there, so a
/// histogram bucket on a dashboard resolves to one retrievable trace.
/// Lock-free; an unset slot reads as [`TraceId::UNSET`].
#[derive(Debug)]
pub struct Exemplars {
    slots: [AtomicU64; NUM_BUCKETS],
}

impl Default for Exemplars {
    fn default() -> Self {
        Exemplars { slots: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Exemplars {
    /// An empty exemplar array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remembers `id` as the latest exemplar for `value`'s bucket.
    /// Unset ids (requests without a trace) are ignored.
    #[inline]
    pub fn observe(&self, value: u64, id: TraceId) {
        if id.is_set() {
            self.slots[bucket_of(value)].store(id.0, Ordering::Relaxed);
        }
    }

    /// The exemplar for bucket `i`, when one was recorded.
    pub fn get(&self, i: usize) -> Option<TraceId> {
        let v = self.slots[i].load(Ordering::Relaxed);
        (v != 0).then_some(TraceId(v))
    }

    /// All set exemplars as `(bucket upper bound, trace id)`,
    /// bucket-ascending.
    pub fn nonempty(&self) -> Vec<(u64, TraceId)> {
        (0..NUM_BUCKETS).filter_map(|i| self.get(i).map(|id| (bucket_upper_bound(i), id))).collect()
    }

    /// The exemplar whose bucket holds `value` (e.g. the p99 estimate
    /// from the companion histogram), when one was recorded.
    pub fn for_value(&self, value: u64) -> Option<TraceId> {
        self.get(bucket_of(value))
    }
}

/// What [`TraceCtx::complete`] reports to the caller that performed the
/// completion (the wire path uses it to feed latency histograms and
/// exemplars without re-deriving the duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTrace {
    /// The trace's id.
    pub id: TraceId,
    /// Total lifetime, nanoseconds.
    pub duration_ns: u64,
    /// Whether the trace was marked as an error.
    pub error: bool,
    /// Whether the tail sampler retained it in the ring.
    pub sampled: bool,
}

struct TraceState {
    spans: Vec<SpanRec>,
    next_span: u32,
    dropped: u32,
}

struct TraceInner {
    id: TraceId,
    origin: Instant,
    error: AtomicBool,
    completed: AtomicBool,
    state: Mutex<TraceState>,
    core: Arc<TracerCore>,
}

/// One request's trace context: cheap to clone (an `Arc` bump), safe to
/// share across the net poll thread and the serve workers, and a noop
/// (`None` inside) when tracing is disabled. Obtain from
/// [`Tracer::start`]; record spans with [`add_span`](Self::add_span);
/// call [`complete`](Self::complete) exactly once when the request's
/// reply is finally delivered — later calls are ignored, which is what
/// lets the wire path and the worker share ownership without a
/// handshake.
#[derive(Clone, Default)]
pub struct TraceCtx(Option<Arc<TraceInner>>);

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("TraceCtx(noop)"),
            Some(inner) => write!(f, "TraceCtx({})", inner.id.0),
        }
    }
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Trace state is plain data; a panicking recorder elsewhere must not
    // disable tracing for everyone else.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ns_since(origin: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(origin).as_nanos().min(u128::from(u64::MAX)) as u64
}

impl TraceCtx {
    /// The noop context: every call is a branch and nothing else.
    pub fn noop() -> Self {
        TraceCtx(None)
    }

    /// Whether this context records anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// The trace's id ([`TraceId::UNSET`] on a noop context).
    #[inline]
    pub fn id(&self) -> TraceId {
        match &self.0 {
            Some(inner) => inner.id,
            None => TraceId::UNSET,
        }
    }

    /// Records one span covering `[start, end]` under `parent`. Returns
    /// the new span's id so later spans can parent to it ([`ROOT_SPAN`]
    /// on noop contexts, or once the per-trace span cap is hit).
    #[inline]
    pub fn add_span(
        &self,
        name: &'static str,
        parent: SpanId,
        start: Instant,
        end: Instant,
    ) -> SpanId {
        self.add_span_with(name, parent, start, end, &[])
    }

    /// [`add_span`](Self::add_span) with typed attributes.
    pub fn add_span_with(
        &self,
        name: &'static str,
        parent: SpanId,
        start: Instant,
        end: Instant,
        attrs: &[(&'static str, FieldValue)],
    ) -> SpanId {
        let Some(inner) = &self.0 else { return ROOT_SPAN };
        let mut st = lock_ignoring_poison(&inner.state);
        if st.spans.len() >= MAX_SPANS_PER_TRACE {
            st.dropped = st.dropped.saturating_add(1);
            return ROOT_SPAN;
        }
        st.next_span += 1;
        let id = SpanId(st.next_span);
        st.spans.push(SpanRec {
            id,
            parent,
            name,
            start_ns: ns_since(inner.origin, start),
            end_ns: ns_since(inner.origin, end),
            attrs: attrs.to_vec(),
        });
        id
    }

    /// Whether both contexts record into the same live trace (clones of
    /// one context, e.g. the N rows of one wire batch riding the
    /// connection's trace). Always false for noop contexts, and — unlike
    /// comparing [`id`](Self::id)s — false for distinct traces that
    /// happen to reuse a request id.
    #[inline]
    pub fn same_trace(&self, other: &TraceCtx) -> bool {
        match (&self.0, &other.0) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Marks the trace as failed (shed, deadline expiry, worker panic,
    /// wire error). Error traces are always retained by the tail
    /// sampler.
    #[inline]
    pub fn mark_error(&self) {
        if let Some(inner) = &self.0 {
            inner.error.store(true, Ordering::Relaxed);
        }
    }

    /// Completes the trace: stamps the total duration, runs the tail
    /// sampling decision, and (when retained) stores the trace in the
    /// tracer's ring. Idempotent — only the first call does anything and
    /// returns `Some`; `None` on noop contexts and repeat calls.
    pub fn complete(&self) -> Option<CompletedTrace> {
        let inner = self.0.as_ref()?;
        if inner.completed.swap(true, Ordering::AcqRel) {
            return None;
        }
        let duration_ns = inner.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let error = inner.error.load(Ordering::Relaxed);
        let (mut spans, dropped) = {
            let mut st = lock_ignoring_poison(&inner.state);
            (std::mem::take(&mut st.spans), st.dropped)
        };
        spans.insert(
            0,
            SpanRec {
                id: ROOT_SPAN,
                parent: ROOT_SPAN,
                name: "request",
                start_ns: 0,
                end_ns: duration_ns,
                attrs: Vec::new(),
            },
        );
        let sampled = inner.core.offer(StoredTrace {
            id: inner.id,
            duration_ns,
            error,
            spans_dropped: dropped,
            spans,
        });
        Some(CompletedTrace { id: inner.id, duration_ns, error, sampled })
    }
}

/// Running totals of the tail sampler's decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces completed (sampled or not).
    pub completed: u64,
    /// Traces retained in the ring.
    pub sampled: u64,
    /// Traces discarded at completion time.
    pub dropped: u64,
}

/// The slowest-K tracker for the current sampling window plus the
/// bounded ring of retained traces.
struct SamplerState {
    ring: VecDeque<StoredTrace>,
    /// Durations of traces kept as "slowest" this window, unsorted,
    /// length ≤ `keep_slowest`.
    window_slowest: Vec<u64>,
    /// Completions seen this window.
    window_seen: u64,
}

struct TracerCore {
    cfg: TraceConfig,
    next_id: AtomicU64,
    completed: AtomicU64,
    sampled: AtomicU64,
    dropped: AtomicU64,
    state: Mutex<SamplerState>,
    /// JSONL sink for the slow-request log, when configured.
    slow_log: Option<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TracerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerCore").field("cfg", &self.cfg).finish()
    }
}

impl TracerCore {
    /// The tail-sampling decision and ring insertion for one completed
    /// trace; returns whether it was retained.
    fn offer(&self, trace: StoredTrace) -> bool {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if let (Some(threshold), Some(log)) = (self.cfg.slow_threshold, &self.slow_log) {
            if trace.duration_ns >= threshold.as_nanos().min(u128::from(u64::MAX)) as u64 {
                let line = trace.render_jsonl();
                let mut w = lock_ignoring_poison(log);
                let _ = writeln!(w, "{line}");
            }
        }
        let mut st = lock_ignoring_poison(&self.state);
        let keep = if trace.error {
            true
        } else if st.window_slowest.len() < self.cfg.keep_slowest {
            st.window_slowest.push(trace.duration_ns);
            true
        } else {
            // Replace the fastest of the current slowest-K when this
            // trace is slower — an online approximation of "slowest K
            // per window" that needs no sort and no second pass.
            match st
                .window_slowest
                .iter()
                .enumerate()
                .min_by_key(|&(_, &d)| d)
                .map(|(i, &d)| (i, d))
            {
                Some((i, fastest)) if trace.duration_ns > fastest => {
                    st.window_slowest[i] = trace.duration_ns;
                    true
                }
                _ => false,
            }
        };
        // The window boundary advances *after* the decision so the last
        // completion of a window is judged against that window's slowest
        // set, not a freshly cleared one.
        st.window_seen += 1;
        if st.window_seen >= self.cfg.window.max(1) {
            st.window_seen = 0;
            st.window_slowest.clear();
        }
        if keep {
            if st.ring.len() >= self.cfg.ring_capacity.max(1) {
                st.ring.pop_front();
            }
            st.ring.push_back(trace);
            self.sampled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        keep
    }
}

/// The per-server tracing session: hands out [`TraceCtx`]s, owns the
/// tail-sampling ring, and serves stored traces to the `/trace`
/// endpoint. Cheap to clone; the noop tracer (also the [`Default`])
/// makes every downstream trace call one branch. Under the
/// `compile-out` feature all constructors return the noop.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerCore>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Tracer(noop)"),
            Some(core) => write!(f, "Tracer(enabled, ring: {})", core.cfg.ring_capacity),
        }
    }
}

impl Tracer {
    /// The noop tracer: every [`start`](Self::start) returns a noop
    /// context.
    pub fn noop() -> Self {
        Tracer(None)
    }

    /// An enabled tracer with default sampling ([`TraceConfig`]).
    pub fn enabled() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// An enabled tracer with explicit sampling knobs.
    pub fn with_config(cfg: TraceConfig) -> Self {
        Self::build(cfg, None)
    }

    /// [`with_config`](Self::with_config) plus a slow-request log: every
    /// completed trace at least `cfg.slow_threshold` slow is written to
    /// `sink` as one JSON line, independent of the sampling decision.
    pub fn with_slow_log(cfg: TraceConfig, sink: Box<dyn Write + Send>) -> Self {
        Self::build(cfg, Some(Mutex::new(sink)))
    }

    #[cfg(feature = "compile-out")]
    fn build(_cfg: TraceConfig, _slow_log: Option<Mutex<Box<dyn Write + Send>>>) -> Self {
        Tracer(None)
    }

    #[cfg(not(feature = "compile-out"))]
    fn build(cfg: TraceConfig, slow_log: Option<Mutex<Box<dyn Write + Send>>>) -> Self {
        Tracer(Some(Arc::new(TracerCore {
            state: Mutex::new(SamplerState {
                ring: VecDeque::with_capacity(cfg.ring_capacity.max(1)),
                window_slowest: Vec::with_capacity(cfg.keep_slowest),
                window_seen: 0,
            }),
            cfg,
            next_id: AtomicU64::new(1),
            completed: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slow_log,
        })))
    }

    /// Whether this tracer records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Starts a trace whose origin is *now*. `id_hint` is the caller's
    /// request id (binary frame id, parsed `X-Request-Id`); pass 0 to
    /// have one generated.
    #[inline]
    pub fn start(&self, id_hint: u64) -> TraceCtx {
        self.start_at(id_hint, Instant::now())
    }

    /// [`start`](Self::start) with an explicit origin, for callers that
    /// know the request began earlier than the trace's creation — the
    /// wire path passes the arrival time of the request's first byte so
    /// the sniff/parse spans (which predate the parse that yields the
    /// request id) still land inside the trace.
    pub fn start_at(&self, id_hint: u64, origin: Instant) -> TraceCtx {
        let Some(core) = &self.0 else { return TraceCtx(None) };
        let id = if id_hint != 0 {
            TraceId(id_hint)
        } else {
            TraceId(core.next_id.fetch_add(1, Ordering::Relaxed))
        };
        TraceCtx(Some(Arc::new(TraceInner {
            id,
            origin,
            error: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            state: Mutex::new(TraceState {
                spans: Vec::with_capacity(8),
                next_span: 0,
                dropped: 0,
            }),
            core: Arc::clone(core),
        })))
    }

    /// The most recent `limit` retained traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<StoredTrace> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => {
                let st = lock_ignoring_poison(&core.state);
                st.ring.iter().rev().take(limit).cloned().collect()
            }
        }
    }

    /// Looks up one retained trace by id (newest match wins).
    pub fn find(&self, id: TraceId) -> Option<StoredTrace> {
        let core = self.0.as_ref()?;
        let st = lock_ignoring_poison(&core.state);
        st.ring.iter().rev().find(|t| t.id == id).cloned()
    }

    /// Sampler decision totals.
    pub fn stats(&self) -> TraceStats {
        match &self.0 {
            None => TraceStats::default(),
            Some(core) => TraceStats {
                completed: core.completed.load(Ordering::Relaxed),
                sampled: core.sampled.load(Ordering::Relaxed),
                dropped: core.dropped.load(Ordering::Relaxed),
            },
        }
    }

    /// Writes the `limit` most recent retained traces as JSONL (newest
    /// first), the `/trace` wire format.
    ///
    /// # Errors
    ///
    /// Propagates write failures from `w`.
    pub fn write_recent_jsonl(&self, limit: usize, w: &mut impl io::Write) -> io::Result<()> {
        for t in self.recent(limit) {
            writeln!(w, "{}", t.render_jsonl())?;
        }
        Ok(())
    }

    /// Renders the `limit` most recent retained traces as one Chrome
    /// trace-event JSON array for `about:tracing` / Perfetto.
    pub fn render_chrome(&self, limit: usize) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for t in self.recent(limit) {
            t.write_chrome_events(&mut out, &mut first);
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_and_ctx_do_nothing() {
        let tracer = Tracer::noop();
        assert!(!tracer.is_enabled());
        let ctx = tracer.start(42);
        assert!(!ctx.is_active());
        assert_eq!(ctx.id(), TraceId::UNSET);
        let t = Instant::now();
        assert_eq!(ctx.add_span("x", ROOT_SPAN, t, t), ROOT_SPAN);
        ctx.mark_error();
        assert!(ctx.complete().is_none());
        assert!(tracer.recent(10).is_empty());
        assert_eq!(tracer.stats(), TraceStats::default());
        assert_eq!(format!("{ctx:?}"), "TraceCtx(noop)");
        assert_eq!(format!("{tracer:?}"), "Tracer(noop)");
    }

    #[cfg(not(feature = "compile-out"))]
    mod enabled {
        use super::*;

        #[test]
        fn span_tree_records_parent_links_and_offsets() {
            let tracer = Tracer::enabled();
            let origin = Instant::now();
            let ctx = tracer.start_at(7, origin);
            assert_eq!(ctx.id(), TraceId(7));
            let a = origin + Duration::from_micros(10);
            let b = origin + Duration::from_micros(30);
            let parent = ctx.add_span("net.parse", ROOT_SPAN, origin, a);
            let child =
                ctx.add_span_with("serve.eval", parent, a, b, &[("rows", FieldValue::U64(3))]);
            assert_ne!(parent, ROOT_SPAN);
            assert_ne!(child, parent);
            let done = ctx.complete().expect("first completion");
            assert_eq!(done.id, TraceId(7));
            assert!(done.sampled, "first trace of a window is among the slowest K");
            let stored = tracer.find(TraceId(7)).expect("retained");
            assert_eq!(stored.spans[0].name, "request");
            assert_eq!(stored.spans[0].id, ROOT_SPAN);
            let parse = &stored.spans[1];
            let eval = &stored.spans[2];
            assert_eq!(parse.parent, ROOT_SPAN);
            assert_eq!(eval.parent, parse.id);
            assert!(parse.end_ns >= 10_000, "offsets are relative to origin: {parse:?}");
            assert!(eval.start_ns <= eval.end_ns);
            assert_eq!(eval.attrs, vec![("rows", FieldValue::U64(3))]);
        }

        #[test]
        fn completion_is_idempotent() {
            let tracer = Tracer::enabled();
            let ctx = tracer.start(0);
            assert!(ctx.id().is_set(), "generated ids are nonzero");
            assert!(ctx.complete().is_some());
            assert!(ctx.complete().is_none(), "second completion is a noop");
            let clone = ctx.clone();
            assert!(clone.complete().is_none(), "clones share the completion latch");
            assert_eq!(tracer.stats().completed, 1);
        }

        #[test]
        fn generated_ids_are_unique_and_client_ids_are_reused() {
            let tracer = Tracer::enabled();
            let a = tracer.start(0).id();
            let b = tracer.start(0).id();
            assert_ne!(a, b);
            assert_eq!(tracer.start(99).id(), TraceId(99));
        }

        #[test]
        fn tail_sampler_keeps_errors_and_slowest_k() {
            let cfg = TraceConfig {
                ring_capacity: 64,
                window: 1000,
                keep_slowest: 2,
                slow_threshold: None,
            };
            let tracer = Tracer::with_config(cfg);
            let origin = Instant::now() - Duration::from_millis(50);
            // Two slow traces fill the slowest-K slots...
            for id in [1u64, 2] {
                let ctx = tracer.start_at(id, origin);
                assert!(ctx.complete().expect("completes").sampled);
            }
            // ...a fast one (origin = now, ~0 ns) is dropped...
            let fast = tracer.start(3);
            assert!(!fast.complete().expect("completes").sampled);
            // ...but a fast *error* is always kept.
            let err = tracer.start(4);
            err.mark_error();
            let done = err.complete().expect("completes");
            assert!(done.error);
            assert!(done.sampled, "error traces bypass the slowest-K filter");
            let stats = tracer.stats();
            assert_eq!(stats.completed, 4);
            assert_eq!(stats.sampled, 3);
            assert_eq!(stats.dropped, 1);
            assert!(tracer.find(TraceId(3)).is_none());
            assert!(tracer.find(TraceId(4)).expect("kept").error);
        }

        #[test]
        fn window_reset_reopens_slowest_slots() {
            let cfg =
                TraceConfig { ring_capacity: 64, window: 2, keep_slowest: 1, slow_threshold: None };
            let tracer = Tracer::with_config(cfg);
            let slow_origin = Instant::now() - Duration::from_millis(10);
            assert!(tracer.start_at(1, slow_origin).complete().expect("c").sampled);
            // Same window, faster: dropped.
            assert!(!tracer.start(2).complete().expect("c").sampled);
            // New window: the slot is free again, so even a fast trace
            // lands.
            assert!(tracer.start(3).complete().expect("c").sampled);
        }

        #[test]
        fn ring_is_bounded_and_newest_first() {
            let cfg = TraceConfig {
                ring_capacity: 3,
                window: 1000,
                keep_slowest: 1000,
                slow_threshold: None,
            };
            let tracer = Tracer::with_config(cfg);
            for id in 1..=5u64 {
                tracer.start(id).complete();
            }
            let recent = tracer.recent(10);
            let ids: Vec<u64> = recent.iter().map(|t| t.id.0).collect();
            assert_eq!(ids, vec![5, 4, 3], "capacity 3, newest first");
            assert_eq!(tracer.recent(2).len(), 2);
        }

        #[test]
        fn span_cap_counts_drops() {
            let tracer = Tracer::enabled();
            let ctx = tracer.start(1);
            let t = Instant::now();
            for _ in 0..(MAX_SPANS_PER_TRACE + 5) {
                ctx.add_span("s", ROOT_SPAN, t, t);
            }
            ctx.complete();
            let stored = tracer.find(TraceId(1)).expect("kept");
            // +1: the root span is added at completion, outside the cap.
            assert_eq!(stored.spans.len(), MAX_SPANS_PER_TRACE + 1);
            assert_eq!(stored.spans_dropped, 5);
        }

        #[test]
        fn jsonl_and_chrome_rendering() {
            let tracer = Tracer::enabled();
            let origin = Instant::now();
            let ctx = tracer.start_at(11, origin);
            let p = ctx.add_span_with(
                "net.parse",
                ROOT_SPAN,
                origin,
                origin + Duration::from_micros(5),
                &[("proto", FieldValue::Str("http")), ("rows", FieldValue::U64(2))],
            );
            ctx.add_span("serve.eval", p, origin, origin + Duration::from_micros(3));
            ctx.complete();
            let mut out = Vec::new();
            tracer.write_recent_jsonl(10, &mut out).expect("write");
            let text = String::from_utf8(out).expect("utf8");
            assert_eq!(text.lines().count(), 1);
            assert!(text.contains("\"trace_id\":11"), "{text}");
            assert!(text.contains("\"name\":\"request\""), "{text}");
            assert!(text.contains("\"name\":\"net.parse\""), "{text}");
            assert!(text.contains("\"proto\":\"http\""), "{text}");
            assert!(text.contains("\"rows\":2"), "{text}");
            assert!(text.contains("\"parent\":null"), "root parent is null: {text}");
            // The child's parent is the parse span's id.
            assert!(text.contains("\"name\":\"serve.eval\""), "{text}");
            let chrome = tracer.render_chrome(10);
            assert!(chrome.starts_with('['), "{chrome}");
            assert!(chrome.trim_end().ends_with(']'), "{chrome}");
            assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
            assert!(chrome.contains("\"tid\":11"), "{chrome}");
            assert!(chrome.contains("\"name\":\"net.parse\""), "{chrome}");
        }

        #[test]
        fn slow_log_writes_jsonl_over_threshold() {
            use std::sync::{Arc as SArc, Mutex as SMutex};

            #[derive(Clone)]
            struct Shared(SArc<SMutex<Vec<u8>>>);
            impl Write for Shared {
                fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                    self.0.lock().expect("sink").extend_from_slice(buf);
                    Ok(buf.len())
                }
                fn flush(&mut self) -> io::Result<()> {
                    Ok(())
                }
            }

            let sink = Shared(SArc::new(SMutex::new(Vec::new())));
            let cfg = TraceConfig {
                slow_threshold: Some(Duration::from_millis(1)),
                ..TraceConfig::default()
            };
            let tracer = Tracer::with_slow_log(cfg, Box::new(sink.clone()));
            // Fast trace: below threshold, not logged.
            tracer.start(1).complete();
            // Slow trace: origin backdated past the threshold.
            tracer.start_at(2, Instant::now() - Duration::from_millis(5)).complete();
            let logged = String::from_utf8(sink.0.lock().expect("sink").clone()).expect("utf8");
            assert_eq!(logged.lines().count(), 1, "{logged}");
            assert!(logged.contains("\"trace_id\":2"), "{logged}");
        }

        #[test]
        fn exemplars_remember_latest_trace_per_bucket() {
            let ex = Exemplars::new();
            ex.observe(100, TraceId::UNSET);
            assert!(ex.nonempty().is_empty(), "unset ids are ignored");
            ex.observe(100, TraceId(5)); // bucket [64,127]
            ex.observe(120, TraceId(9)); // same bucket: latest wins
            ex.observe(3, TraceId(2)); // bucket [2,3]
            assert_eq!(ex.for_value(127), Some(TraceId(9)));
            assert_eq!(ex.for_value(2), Some(TraceId(2)));
            assert_eq!(ex.for_value(1), None);
            assert_eq!(ex.nonempty(), vec![(3, TraceId(2)), (127, TraceId(9))]);
        }
    }

    #[cfg(feature = "compile-out")]
    #[test]
    fn constructors_compile_out_to_noop() {
        assert!(!Tracer::enabled().is_enabled());
        assert!(!Tracer::with_config(TraceConfig::default()).is_enabled());
        let ctx = Tracer::enabled().start(9);
        assert!(!ctx.is_active());
        assert!(ctx.complete().is_none());
    }
}
