//! Prometheus text exposition (version 0.0.4) for the metrics layer.
//!
//! Renders a [`MetricsRegistry`] — counters, gauges, value histograms, and
//! span histograms — as the plain-text format every Prometheus-compatible
//! scraper understands, with zero dependencies. The pieces compose: the
//! serving layer uses the same [`PromWriter`] to expose its own
//! `ServeMetrics` aggregate next to the registry, under one `GET /metrics`.
//!
//! Conventions follow the exposition-format spec:
//!
//! * Metric names are sanitized ([`sanitize_name`]): the workspace's
//!   dotted names (`serve.requests_shed`) become underscore names
//!   (`serve_requests_shed`); every name is prefixed `crossmine_`.
//! * Counters render as `_total`-suffixed monotonic series.
//! * The log₂ [`Histogram`] renders as a native Prometheus histogram:
//!   cumulative `_bucket{le="..."}` series over the power-of-two bucket
//!   bounds, plus `_sum` and `_count`. Empty interior buckets are elided
//!   (the format permits sparse buckets as long as counts are cumulative)
//!   but `le="+Inf"` is always present, and — because the top log₂ bucket
//!   absorbs everything up to `u64::MAX` — that top bucket *is* the
//!   `+Inf` bucket rather than an `le="18446744073709551615"` artifact.
//! * A histogram with zero samples still emits its `_sum` and `_count`
//!   (both 0) so dashboards can tell "no samples yet" from "series
//!   missing".
//! * Alongside each histogram, pre-computed quantile gauges
//!   (`_p50`/`_p99`, bucket-upper-bound estimates) are exposed for
//!   dashboards that want quantiles without a PromQL `histogram_quantile`.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, Histogram, MetricsRegistry, NUM_BUCKETS};

/// Prefix every exposed metric name carries.
pub const METRIC_PREFIX: &str = "crossmine_";

/// Maps a workspace metric name (`serve.queue_wait_us`) to a valid
/// prefixed Prometheus name (`crossmine_serve_queue_wait_us`). Characters
/// outside `[a-zA-Z0-9_:]` become `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition spec (backslash, quote,
/// newline). Escaping order matters: the backslash case must not
/// re-escape the backslashes this function itself emits, which the
/// per-character match guarantees.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Maps an arbitrary label name onto a valid exposition label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`): invalid characters become `_`, and a
/// leading digit gains a `_` prefix. Label names have no escape syntax
/// in the text format, so sanitizing is the only safe option.
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()) {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a `{k="v",...}` label block with sanitized names and escaped
/// values — the one place label pairs become exposition text, so no
/// caller can emit an invalid document through a hostile value.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

/// An append-only builder for one exposition document. All `write_*`
/// methods sanitize the metric name and emit the `# TYPE` header.
#[derive(Debug, Default)]
pub struct PromWriter {
    buf: String,
    /// Sanitized names whose `# TYPE` header has been emitted by a
    /// labeled-series writer, so many samples share one header.
    labeled_headers: Vec<String>,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Emits a monotonic counter as `<name>_total`.
    pub fn write_counter(&mut self, name: &str, help: &str, value: u64) {
        let n = sanitize_name(name);
        let _ = writeln!(self.buf, "# HELP {n}_total {help}");
        let _ = writeln!(self.buf, "# TYPE {n}_total counter");
        let _ = writeln!(self.buf, "{n}_total {value}");
    }

    /// Emits a gauge.
    pub fn write_gauge(&mut self, name: &str, help: &str, value: i64) {
        let n = sanitize_name(name);
        let _ = writeln!(self.buf, "# HELP {n} {help}");
        let _ = writeln!(self.buf, "# TYPE {n} gauge");
        let _ = writeln!(self.buf, "{n} {value}");
    }

    /// Emits a gauge with a float value (e.g. uptime seconds).
    pub fn write_gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        let n = sanitize_name(name);
        let _ = writeln!(self.buf, "# HELP {n} {help}");
        let _ = writeln!(self.buf, "# TYPE {n} gauge");
        let _ = writeln!(self.buf, "{n} {value}");
    }

    /// Emits an info-style metric: constant value 1 with identifying
    /// labels, the idiom Prometheus uses for build metadata
    /// (`crossmine_buildinfo{version="0.1.0",git_sha="..."} 1`).
    pub fn write_info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        let n = sanitize_name(name);
        let _ = writeln!(self.buf, "# HELP {n} {help}");
        let _ = writeln!(self.buf, "# TYPE {n} gauge");
        let _ = writeln!(self.buf, "{n}{} 1", render_labels(labels));
    }

    /// Emits one sample of a labeled counter series (`<name>_total{...}`).
    /// The `# HELP`/`# TYPE` header is emitted on the first sample of
    /// each name only — one header, many series, per the format spec.
    pub fn write_counter_labeled(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: u64,
    ) {
        let n = format!("{}_total", sanitize_name(name));
        if !self.labeled_headers.contains(&n) {
            let _ = writeln!(self.buf, "# HELP {n} {help}");
            let _ = writeln!(self.buf, "# TYPE {n} counter");
            self.labeled_headers.push(n.clone());
        }
        let _ = writeln!(self.buf, "{n}{} {value}", render_labels(labels));
    }

    /// Emits one sample of a labeled gauge series (see
    /// [`write_counter_labeled`](Self::write_counter_labeled)).
    pub fn write_gauge_labeled(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: i64,
    ) {
        let n = sanitize_name(name);
        if !self.labeled_headers.contains(&n) {
            let _ = writeln!(self.buf, "# HELP {n} {help}");
            let _ = writeln!(self.buf, "# TYPE {n} gauge");
            self.labeled_headers.push(n.clone());
        }
        let _ = writeln!(self.buf, "{n}{} {value}", render_labels(labels));
    }

    /// Emits one log₂ [`Histogram`] as a Prometheus histogram (cumulative
    /// `le` buckets, `_sum`, `_count`) followed by `_p50`/`_p99` quantile
    /// gauges. Zero-sample histograms still emit `_sum`, `_count`, and the
    /// `+Inf` bucket.
    pub fn write_histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.write_histogram_buckets(name, help, &h.bucket_counts(), h.sum(), h.count());
        self.write_quantile_gauges(name, h.quantile(0.50), h.quantile(0.99));
    }

    /// [`write_histogram`](Self::write_histogram) from raw parts, for
    /// callers that hold a snapshot instead of a live histogram.
    pub fn write_histogram_buckets(
        &mut self,
        name: &str,
        help: &str,
        buckets: &[u64; NUM_BUCKETS],
        sum: u64,
        count: u64,
    ) {
        let n = sanitize_name(name);
        let _ = writeln!(self.buf, "# HELP {n} {help}");
        let _ = writeln!(self.buf, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        // Interior buckets: sparse (empty ones elided). The final log₂
        // bucket is deliberately *not* rendered with its numeric upper
        // bound — it covers everything to u64::MAX, so it is the +Inf
        // bucket below.
        for (i, &c) in buckets.iter().enumerate().take(NUM_BUCKETS - 1) {
            if c == 0 {
                continue;
            }
            cumulative += c;
            let _ =
                writeln!(self.buf, "{n}_bucket{{le=\"{}\"}} {cumulative}", bucket_upper_bound(i));
        }
        let _ = writeln!(self.buf, "{n}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(self.buf, "{n}_sum {sum}");
        let _ = writeln!(self.buf, "{n}_count {count}");
    }

    /// Emits `_p50`/`_p99` quantile gauges for a histogram-shaped metric.
    pub fn write_quantile_gauges(&mut self, name: &str, p50: u64, p99: u64) {
        let n = sanitize_name(name);
        for (q, v) in [("p50", p50), ("p99", p99)] {
            let _ = writeln!(self.buf, "# TYPE {n}_{q} gauge");
            let _ = writeln!(self.buf, "{n}_{q} {v}");
        }
    }

    /// Appends every metric of `registry`: counters, gauges, value
    /// histograms, and span histograms (span durations are nanoseconds;
    /// their names gain a `_ns` suffix to say so).
    pub fn write_registry(&mut self, registry: &MetricsRegistry) {
        self.write_registry_except(registry, &[]);
    }

    /// Like [`write_registry`](Self::write_registry), but skips metrics
    /// whose (unsanitized) names appear in `skip`. Callers use this when
    /// they already rendered some quantities from a more authoritative
    /// source — a Prometheus document must not define a name twice.
    pub fn write_registry_except(&mut self, registry: &MetricsRegistry, skip: &[&str]) {
        for (name, v) in registry.counter_values() {
            if !skip.contains(&name) {
                self.write_counter(name, "workspace counter", v);
            }
        }
        for (name, v) in registry.gauge_values() {
            if !skip.contains(&name) {
                self.write_gauge(name, "workspace gauge", v);
            }
        }
        for (name, h) in registry.histogram_handles() {
            if !skip.contains(&name) {
                self.write_histogram(name, "workspace histogram", &h);
            }
        }
        for (name, h) in registry.span_handles() {
            if !skip.contains(&name) {
                self.write_histogram(&format!("{name}_ns"), "span duration (ns)", &h);
            }
        }
    }
}

/// Renders `registry` as one complete exposition document.
pub fn render_registry(registry: &MetricsRegistry) -> String {
    let mut w = PromWriter::new();
    w.write_registry(registry);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scrape-stability pin: running traced request lifecycles must not
    /// add, remove, or alter anything in a metrics registry's Prometheus
    /// exposition — the trace ring, tail sampler, and exemplars live
    /// entirely outside the registry, so the `/metrics` surface with
    /// tracing disabled is byte-identical to the pre-trace surface.
    #[test]
    fn tracing_activity_never_changes_the_scrape_surface() {
        use crate::{ObsHandle, TraceConfig, Tracer, ROOT_SPAN};
        let obs = ObsHandle::enabled();
        obs.add("serve.requests", 3);
        obs.record("serve.latency_us", 250);
        let registry = obs.registry().expect("enabled handle has a registry");
        let before = render_registry(registry);
        // A full traced lifecycle: spans, attrs, an error, completion
        // (which runs the tail sampler), plus a no-op tracer for the
        // compile-out path.
        for tracer in [Tracer::with_config(TraceConfig::default()), Tracer::noop()] {
            let ctx = tracer.start(7);
            let t = std::time::Instant::now();
            let s = ctx.add_span("net.parse", ROOT_SPAN, t, t);
            ctx.add_span_with("serve.eval", s, t, t, &[("rows", 1u64.into())]);
            ctx.mark_error();
            let _ = ctx.complete();
        }
        let after = render_registry(registry);
        assert_eq!(before, after, "tracing leaked into the scrape surface");
    }

    #[test]
    fn names_are_sanitized_and_prefixed() {
        assert_eq!(sanitize_name("serve.requests_shed"), "crossmine_serve_requests_shed");
        assert_eq!(sanitize_name("a-b c"), "crossmine_a_b_c");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    /// The label-escaping pin: every character class the exposition
    /// format gives special meaning to — backslash, double quote,
    /// newline — must round-trip through exactly one escape, including
    /// pathological runs and pre-escaped input (which must NOT be
    /// double-unescapable).
    #[test]
    fn label_value_escaping_covers_every_special_character() {
        assert_eq!(escape_label_value(""), "");
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("\\"), "\\\\");
        assert_eq!(escape_label_value("\\\\"), "\\\\\\\\");
        assert_eq!(escape_label_value("\""), "\\\"");
        assert_eq!(escape_label_value("\n"), "\\n");
        assert_eq!(escape_label_value("\n\n"), "\\n\\n");
        // Already-escaped-looking input gains another layer (the format
        // has no idempotent escape; re-escaping is the correct behavior).
        assert_eq!(escape_label_value("\\n"), "\\\\n");
        assert_eq!(escape_label_value("\\\""), "\\\\\\\"");
        // Other control/unicode characters pass through untouched.
        assert_eq!(escape_label_value("t\tb √"), "t\tb √");
    }

    #[test]
    fn label_names_sanitize_to_the_legal_charset() {
        assert_eq!(sanitize_label_name("shard"), "shard");
        assert_eq!(sanitize_label_name("shard-id"), "shard_id");
        assert_eq!(sanitize_label_name("shard.0"), "shard_0");
        assert_eq!(sanitize_label_name("0shard"), "_0shard");
        assert_eq!(sanitize_label_name(""), "_");
        assert_eq!(sanitize_label_name("lock name"), "lock_name");
    }

    /// A hostile label value can never produce an invalid exposition
    /// document through the labeled writers: the emitted line must stay
    /// a single line and keep its quotes balanced.
    #[test]
    fn labeled_series_survive_hostile_label_values() {
        let mut w = PromWriter::new();
        w.write_counter_labeled(
            "profile.lock_waits",
            "lock wait",
            &[("lock", "queue\"inner\\path\nnext")],
            3,
        );
        w.write_gauge_labeled("shard.depth", "depth", &[("shard", "0")], 5);
        let text = w.finish();
        let sample = text
            .lines()
            .find(|l| l.starts_with("crossmine_profile_lock_waits_total{"))
            .expect("sample line present");
        assert_eq!(
            sample,
            "crossmine_profile_lock_waits_total{lock=\"queue\\\"inner\\\\path\\nnext\"} 3"
        );
        // Unescaped quotes (a parser's view: `\"` is content) must be
        // exactly the value's delimiters.
        let unescaped_quotes = sample.replace("\\\\", "").replace("\\\"", "").matches('"').count();
        assert_eq!(unescaped_quotes, 2, "unbalanced quotes: {sample}");
        assert!(text.contains("crossmine_shard_depth{shard=\"0\"} 5"), "{text}");
    }

    /// Labeled series share one `# TYPE` header per name, however many
    /// samples are written — a duplicate header is an invalid document.
    #[test]
    fn labeled_series_emit_one_header_per_name() {
        let mut w = PromWriter::new();
        for shard in 0..3 {
            let v = shard.to_string();
            w.write_counter_labeled("shard.requests", "per-shard", &[("shard", &v)], 10);
            w.write_gauge_labeled("shard.queue_depth", "per-shard", &[("shard", &v)], 1);
        }
        let text = w.finish();
        assert_eq!(text.matches("# TYPE crossmine_shard_requests_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE crossmine_shard_queue_depth gauge").count(), 1);
        assert_eq!(text.matches("crossmine_shard_requests_total{shard=").count(), 3);
    }

    #[test]
    fn counter_and_gauge_render_with_type_headers() {
        let mut w = PromWriter::new();
        w.write_counter("serve.requests", "requests admitted", 7);
        w.write_gauge("queue.depth", "current depth", -2);
        let text = w.finish();
        assert!(text.contains("# TYPE crossmine_serve_requests_total counter"), "{text}");
        assert!(text.contains("crossmine_serve_requests_total 7"), "{text}");
        assert!(text.contains("# TYPE crossmine_queue_depth gauge"), "{text}");
        assert!(text.contains("crossmine_queue_depth -2"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_le_labels() {
        let h = Histogram::new();
        for v in [1u64, 1, 3, 100] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.write_histogram("latency.us", "latency", &h);
        let text = w.finish();
        // 1,1 in bucket le=1; 3 in le=3; 100 in le=127; cumulative.
        assert!(text.contains("crossmine_latency_us_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("crossmine_latency_us_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("crossmine_latency_us_bucket{le=\"127\"} 4"), "{text}");
        assert!(text.contains("crossmine_latency_us_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("crossmine_latency_us_sum 105"), "{text}");
        assert!(text.contains("crossmine_latency_us_count 4"), "{text}");
        // Quantile gauges ride along.
        assert!(text.contains("crossmine_latency_us_p50 1"), "{text}");
        assert!(text.contains("crossmine_latency_us_p99 127"), "{text}");
    }

    #[test]
    fn zero_count_histogram_still_emits_sum_count_and_inf() {
        let h = Histogram::new();
        let mut w = PromWriter::new();
        w.write_histogram("empty.h", "empty", &h);
        let text = w.finish();
        assert!(text.contains("crossmine_empty_h_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("crossmine_empty_h_sum 0"), "{text}");
        assert!(text.contains("crossmine_empty_h_count 0"), "{text}");
    }

    #[test]
    fn top_bucket_renders_as_inf_not_overflow_bound() {
        let h = Histogram::new();
        h.record(1u64 << 62); // lands in the top (overflow) log₂ bucket
        let mut w = PromWriter::new();
        w.write_histogram("big.h", "big", &h);
        let text = w.finish();
        // The top bucket's numeric upper bound (2^39 - 1) must never
        // appear as an `le` label: the bucket holds everything beyond it.
        let overflow_bound = format!("le=\"{}\"", bucket_upper_bound(NUM_BUCKETS - 1));
        assert!(!text.contains(&overflow_bound), "top bucket leaked {overflow_bound}:\n{text}");
        assert!(text.contains("crossmine_big_h_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("crossmine_big_h_count 1"), "{text}");
    }

    #[test]
    fn info_metric_renders_labels() {
        let mut w = PromWriter::new();
        w.write_info("buildinfo", "build metadata", &[("version", "0.1.0"), ("git_sha", "abc")]);
        let text = w.finish();
        assert!(
            text.contains("crossmine_buildinfo{version=\"0.1.0\",git_sha=\"abc\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn count_store_metrics_export_under_stable_names() {
        // The learner flushes its sufficient-statistics count store into
        // these exact metric names; dashboards scrape the sanitized forms,
        // so renames here are breaking changes.
        let r = MetricsRegistry::new();
        r.counter("stats.cache_hits").add(12);
        r.counter("stats.cache_misses").add(4);
        r.counter("stats.cache_evictions").add(1);
        r.gauge("stats.cache_bytes").set(65_536);
        let text = render_registry(&r);
        assert!(text.contains("crossmine_stats_cache_hits_total 12"), "{text}");
        assert!(text.contains("crossmine_stats_cache_misses_total 4"), "{text}");
        assert!(text.contains("crossmine_stats_cache_evictions_total 1"), "{text}");
        assert!(text.contains("crossmine_stats_cache_bytes 65536"), "{text}");
    }

    #[test]
    fn registry_renders_every_metric_kind() {
        let r = MetricsRegistry::new();
        r.counter("c.one").add(3);
        r.gauge("g.one").set(5);
        r.histogram("h.one").record(9);
        r.span_histogram("s.one").record(1_000);
        let text = render_registry(&r);
        assert!(text.contains("crossmine_c_one_total 3"), "{text}");
        assert!(text.contains("crossmine_g_one 5"), "{text}");
        assert!(text.contains("crossmine_h_one_count 1"), "{text}");
        assert!(text.contains("crossmine_s_one_ns_count 1"), "{text}");
    }
}
