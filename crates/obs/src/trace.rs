//! The span/event tracing core: structured [`Event`]s with monotonic
//! timings, a thread-safe [`Recorder`] with pluggable [`Sink`]s (in-memory
//! ring buffer, JSONL writer, no-op), and per-thread span nesting depth.
//!
//! Events are optional detail on top of the always-aggregated span
//! histograms in [`crate::metrics::MetricsRegistry`]: an
//! [`ObsHandle`](crate::ObsHandle) built with
//! [`enabled`](crate::ObsHandle::enabled) aggregates timings lock-free and
//! emits no events at all; one built with
//! [`with_sink`](crate::ObsHandle::with_sink) /
//! [`with_ring`](crate::ObsHandle::with_ring) additionally streams every
//! span enter/exit and `trace!` point to its sink.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::jsonl;

/// One structured field value. `Str` is `&'static str` so that building a
/// field never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string.
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span began.
    Enter,
    /// A span ended; `elapsed_ns` holds its duration.
    Exit,
    /// A point event from `trace!`.
    Instant,
}

impl EventKind {
    /// The wire name used in JSONL ("enter"/"exit"/"instant").
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Instant => "instant",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order (per recorder).
    pub seq: u64,
    /// Ordinal of the emitting thread (stable within a process).
    pub thread: u64,
    /// Span nesting depth on the emitting thread at emission time.
    pub depth: u16,
    /// Enter / exit / instant.
    pub kind: EventKind,
    /// Span or trace-point name.
    pub name: &'static str,
    /// Span duration, set on [`EventKind::Exit`].
    pub elapsed_ns: Option<u64>,
    /// Structured key=value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// The ordinal of the calling thread (assigned on first use).
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// The calling thread's current span nesting depth.
pub fn current_depth() -> u16 {
    DEPTH.with(Cell::get)
}

pub(crate) fn push_depth() -> u16 {
    DEPTH.with(|d| {
        let cur = d.get();
        d.set(cur.saturating_add(1));
        cur
    })
}

pub(crate) fn pop_depth(restore: u16) {
    DEPTH.with(|d| d.set(restore));
}

/// Where events go. Implementations must be cheap enough to call from
/// worker threads and must not panic.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every event (aggregated span timings still accumulate).
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// A bounded in-memory ring: keeps the most recent `capacity` events and
/// counts how many older ones were evicted.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    inner: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<Event>,
    evicted: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (floored at 1).
    pub fn new(capacity: usize) -> Self {
        RingSink { capacity: capacity.max(1), inner: Mutex::new(RingState::default()) }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring sink poisoned").events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("ring sink poisoned").evicted
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut st = self.inner.lock().expect("ring sink poisoned");
        st.events.drain(..).collect()
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let mut st = self.inner.lock().expect("ring sink poisoned");
        if st.events.len() >= self.capacity {
            st.events.pop_front();
            st.evicted += 1;
        }
        st.events.push_back(event.clone());
    }
}

/// Streams each event as one JSON line to a writer (a file, a `Vec<u8>`…).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing to `w`.
    pub fn new(w: W) -> Self {
        JsonlSink { inner: Mutex::new(w) }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.inner.into_inner().expect("jsonl sink poisoned")
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = jsonl::event_to_json(event);
        let mut w = self.inner.lock().expect("jsonl sink poisoned");
        // A full disk must not take the workload down with it.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.inner.lock().expect("jsonl sink poisoned").flush();
    }
}

/// Thread-safe event recorder: stamps each event with a global sequence
/// number, the emitting thread's ordinal, and its current nesting depth,
/// then hands it to the sink.
pub struct Recorder {
    sink: Arc<dyn Sink>,
    seq: AtomicU64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("seq", &self.seq).finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder feeding `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Recorder { sink, seq: AtomicU64::new(0) }
    }

    /// Emits one event.
    pub fn emit(
        &self,
        kind: EventKind,
        name: &'static str,
        elapsed_ns: Option<u64>,
        fields: &[(&'static str, FieldValue)],
    ) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            thread: thread_ordinal(),
            depth: current_depth(),
            kind,
            name,
            elapsed_ns,
            fields: fields.to_vec(),
        };
        self.sink.record(&event);
    }

    /// Number of events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_evictions() {
        let ring = RingSink::new(2);
        let rec = Recorder::new(Arc::new(NoopSink));
        for i in 0..4u64 {
            let ev = Event {
                seq: i,
                thread: 0,
                depth: 0,
                kind: EventKind::Instant,
                name: "e",
                elapsed_ns: None,
                fields: Vec::new(),
            };
            ring.record(&ev);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 2);
        let drained = ring.drain();
        assert_eq!(drained.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3]);
        assert!(ring.is_empty());
        drop(rec);
    }

    #[test]
    fn recorder_stamps_sequence_and_thread() {
        let ring = Arc::new(RingSink::new(16));
        let rec = Recorder::new(Arc::clone(&ring) as Arc<dyn Sink>);
        rec.emit(EventKind::Instant, "a", None, &[("k", FieldValue::U64(1))]);
        rec.emit(EventKind::Exit, "b", Some(42), &[]);
        assert_eq!(rec.emitted(), 2);
        let evs = ring.drain();
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[0].thread, evs[1].thread);
        assert_eq!(evs[1].elapsed_ns, Some(42));
        assert_eq!(evs[0].fields, vec![("k", FieldValue::U64(1))]);
    }
}
