//! Property tests for the log₂ histogram: quantiles are monotone in `q`,
//! every reported quantile is a valid bucket upper bound that brackets the
//! true (exact) quantile from above by at most 2×, and recorded values
//! always land inside their bucket's bounds.

use proptest::prelude::*;

use crossmine_obs::metrics::{bucket_of, bucket_upper_bound, Histogram, NUM_BUCKETS};

/// Exact `q`-quantile over the raw samples, matching the histogram's rank
/// convention (`rank = ceil(q * n)` clamped to `1..=n`, 1-indexed).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn p50_le_p99_and_quantiles_bracket_truth(
        // Stay below the saturating top bucket so the 2x bound is exact.
        values in proptest::collection::vec(0u64..(1 << 37), 1..200),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        prop_assert!(p50 <= p99, "p50 {p50} > p99 {p99} for {values:?}");
        prop_assert!(p99 <= h.quantile(1.0));

        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let est = h.quantile(q);
            let truth = exact_quantile(&sorted, q);
            // The estimate is the upper bound of the bucket holding the
            // ranked sample: never below the truth, and (for non-saturated
            // buckets) less than 2x above it.
            prop_assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            prop_assert!(
                est <= truth.saturating_mul(2).max(1),
                "q={q}: est {est} > 2x truth {truth}"
            );
            // And it is an actual bucket upper bound of a nonempty bucket.
            prop_assert!(
                h.nonempty_buckets().iter().any(|&(ub, _)| ub == est),
                "q={q}: est {est} is not a nonempty bucket bound"
            );
        }

        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn values_fall_inside_their_bucket_bounds(v in 0u64..u64::MAX) {
        let b = bucket_of(v);
        prop_assert!(b < NUM_BUCKETS);
        // Bucket lower bound: 0 for bucket 0, else 2^(b-1).
        let lower = if b == 0 { 0 } else { 1u64 << (b - 1) };
        prop_assert!(v >= lower, "v {v} below bucket {b} lower bound {lower}");
        if b < NUM_BUCKETS - 1 {
            prop_assert!(
                v <= bucket_upper_bound(b),
                "v {v} above bucket {b} upper bound {}",
                bucket_upper_bound(b)
            );
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(
        values in proptest::collection::vec(0u64..u64::MAX, 1..100),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }
}

#[test]
fn empty_histogram_reports_zero() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.max(), 0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn top_bucket_saturates() {
    let h = Histogram::new();
    h.record(u64::MAX);
    assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    assert_eq!(h.quantile(1.0), bucket_upper_bound(NUM_BUCKETS - 1));
    // `max` still reports the exact extreme, even though the bucket caps.
    assert_eq!(h.max(), u64::MAX);
}
