//! The no-op handle's cost contract: instrumentation calls on
//! [`ObsHandle::noop`] perform **zero heap allocation**. This is what makes
//! it safe to leave spans and counters in the learner's hot loops.
//!
//! Uses a counting wrapper around the system allocator; the binary is its
//! own test target so the global allocator doesn't leak into other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Asserts that `body` performs zero allocations. The counter is
/// process-global, so a runtime thread (test harness bookkeeping) can
/// land a stray one-off allocation mid-window; a *genuine* leak in the
/// instrumented loop allocates on every attempt, so one clean attempt
/// out of five proves the zero-alloc contract.
fn assert_zero_alloc(label: &str, body: impl Fn()) {
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = alloc_count();
        body();
        let delta = alloc_count() - before;
        if delta == 0 {
            return;
        }
        min_delta = min_delta.min(delta);
    }
    panic!("{label}: allocated every attempt (min {min_delta} allocations)");
}

#[test]
fn noop_handle_allocates_nothing() {
    let obs = crossmine_obs::ObsHandle::noop();
    let clone = obs.clone();

    // Warm up any lazy runtime state (thread-locals, fmt machinery).
    {
        let _g = obs.span("warmup");
    }
    obs.add("warmup", 1);

    assert_zero_alloc("no-op instrumentation", || {
        for i in 0..10_000u64 {
            let _span = obs.span("propagation.pass");
            let _nested = clone.span_with("search.candidate", &[("i", i.into())]);
            obs.add("propagation.ids_propagated", i);
            obs.record("batch.size", i);
            obs.gauge_set("queue.depth", i as i64);
            obs.event("tick", &[("i", i.into())]);
            crossmine_obs::trace!(obs, "point", i = i);
            let _m = crossmine_obs::span!(obs, "macro.span", i = i);
        }
    });

    // Cloning and dropping the no-op handle is also free. Kept in the same
    // test: concurrent tests would race on the process-global counter.
    assert_zero_alloc("no-op handle clone", || {
        for _ in 0..1_000 {
            let c = obs.clone();
            drop(c);
        }
    });

    // The trace-context path holds the same contract: a noop Tracer and
    // the contexts it hands out cost zero allocations per request —
    // start, span recording, error marking, cloning through the queue,
    // and completion included. This is the compile-out CI leg's proof
    // that disabled tracing stays off the allocator entirely.
    use crossmine_obs::{TraceId, Tracer, ROOT_SPAN};
    let tracer = Tracer::noop();
    let t0 = std::time::Instant::now();
    assert_zero_alloc("no-op trace contexts", || {
        for i in 0..10_000u64 {
            let ctx = tracer.start(i);
            let rider = ctx.clone(); // the copy that rides the admission queue
            let span = ctx.add_span("net.parse", ROOT_SPAN, t0, t0);
            ctx.add_span_with("serve.eval", span, t0, t0, &[("rows", i.into())]);
            rider.mark_error();
            assert_eq!(rider.id(), TraceId::UNSET);
            assert!(ctx.complete().is_none());
            drop(rider);
        }
    });

    // The profiler holds the same contract on its disabled path: frame
    // guards, lock timers, and handle clones must never touch the
    // allocator. Under `--features compile-out` even `Profiler::enabled`
    // collapses to the noop, so the CI compile-out leg exercises that
    // variant here and proves per-request cost is exactly zero bytes.
    use crossmine_obs::{LockTimer, Profiler};
    let profiler =
        if cfg!(feature = "compile-out") { Profiler::enabled() } else { Profiler::noop() };
    let timer = profiler.lock_timer("stats_cache");
    let noop_timer = LockTimer::noop();
    // Warm up: first call may lazily init fmt/TLS machinery.
    {
        let _g = profiler.enter("warmup");
        let _ = timer.time(|| 0u64);
    }
    assert_zero_alloc("disabled profiler", || {
        for i in 0..10_000u64 {
            let _frame = profiler.enter("serve.eval");
            let _nested = profiler.enter("net.parse");
            let v = timer.time(|| i);
            let w = noop_timer.time(|| i + 1);
            assert_eq!(v + 1, w);
            let c = profiler.clone();
            assert!(!c.is_enabled() || cfg!(feature = "compile-out"));
            drop(c);
        }
    });
}
