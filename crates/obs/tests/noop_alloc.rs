//! The no-op handle's cost contract: instrumentation calls on
//! [`ObsHandle::noop`] perform **zero heap allocation**. This is what makes
//! it safe to leave spans and counters in the learner's hot loops.
//!
//! Uses a counting wrapper around the system allocator; the binary is its
//! own test target so the global allocator doesn't leak into other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn noop_handle_allocates_nothing() {
    let obs = crossmine_obs::ObsHandle::noop();
    let clone = obs.clone();

    // Warm up any lazy runtime state (thread-locals, fmt machinery).
    {
        let _g = obs.span("warmup");
    }
    obs.add("warmup", 1);

    let before = alloc_count();
    for i in 0..10_000u64 {
        let _span = obs.span("propagation.pass");
        let _nested = clone.span_with("search.candidate", &[("i", i.into())]);
        obs.add("propagation.ids_propagated", i);
        obs.record("batch.size", i);
        obs.gauge_set("queue.depth", i as i64);
        obs.event("tick", &[("i", i.into())]);
        crossmine_obs::trace!(obs, "point", i = i);
        let _m = crossmine_obs::span!(obs, "macro.span", i = i);
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "no-op instrumentation must not allocate");

    // Cloning and dropping the no-op handle is also free. Kept in the same
    // test: concurrent tests would race on the process-global counter.
    let before = alloc_count();
    for _ in 0..1_000 {
        let c = obs.clone();
        drop(c);
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "cloning a no-op handle must not allocate");

    // The trace-context path holds the same contract: a noop Tracer and
    // the contexts it hands out cost zero allocations per request —
    // start, span recording, error marking, cloning through the queue,
    // and completion included. This is the compile-out CI leg's proof
    // that disabled tracing stays off the allocator entirely.
    use crossmine_obs::{TraceId, Tracer, ROOT_SPAN};
    let tracer = Tracer::noop();
    let t0 = std::time::Instant::now();
    let before = alloc_count();
    for i in 0..10_000u64 {
        let ctx = tracer.start(i);
        let rider = ctx.clone(); // the copy that rides the admission queue
        let span = ctx.add_span("net.parse", ROOT_SPAN, t0, t0);
        ctx.add_span_with("serve.eval", span, t0, t0, &[("rows", i.into())]);
        rider.mark_error();
        assert_eq!(rider.id(), TraceId::UNSET);
        assert!(ctx.complete().is_none());
        drop(rider);
    }
    let after = alloc_count();
    assert_eq!(after - before, 0, "no-op trace contexts must not allocate");
}
