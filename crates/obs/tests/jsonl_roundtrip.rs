//! JSONL sink round-trip: events streamed through a [`JsonlSink`] must
//! parse back (via the crate's own parser) into exactly what was emitted —
//! sequence, thread, depth, kind, name, duration, and every field value.

use std::sync::{Arc, Mutex};

use crossmine_obs::jsonl::{parse_event, ParsedValue};
use crossmine_obs::trace::{EventKind, JsonlSink};
use crossmine_obs::{FieldValue, ObsHandle};

/// A `Write` target the test can read back after the sink is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn events_round_trip_through_jsonl() {
    let buf = SharedBuf::default();
    let obs = ObsHandle::with_sink(Arc::new(JsonlSink::new(buf.clone())));

    {
        let _span = obs.span_with(
            "train.clause",
            &[
                ("relation", FieldValue::Str("Loan")),
                ("tuples", FieldValue::U64(200)),
                ("gain", FieldValue::F64(3.25)),
                ("negated", FieldValue::Bool(false)),
                ("delta", FieldValue::I64(-7)),
            ],
        );
        obs.event("inner.point", &[("n", FieldValue::U64(42))]);
    }
    obs.flush();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "enter + instant + exit:\n{text}");

    let parsed: Vec<_> = lines
        .iter()
        .map(|l| parse_event(l).unwrap_or_else(|| panic!("unparseable line: {l}")))
        .collect();

    // Enter event carries all five field types, values intact.
    let enter = &parsed[0];
    assert_eq!(enter.event_kind(), Some(EventKind::Enter));
    assert_eq!(enter.name, "train.clause");
    assert_eq!(enter.seq, 0);
    assert_eq!(enter.depth, 0);
    let emitted = [
        ("relation", FieldValue::Str("Loan")),
        ("tuples", FieldValue::U64(200)),
        ("gain", FieldValue::F64(3.25)),
        ("negated", FieldValue::Bool(false)),
        ("delta", FieldValue::I64(-7)),
    ];
    assert_eq!(enter.fields.len(), emitted.len());
    for ((pk, pv), (ek, ev)) in enter.fields.iter().zip(emitted.iter()) {
        assert_eq!(pk, ek);
        assert!(pv.matches(ev), "field {pk}: parsed {pv:?} != emitted {ev:?}");
    }

    // The instant point is stamped inside the span (depth 1).
    let point = &parsed[1];
    assert_eq!(point.event_kind(), Some(EventKind::Instant));
    assert_eq!(point.name, "inner.point");
    assert_eq!(point.depth, 1);
    assert_eq!(point.fields, vec![("n".to_string(), ParsedValue::U64(42))]);

    // Exit closes the span with a measured duration.
    let exit = &parsed[2];
    assert_eq!(exit.event_kind(), Some(EventKind::Exit));
    assert_eq!(exit.name, "train.clause");
    assert!(exit.elapsed_ns.is_some());
    assert_eq!(exit.seq, 2);
}

#[test]
fn awkward_strings_survive_escaping() {
    // Names and string fields with quotes, backslashes, control characters,
    // and non-ASCII must parse back identically.
    let buf = SharedBuf::default();
    let obs = ObsHandle::with_sink(Arc::new(JsonlSink::new(buf.clone())));
    obs.event(
        "weird \"name\"\\with\tstuff",
        &[("msg", FieldValue::Str("line1\nline2 \u{1F980} \"q\" \\"))],
    );
    obs.flush();

    let bytes = buf.0.lock().unwrap().clone();
    let line = String::from_utf8(bytes).unwrap();
    let ev = parse_event(line.trim_end()).expect("escaped line parses");
    assert_eq!(ev.name, "weird \"name\"\\with\tstuff");
    assert_eq!(
        ev.fields,
        vec![("msg".to_string(), ParsedValue::Str("line1\nline2 \u{1F980} \"q\" \\".to_string()))]
    );
}

#[test]
fn metrics_jsonl_export_is_parseable_json_lines() {
    let obs = ObsHandle::enabled();
    {
        let _s = obs.span("learner.clause");
    }
    obs.add("propagation.passes", 3);
    obs.record("batch.size", 17);
    obs.gauge_set("queue.depth", 4);

    let mut out = Vec::new();
    obs.write_metrics_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        // Minimal shape check: each line is a JSON object naming a metric.
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        assert!(line.contains("\"name\":"), "unnamed metric line: {line}");
    }
    assert!(text.contains("propagation.passes"));
    assert!(text.contains("learner.clause"));
    assert!(text.contains("batch.size"));
    assert!(text.contains("queue.depth"));
}
