//! Tracing-core integration tests: concurrent recorder writes preserve
//! every event, span nesting depth is stamped correctly, and the ring
//! sink's bounded-retention contract holds under real span traffic.

use std::sync::Arc;
use std::thread;

use crossmine_obs::trace::{EventKind, RingSink};
use crossmine_obs::{ObsHandle, TrainReport};

#[test]
fn concurrent_writes_preserve_every_event() {
    const THREADS: usize = 8;
    const EVENTS_PER_THREAD: usize = 250;
    let (obs, ring) = ObsHandle::with_ring(THREADS * EVENTS_PER_THREAD);

    thread::scope(|scope| {
        for _ in 0..THREADS {
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    obs.event("worker.tick", &[("i", (i as u64).into())]);
                }
            });
        }
    });

    let events = ring.drain();
    assert_eq!(events.len(), THREADS * EVENTS_PER_THREAD, "no event lost");
    assert_eq!(ring.evicted(), 0);

    // Sequence numbers are a permutation of 0..N: nothing dropped, nothing
    // duplicated, even under contention.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    let expected: Vec<u64> = (0..(THREADS * EVENTS_PER_THREAD) as u64).collect();
    assert_eq!(seqs, expected);

    // Every participating thread got a distinct ordinal.
    let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), THREADS);

    // The aggregate counter agrees with the sink.
    let counters = obs.registry().unwrap().counter_values();
    assert_eq!(counters, vec![("worker.tick", (THREADS * EVENTS_PER_THREAD) as u64)]);
}

#[test]
fn span_nesting_depth_is_stamped_per_level() {
    let (obs, ring) = ObsHandle::with_ring(64);
    {
        let _outer = obs.span("outer");
        {
            let _mid = obs.span("mid");
            let _inner = obs.span("inner");
        }
        let _sibling = obs.span("sibling");
    }
    let events = ring.drain();
    let depth_of = |name: &str, kind: EventKind| {
        events.iter().find(|e| e.name == name && e.kind == kind).map(|e| e.depth).unwrap()
    };
    assert_eq!(depth_of("outer", EventKind::Enter), 0);
    assert_eq!(depth_of("mid", EventKind::Enter), 1);
    assert_eq!(depth_of("inner", EventKind::Enter), 2);
    // `sibling` starts after `mid`/`inner` closed: back at depth 1.
    assert_eq!(depth_of("sibling", EventKind::Enter), 1);
    // Exit events carry the *inner* depth (emitted before the pop's effect
    // is visible to the next span) and a measured duration.
    for name in ["outer", "mid", "inner", "sibling"] {
        let exit = events.iter().find(|e| e.name == name && e.kind == EventKind::Exit).unwrap();
        assert!(exit.elapsed_ns.is_some(), "{name} exit has a duration");
    }
}

#[test]
fn depth_is_isolated_per_thread() {
    let (obs, ring) = ObsHandle::with_ring(256);
    thread::scope(|scope| {
        for _ in 0..4 {
            let obs = obs.clone();
            scope.spawn(move || {
                for _ in 0..8 {
                    let _a = obs.span("a");
                    let _b = obs.span("b");
                }
            });
        }
    });
    for e in ring.drain() {
        match (e.name, e.kind) {
            ("a", EventKind::Enter) => assert_eq!(e.depth, 0),
            ("b", EventKind::Enter) => assert_eq!(e.depth, 1),
            _ => {}
        }
    }
}

#[test]
fn ring_sink_keeps_most_recent_under_span_traffic() {
    let ring = Arc::new(RingSink::new(10));
    let obs = ObsHandle::with_sink(Arc::clone(&ring) as _);
    for _ in 0..50 {
        let _s = obs.span("hot");
    }
    // 50 spans → 100 events through a 10-slot ring.
    assert_eq!(ring.len(), 10);
    assert_eq!(ring.evicted(), 90);
    let events = ring.drain();
    assert_eq!(events.first().unwrap().seq, 90, "oldest surviving event");
    assert_eq!(events.last().unwrap().seq, 99, "newest event");
    // Aggregation is unaffected by ring eviction: all 50 spans counted.
    let spans = obs.registry().unwrap().span_snapshots();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].count, 50);
}

#[test]
fn concurrent_span_aggregation_counts_every_span() {
    const THREADS: usize = 6;
    const SPANS_PER_THREAD: u64 = 500;
    let obs = ObsHandle::enabled();
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let obs = obs.clone();
            scope.spawn(move || {
                for _ in 0..SPANS_PER_THREAD {
                    let _s = obs.span("parallel.work");
                    obs.add("parallel.items", 2);
                }
            });
        }
    });
    let report = TrainReport::from_handle(&obs);
    let span = report.0.spans.iter().find(|s| s.name == "parallel.work").unwrap();
    assert_eq!(span.count, THREADS as u64 * SPANS_PER_THREAD);
    assert_eq!(report.0.counters, vec![("parallel.items", THREADS as u64 * SPANS_PER_THREAD * 2)]);
}
