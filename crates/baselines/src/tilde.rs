//! TILDE (Blockeel & De Raedt): top-down induction of logical decision
//! trees, reimplemented as the paper's second baseline.
//!
//! Each internal node refines the *associated query* of its yes-branch with
//! one candidate (an optional join plus a test), chosen by C4.5-style
//! information gain over the distinct target tuples. Candidate evaluation
//! materializes physical joins exactly like FOIL — the divide-and-conquer
//! tree structure makes it faster than FOIL in practice (§2) but it still
//! pays the join-materialization cost CrossMine avoids.

use std::time::{Duration, Instant};

use crossmine_core::idset::Stamp;
use crossmine_relational::{BindingTable, ClassLabel, Database, JoinGraph, Row};

use crate::common::{apply_candidate, positivity, table_class_counts, Candidate};

/// TILDE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TildeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum targets in a node to keep splitting.
    pub min_split: usize,
    /// Minimum information gain (bits) for a split to be accepted.
    pub min_gain: f64,
    /// Wall-clock training budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Which joins the refinement operator considers.
    pub space: crate::common::CandidateSpace,
}

impl Default for TildeParams {
    fn default() -> Self {
        TildeParams {
            max_depth: 8,
            min_split: 4,
            min_gain: 1e-3,
            timeout: None,
            space: crate::common::CandidateSpace::default(),
        }
    }
}

/// A node of the logical decision tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// Leaf predicting a class.
    Leaf {
        /// Predicted class.
        label: ClassLabel,
        /// Training tuples that reached this leaf (diagnostics).
        support: usize,
    },
    /// Internal split on one refinement of the associated query.
    Split {
        /// The refinement applied on the yes-branch.
        refinement: Candidate,
        /// Subtree for targets satisfying the refinement.
        yes: Box<Node>,
        /// Subtree for the rest (the refinement is discarded there).
        no: Box<Node>,
    },
}

impl Node {
    /// Number of nodes in this subtree.
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { yes, no, .. } => 1 + yes.size() + no.size(),
        }
    }

    /// Depth of this subtree.
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { yes, no, .. } => 1 + yes.depth().max(no.depth()),
        }
    }
}

/// The TILDE classifier.
#[derive(Debug, Clone, Default)]
pub struct Tilde {
    /// Hyper-parameters.
    pub params: TildeParams,
}

/// A trained logical decision tree.
#[derive(Debug, Clone)]
pub struct TildeModel {
    /// The root node.
    pub root: Node,
    /// Whether training hit the timeout.
    pub timed_out: bool,
}

fn entropy(p: usize, n: usize) -> f64 {
    let total = (p + n) as f64;
    if p == 0 || n == 0 {
        return 0.0;
    }
    let fp = p as f64 / total;
    let fn_ = n as f64 / total;
    -fp * fp.log2() - fn_ * fn_.log2()
}

impl Tilde {
    /// A TILDE learner with the given parameters.
    pub fn new(params: TildeParams) -> Self {
        Tilde { params }
    }

    /// Trains a logical decision tree on the target rows `train_rows`.
    /// Binary trees over pos/neg; multi-class is reduced to the majority
    /// class at leaves via the positivity of the largest class (the paper's
    /// experiments are binary).
    pub fn fit(&self, db: &Database, train_rows: &[Row]) -> TildeModel {
        let graph = JoinGraph::build(&db.schema);
        let target = db.target().expect("database must have a target");
        // Positive = the lexicographically-largest class among those present
        // (ClassLabel::POS in binary problems).
        let mut classes: Vec<ClassLabel> = train_rows.iter().map(|&r| db.label(r)).collect();
        classes.sort();
        classes.dedup();
        let pos_class = classes.last().copied().unwrap_or(ClassLabel::POS);
        let neg_class = classes.iter().rev().nth(1).copied().unwrap_or(ClassLabel::NEG);
        let is_pos = positivity(db, pos_class);

        let start = Instant::now();
        let deadline = self.params.timeout.map(|t| start + t);
        let mut timed_out = false;
        let mut stamp = Stamp::new(db.num_targets());
        let table = BindingTable::from_targets(target, train_rows.iter().copied());
        let root = self.grow(
            db,
            &graph,
            table,
            &is_pos,
            pos_class,
            neg_class,
            0,
            &mut stamp,
            &deadline,
            &mut timed_out,
        );
        TildeModel { root, timed_out }
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        db: &Database,
        graph: &JoinGraph,
        table: BindingTable,
        is_pos: &[bool],
        pos_class: ClassLabel,
        neg_class: ClassLabel,
        depth: usize,
        stamp: &mut Stamp,
        deadline: &Option<Instant>,
        timed_out: &mut bool,
    ) -> Node {
        let (p, n) = table_class_counts(&table, is_pos, stamp);
        let majority = if p >= n { pos_class } else { neg_class };
        let leaf = Node::Leaf { label: majority, support: p + n };
        if p == 0 || n == 0 || p + n < self.params.min_split || depth >= self.params.max_depth {
            return leaf;
        }
        let in_budget = || deadline.map(|d| Instant::now() < d).unwrap_or(true);
        if !in_budget() {
            *timed_out = true;
            return leaf;
        }

        // Pick the refinement with the best *information gain* over the
        // distinct-target split (C4.5-style, not foil gain): evaluate the
        // candidates' (p_yes, n_yes) via the shared machinery, then rescore.
        let parent_h = entropy(p, n);
        let mut best: Option<(Candidate, f64)> = None;
        // best_candidate maximizes foil gain; for TILDE we enumerate by
        // running it repeatedly is wasteful — instead reuse its scan through
        // a custom scorer below.
        let scored = crate::common::all_candidates(
            db,
            graph,
            self.params.space,
            &table,
            is_pos,
            stamp,
            in_budget,
        );
        for cand in scored {
            let (py, ny) = (cand.pos, cand.neg);
            let (pn, nn) = (p - py, n - ny);
            if py + ny == 0 || pn + nn == 0 {
                continue;
            }
            let total = (p + n) as f64;
            let h = ((py + ny) as f64 / total) * entropy(py, ny)
                + ((pn + nn) as f64 / total) * entropy(pn, nn);
            let gain = parent_h - h;
            if gain > self.params.min_gain && best.as_ref().map(|(_, g)| gain > *g).unwrap_or(true)
            {
                best = Some((cand.candidate, gain));
            }
        }
        let Some((refinement, _)) = best else {
            return leaf;
        };

        // Yes branch: refined table (query context accumulates). No branch:
        // original table filtered to unsatisfied targets.
        let yes_table = apply_candidate(db, &table, &refinement);
        let yes_targets: std::collections::HashSet<u32> =
            yes_table.distinct_targets().iter().map(|r| r.0).collect();
        let no_table = table.retain_targets(|r| !yes_targets.contains(&r.0));

        let yes = self.grow(
            db,
            graph,
            yes_table,
            is_pos,
            pos_class,
            neg_class,
            depth + 1,
            stamp,
            deadline,
            timed_out,
        );
        let no = self.grow(
            db,
            graph,
            no_table,
            is_pos,
            pos_class,
            neg_class,
            depth + 1,
            stamp,
            deadline,
            timed_out,
        );
        Node::Split { refinement, yes: Box::new(yes), no: Box::new(no) }
    }
}

impl TildeModel {
    /// Predicts by routing `rows` down the tree, evaluating each split's
    /// refinement with physical joins on the node's accumulated table.
    pub fn predict(&self, db: &Database, rows: &[Row]) -> Vec<ClassLabel> {
        let target = db.target().expect("database must have a target");
        let mut out: Vec<ClassLabel> = vec![ClassLabel::NEG; rows.len()];
        let mut slot_of: Vec<Option<usize>> = vec![None; db.num_targets()];
        for (i, r) in rows.iter().enumerate() {
            slot_of[r.0 as usize] = Some(i);
        }
        let table = BindingTable::from_targets(target, rows.iter().copied());
        route(db, &self.root, table, &slot_of, &mut out);
        out
    }
}

fn route(
    db: &Database,
    node: &Node,
    table: BindingTable,
    slot_of: &[Option<usize>],
    out: &mut [ClassLabel],
) {
    match node {
        Node::Leaf { label, .. } => {
            for t in table.distinct_targets() {
                if let Some(slot) = slot_of[t.0 as usize] {
                    out[slot] = *label;
                }
            }
        }
        Node::Split { refinement, yes, no } => {
            let yes_table = apply_candidate(db, &table, refinement);
            let yes_targets: std::collections::HashSet<u32> =
                yes_table.distinct_targets().iter().map(|r| r.0).collect();
            let no_table = table.retain_targets(|r| !yes_targets.contains(&r.0));
            route(db, yes, yes_table, slot_of, out);
            route(db, no, no_table, slot_of, out);
        }
    }
}

impl crossmine_core::RelationalClassifier for Tilde {
    fn train_predict(
        &self,
        db: &Database,
        train_rows: &[Row],
        test_rows: &[Row],
    ) -> Vec<ClassLabel> {
        let model = self.fit(db, train_rows);
        model.predict(db, test_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_relational::{AttrType, Attribute, DatabaseSchema, RelationSchema, Value};

    /// Class decided by an attribute one join away (S.d).
    fn one_join_db(n: u64) -> Database {
        let mut schema = DatabaseSchema::new();
        let mut t = RelationSchema::new("T");
        t.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        let mut c = Attribute::new("c", AttrType::Categorical);
        c.intern("a");
        c.intern("b");
        t.add_attribute(c).unwrap();
        let mut s = RelationSchema::new("S");
        s.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        s.add_attribute(Attribute::new("t_id", AttrType::ForeignKey { target: "T".into() }))
            .unwrap();
        let mut d = Attribute::new("d", AttrType::Categorical);
        d.intern("x");
        d.intern("y");
        s.add_attribute(d).unwrap();
        let tid = schema.add_relation(t).unwrap();
        let sid = schema.add_relation(s).unwrap();
        schema.set_target(tid);
        let mut db = Database::new(schema).unwrap();
        for i in 0..n {
            let pos = i % 2 == 0;
            db.push_row(tid, vec![Value::Key(i), Value::Cat(0)]).unwrap();
            db.push_label(if pos { ClassLabel::POS } else { ClassLabel::NEG });
            db.push_row(sid, vec![Value::Key(i), Value::Key(i), Value::Cat(pos as u32)]).unwrap();
        }
        db
    }

    #[test]
    fn learns_one_join_split() {
        let db = one_join_db(40);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = Tilde::default().fit(&db, &rows);
        assert!(!model.timed_out);
        assert!(model.root.size() >= 3, "tree must actually split");
        let preds = model.predict(&db, &rows);
        let correct = preds.iter().zip(&rows).filter(|(p, r)| **p == db.label(**r)).count();
        assert_eq!(correct, rows.len());
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut db = one_join_db(10);
        db.set_labels(vec![ClassLabel::POS; 10]).unwrap();
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = Tilde::default().fit(&db, &rows);
        assert_eq!(model.root.size(), 1);
        assert!(matches!(model.root, Node::Leaf { label: ClassLabel::POS, .. }));
    }

    #[test]
    fn depth_limit_respected() {
        let db = one_join_db(60);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let params = TildeParams { max_depth: 2, ..Default::default() };
        let model = Tilde::new(params).fit(&db, &rows);
        assert!(model.root.depth() <= 3); // max_depth splits + leaf level
    }

    #[test]
    fn timeout_yields_partial_tree() {
        let db = one_join_db(40);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let params = TildeParams { timeout: Some(Duration::ZERO), ..Default::default() };
        let model = Tilde::new(params).fit(&db, &rows);
        assert!(model.timed_out);
        let preds = model.predict(&db, &rows);
        assert_eq!(preds.len(), rows.len());
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(5, 0), 0.0);
        assert_eq!(entropy(0, 5), 0.0);
        assert!((entropy(5, 5) - 1.0).abs() < 1e-12);
        assert!(entropy(1, 9) < 1.0);
    }
}
