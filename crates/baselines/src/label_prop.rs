//! Label propagation (Aronis & Provost, the paper's reference \[2\]) —
//! the comparator of §4.3.
//!
//! Instead of propagating tuple *IDs*, this approach propagates per-class
//! *counts* along join paths. For n-to-1 relationships the counts stay
//! exact, but across 1-to-n or n-to-n joins one target tuple joinable with
//! many tuples is counted many times, inflating the apparent support of
//! literals — the paper's example: 5 real positives reported as 14. This
//! module exists to demonstrate (in tests and an ablation bench) why
//! CrossMine must propagate IDs.

use crossmine_relational::{Database, JoinEdge, Row, Value};

/// Per-tuple propagated class counts: `(positives, negatives)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LabelCounts {
    /// Propagated positive count.
    pub pos: f64,
    /// Propagated negative count.
    pub neg: f64,
}

/// The label annotation of one relation: counts per tuple.
#[derive(Debug, Clone)]
pub struct LabelAnnotation {
    /// `counts[row]` — class counts propagated to that tuple.
    pub counts: Vec<LabelCounts>,
}

impl LabelAnnotation {
    /// The initial annotation of the target relation: each tuple counts
    /// itself once under its own class.
    pub fn from_target(db: &Database, is_pos: &[bool]) -> Self {
        let target = db.target().expect("database must have a target");
        let n = db.relation(target).len();
        let mut counts = vec![LabelCounts::default(); n];
        for (i, c) in counts.iter_mut().enumerate() {
            if is_pos[i] {
                c.pos = 1.0;
            } else {
                c.neg = 1.0;
            }
        }
        LabelAnnotation { counts }
    }

    /// Total propagated counts over tuples satisfying `pred` — what label
    /// propagation reports as the support of a literal.
    pub fn literal_counts(&self, mut pred: impl FnMut(Row) -> bool) -> LabelCounts {
        let mut total = LabelCounts::default();
        for (i, c) in self.counts.iter().enumerate() {
            if pred(Row(i as u32)) {
                total.pos += c.pos;
                total.neg += c.neg;
            }
        }
        total
    }
}

/// Propagates label counts across `edge` (summing counts of all joinable
/// tuples — the double-counting across 1-to-n joins is the point).
pub fn propagate_labels(db: &Database, from: &LabelAnnotation, edge: &JoinEdge) -> LabelAnnotation {
    let from_rel = db.relation(edge.from);
    let to_len = db.relation(edge.to).len();
    let index = db.key_index(edge.to, edge.to_attr);
    let mut counts = vec![LabelCounts::default(); to_len];
    for (i, c) in from.counts.iter().enumerate() {
        if c.pos == 0.0 && c.neg == 0.0 {
            continue;
        }
        let key = match from_rel.value(Row(i as u32), edge.from_attr) {
            Value::Key(k) => k,
            _ => continue,
        };
        for &to_row in index.rows(key) {
            let slot = &mut counts[to_row.0 as usize];
            slot.pos += c.pos;
            slot.neg += c.neg;
        }
    }
    LabelAnnotation { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_core::idset::{Stamp, TargetSet};
    use crossmine_core::propagation::{propagate, ClauseState};
    use crossmine_relational::{
        AttrId, AttrType, Attribute, ClassLabel, DatabaseSchema, JoinGraph, RelId, RelationSchema,
    };

    /// The §4.3 counter-example: 10 loans (5+/5−); nine join one account
    /// each, one positive loan joins 10 accounts. All accounts satisfy
    /// literal `l`. True support of `l`: 5+/5−. Label propagation: 14+/5−.
    fn section_4_3_database() -> (Database, Vec<bool>) {
        let mut schema = DatabaseSchema::new();
        let mut loan = RelationSchema::new("Loan");
        loan.add_attribute(Attribute::new("loan_id", AttrType::PrimaryKey)).unwrap();
        let mut account = RelationSchema::new("Account");
        account.add_attribute(Attribute::new("account_id", AttrType::PrimaryKey)).unwrap();
        account
            .add_attribute(Attribute::new(
                "loan_id",
                AttrType::ForeignKey { target: "Loan".into() },
            ))
            .unwrap();
        let mut f = Attribute::new("flag", AttrType::Categorical);
        f.intern("l");
        account.add_attribute(f).unwrap();
        let t = schema.add_relation(loan).unwrap();
        let a = schema.add_relation(account).unwrap();
        schema.set_target(t);
        let mut db = Database::new(schema).unwrap();
        // Loans 0..9: loans 0..4 positive, 5..9 negative (loan 0 is the
        // one joined with 10 accounts).
        for i in 0..10u64 {
            db.push_row(t, vec![Value::Key(i)]).unwrap();
            db.push_label(if i < 5 { ClassLabel::POS } else { ClassLabel::NEG });
        }
        let mut acc_id = 0u64;
        // 4 positive (1..4) and 5 negative loans with one account each.
        for loan_id in 1..10u64 {
            db.push_row(a, vec![Value::Key(acc_id), Value::Key(loan_id), Value::Cat(0)]).unwrap();
            acc_id += 1;
        }
        // Loan 0 joins 10 accounts.
        for _ in 0..10 {
            db.push_row(a, vec![Value::Key(acc_id), Value::Key(0), Value::Cat(0)]).unwrap();
            acc_id += 1;
        }
        let is_pos = (0..10).map(|i| i < 5).collect();
        (db, is_pos)
    }

    fn loan_to_account_edge(db: &Database) -> JoinEdge {
        let loan = db.schema.rel_id("Loan").unwrap();
        let account = db.schema.rel_id("Account").unwrap();
        *JoinGraph::build(&db.schema)
            .edges()
            .iter()
            .find(|e| e.from == loan && e.to == account)
            .unwrap()
    }

    #[test]
    fn label_propagation_overcounts_on_one_to_n() {
        let (db, is_pos) = section_4_3_database();
        let edge = loan_to_account_edge(&db);
        let ann = LabelAnnotation::from_target(&db, &is_pos);
        let prop = propagate_labels(&db, &ann, &edge);
        // All accounts satisfy the literal.
        let counts = prop.literal_counts(|_| true);
        assert_eq!(counts.pos, 14.0, "label propagation inflates 5 positives to 14");
        assert_eq!(counts.neg, 5.0);
    }

    #[test]
    fn id_propagation_counts_exactly() {
        let (db, is_pos) = section_4_3_database();
        let edge = loan_to_account_edge(&db);
        let state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
        let ann = state.propagate_edge(&edge);
        let mut stamp = Stamp::new(10);
        let covered = ann.covered_targets(&is_pos, &mut stamp);
        assert_eq!((covered.pos(), covered.neg()), (5, 5), "ID propagation is exact");
    }

    #[test]
    fn exact_on_n_to_1() {
        // When each source tuple joins exactly one destination tuple, label
        // propagation equals ID propagation.
        let (db, is_pos) = section_4_3_database();
        let account = db.schema.rel_id("Account").unwrap();
        let loan = db.schema.rel_id("Loan").unwrap();
        // Reverse direction: Account -> Loan via fk->pk (n-to-1).
        let edge = *JoinGraph::build(&db.schema)
            .edges()
            .iter()
            .find(|e| e.from == account && e.to == loan)
            .unwrap();
        // Seed: one count per account tuple (treat accounts as if each had
        // one distinct target behind it) — here simply propagate from the
        // target and back.
        let fwd = loan_to_account_edge(&db);
        let id_state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
        let id_fwd = id_state.propagate_edge(&fwd);
        let id_back = propagate(&db, &id_fwd, &edge);
        let _ = &id_back;

        let lbl = LabelAnnotation::from_target(&db, &is_pos);
        let lbl_fwd = propagate_labels(&db, &lbl, &fwd);
        let lbl_back = propagate_labels(&db, &lbl_fwd, &edge);
        // Loan 0 accumulates 10 copies of itself via its 10 accounts —
        // overcounting again; loans 1..9 stay exact (n-to-1 per tuple).
        assert_eq!(lbl_back.counts[1].pos, 1.0);
        assert_eq!(lbl_back.counts[9].neg, 1.0);
        assert_eq!(lbl_back.counts[0].pos, 10.0);
        // ID propagation, by contrast, keeps loan 0's idset at exactly {0}.
        assert_eq!(id_back.idsets[0].as_slice(), &[0]);
    }

    #[test]
    fn literal_counts_respect_predicate() {
        let (db, is_pos) = section_4_3_database();
        let edge = loan_to_account_edge(&db);
        let prop = propagate_labels(&db, &LabelAnnotation::from_target(&db, &is_pos), &edge);
        let account = db.schema.rel_id("Account").unwrap();
        let rel = db.relation(account);
        // Only the 9 single-loan accounts (rows 0..9 have loan 1..9).
        let counts = prop.literal_counts(|r| rel.value(r, AttrId(1)).as_key().unwrap() != 0);
        assert_eq!(counts.pos, 4.0);
        assert_eq!(counts.neg, 5.0);
        let _ = RelId(0);
    }
}
