//! # crossmine-baselines
//!
//! The comparison systems of CrossMine's evaluation (§7), reimplemented
//! from their papers' algorithm descriptions:
//!
//! * [`foil`] — FOIL (Quinlan & Cameron-Jones), a sequential covering
//!   learner evaluating literals over **physically materialized joins**;
//! * [`tilde`] — TILDE (Blockeel & De Raedt), top-down induction of logical
//!   decision trees, same join-based candidate evaluation;
//! * [`label_prop`] — label propagation (Aronis & Provost), the §4.3
//!   comparator showing why tuple *IDs* (not label counts) must be
//!   propagated across 1-to-n joins.
//!
//! FOIL and TILDE deliberately retain the join-materialization cost model —
//! it is exactly what Figures 9–12 measure CrossMine against. Both accept a
//! wall-clock `timeout` mirroring the paper's 10-hour experiment cutoff.

#![warn(missing_docs)]

pub mod common;
pub mod foil;
pub mod label_prop;
pub mod tilde;

pub use foil::{Foil, FoilModel, FoilParams};
pub use label_prop::{propagate_labels, LabelAnnotation, LabelCounts};
pub use tilde::{Tilde, TildeModel, TildeParams};
