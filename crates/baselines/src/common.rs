//! Candidate-literal enumeration and evaluation over *physical* joins.
//!
//! This is the cost model CrossMine §4.1 contrasts against: to score the
//! literals of a relation one join away, FOIL and TILDE materialize the
//! joined relation (a [`BindingTable`]) and scan it per attribute. Every
//! candidate join therefore costs a full join materialization — the source
//! of the baselines' poor scaling in Figures 9–12.

use crossmine_core::gain::foil_gain;
use crossmine_core::idset::Stamp;
use crossmine_core::literal::CmpOp;
use crossmine_relational::{
    AttrId, BindingTable, ClassLabel, Database, JoinEdge, RelId, Row, Value,
};

/// A single test on one bound relation occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum TestKind {
    /// `attr = value` on a categorical attribute.
    CatEq {
        /// The categorical attribute.
        attr: AttrId,
        /// Required dictionary code.
        value: u32,
    },
    /// `attr op threshold` on a numerical attribute.
    Num {
        /// The numerical attribute.
        attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold value.
        threshold: f64,
    },
}

impl TestKind {
    /// Whether the tuple `row` of `rel` passes this test.
    pub fn passes(&self, db: &Database, rel: RelId, row: Row) -> bool {
        let relation = db.relation(rel);
        match self {
            TestKind::CatEq { attr, value } => relation.value(row, *attr) == Value::Cat(*value),
            TestKind::Num { attr, op, threshold } => {
                matches!(relation.value(row, *attr), Value::Num(x) if op.test(x, *threshold))
            }
        }
    }
}

/// One candidate refinement: optionally join a new relation occurrence into
/// the binding table, then test an attribute of the slot the test lands on.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// `(slot of the edge's source, edge)` when a join is added; `None`
    /// tests an already-bound slot.
    pub join: Option<(usize, JoinEdge)>,
    /// Slot the test applies to (for joins: the new slot = old width).
    pub slot: usize,
    /// The relation bound at `slot`.
    pub rel: RelId,
    /// The test.
    pub test: TestKind,
}

/// A scored candidate: distinct positive/negative target coverage and gain.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The refinement.
    pub candidate: Candidate,
    /// Foil gain against `(p, n)` of the current table.
    pub gain: f64,
    /// Distinct positive targets covered.
    pub pos: usize,
    /// Distinct negative targets covered.
    pub neg: usize,
}

/// Counts the distinct positive/negative targets of `table`.
pub fn table_class_counts(
    table: &BindingTable,
    is_pos: &[bool],
    stamp: &mut Stamp,
) -> (usize, usize) {
    stamp.reset();
    let mut p = 0;
    let mut n = 0;
    for i in 0..table.len() {
        let t = table.target_row(i).0;
        if stamp.mark(t) {
            if is_pos[t as usize] {
                p += 1;
            } else {
                n += 1;
            }
        }
    }
    (p, n)
}

/// Scores every test on `slot` (bound to `rel`) of `table`, reporting each
/// through `emit`. Scans the materialized table column-by-column, exactly
/// the §4.1 "join then scan" procedure.
#[allow(clippy::too_many_arguments)]
fn score_tests_on_slot(
    db: &Database,
    table: &BindingTable,
    slot: usize,
    rel: RelId,
    is_pos: &[bool],
    p_c: usize,
    n_c: usize,
    stamp: &mut Stamp,
    mut emit: impl FnMut(TestKind, f64, usize, usize),
) {
    let schema = db.schema.relation(rel);
    let relation = db.relation(rel);
    for (aid, attr) in schema.iter_attrs() {
        if attr.ty.is_categorical() {
            let card = attr.cardinality();
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); card];
            for i in 0..table.len() {
                let row = table.row(i, slot);
                if let Value::Cat(c) = relation.value(row, aid) {
                    buckets[c as usize].push(table.target_row(i).0);
                }
            }
            for (code, ids) in buckets.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                stamp.reset();
                let mut p = 0;
                let mut n = 0;
                for &t in ids {
                    if stamp.mark(t) {
                        if is_pos[t as usize] {
                            p += 1;
                        } else {
                            n += 1;
                        }
                    }
                }
                if p == 0 || (p == p_c && n == n_c) {
                    continue;
                }
                emit(
                    TestKind::CatEq { attr: aid, value: code as u32 },
                    foil_gain(p_c, n_c, p, n),
                    p,
                    n,
                );
            }
        } else if attr.ty.is_numerical() {
            // Sort the column of the joined table, then sweep both ways.
            let mut entries: Vec<(f64, u32)> = (0..table.len())
                .filter_map(|i| {
                    relation
                        .value(table.row(i, slot), aid)
                        .as_num()
                        .map(|x| (x, table.target_row(i).0))
                })
                .collect();
            entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for (op, forward) in [(CmpOp::Le, true), (CmpOp::Ge, false)] {
                stamp.reset();
                let mut p = 0;
                let mut n = 0;
                let len = entries.len();
                let mut i = 0;
                while i < len {
                    let v = entries[if forward { i } else { len - 1 - i }].0;
                    while i < len {
                        let (x, t) = entries[if forward { i } else { len - 1 - i }];
                        if x != v {
                            break;
                        }
                        if stamp.mark(t) {
                            if is_pos[t as usize] {
                                p += 1;
                            } else {
                                n += 1;
                            }
                        }
                        i += 1;
                    }
                    if p > 0 && !(p == p_c && n == n_c) {
                        emit(
                            TestKind::Num { attr: aid, op, threshold: v },
                            foil_gain(p_c, n_c, p, n),
                            p,
                            n,
                        );
                    }
                }
            }
        }
    }
}

/// Which joins an ILP learner's refinement operator considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateSpace {
    /// The historical FOIL/TILDE space: variables unify by *type*, and a
    /// relational database flattened to ground facts types every key column
    /// as a plain integer. Any key column of any relation can therefore
    /// join any bound key variable — the "large number of join paths that
    /// need to be explored" of §1. Mostly-spurious joins are still paid for
    /// in full (a nested-loop scan each), which is what makes the baselines
    /// scale badly with the number of relations and tuples.
    #[default]
    UntypedKeys,
    /// An ablation giving the baselines CrossMine's schema knowledge: only
    /// the §3.1 join-graph edges (pk–fk and fk–fk sharing a pk).
    SchemaJoins,
}

fn candidate_edges(
    db: &Database,
    graph: &crossmine_relational::JoinGraph,
    space: CandidateSpace,
    rel: RelId,
) -> Vec<JoinEdge> {
    match space {
        CandidateSpace::SchemaJoins => graph.edges_from(rel).copied().collect(),
        CandidateSpace::UntypedKeys => {
            let mut edges = Vec::new();
            for from_attr in db.schema.relation(rel).key_attrs() {
                for (to, to_schema) in db.schema.iter_relations() {
                    for to_attr in to_schema.key_attrs() {
                        if to == rel && to_attr == from_attr {
                            continue; // trivial re-binding of the same column
                        }
                        edges.push(JoinEdge {
                            from: rel,
                            from_attr,
                            to,
                            to_attr,
                            // Kind is nominal here: untyped unification does
                            // not know pk/fk roles.
                            kind: crossmine_relational::JoinKind::FkFk,
                        });
                    }
                }
            }
            edges
        }
    }
}

/// Enumerates and scores every candidate refinement of `table`:
/// * tests on every already-bound slot, and
/// * for every slot and every candidate join leaving its relation (see
///   [`CandidateSpace`]), the physical nested-loop join with the
///   destination followed by tests on the new slot.
///
/// Every scored candidate is reported through `emit`. `budget` is polled so
/// a caller-imposed timeout can abort mid-search; returns `false` on abort.
#[allow(clippy::too_many_arguments)]
pub fn enumerate_candidates(
    db: &Database,
    graph: &crossmine_relational::JoinGraph,
    space: CandidateSpace,
    table: &BindingTable,
    is_pos: &[bool],
    stamp: &mut Stamp,
    mut budget: impl FnMut() -> bool,
    mut emit: impl FnMut(ScoredCandidate),
) -> bool {
    let (p_c, n_c) = table_class_counts(table, is_pos, stamp);
    if p_c == 0 {
        return true;
    }

    // Local tests on bound slots.
    for (slot, &rel) in table.bound.iter().enumerate() {
        if !budget() {
            return false;
        }
        score_tests_on_slot(db, table, slot, rel, is_pos, p_c, n_c, stamp, |test, gain, p, n| {
            emit(ScoredCandidate {
                candidate: Candidate { join: None, slot, rel, test },
                gain,
                pos: p,
                neg: n,
            });
        });
    }

    // One physical join away.
    for (slot, &rel) in table.bound.iter().enumerate() {
        for edge in candidate_edges(db, graph, space, rel) {
            if !budget() {
                return false;
            }
            let joined = table.join_scan(db, slot, &edge);
            if joined.is_empty() {
                continue;
            }
            let new_slot = joined.width() - 1;
            score_tests_on_slot(
                db,
                &joined,
                new_slot,
                edge.to,
                is_pos,
                p_c,
                n_c,
                stamp,
                |test, gain, p, n| {
                    emit(ScoredCandidate {
                        candidate: Candidate {
                            join: Some((slot, edge)),
                            slot: new_slot,
                            rel: edge.to,
                            test,
                        },
                        gain,
                        pos: p,
                        neg: n,
                    });
                },
            );
        }
    }
    true
}

/// All scored candidates as a vector (TILDE rescoring by information gain).
#[allow(clippy::too_many_arguments)]
pub fn all_candidates(
    db: &Database,
    graph: &crossmine_relational::JoinGraph,
    space: CandidateSpace,
    table: &BindingTable,
    is_pos: &[bool],
    stamp: &mut Stamp,
    budget: impl FnMut() -> bool,
) -> Vec<ScoredCandidate> {
    let mut out = Vec::new();
    enumerate_candidates(db, graph, space, table, is_pos, stamp, budget, |c| out.push(c));
    out
}

/// The best candidate by foil gain (ties: candidates without a join win).
pub fn best_candidate(
    db: &Database,
    graph: &crossmine_relational::JoinGraph,
    space: CandidateSpace,
    table: &BindingTable,
    is_pos: &[bool],
    stamp: &mut Stamp,
    budget: impl FnMut() -> bool,
) -> Option<ScoredCandidate> {
    let mut best: Option<ScoredCandidate> = None;
    enumerate_candidates(db, graph, space, table, is_pos, stamp, budget, |c| {
        consider(&mut best, c)
    });
    best
}

fn consider(best: &mut Option<ScoredCandidate>, cand: ScoredCandidate) {
    let better = match best {
        None => cand.gain > 0.0,
        Some(b) => {
            cand.gain > b.gain
                || (cand.gain == b.gain
                    && cand.candidate.join.is_none()
                    && b.candidate.join.is_some())
        }
    };
    if better {
        *best = Some(cand);
    }
}

/// Applies `candidate` to `table`: performs its join (if any) and keeps only
/// bindings passing the test.
pub fn apply_candidate(db: &Database, table: &BindingTable, c: &Candidate) -> BindingTable {
    let joined = match &c.join {
        Some((slot, edge)) => table.join_scan(db, *slot, edge),
        None => table.clone(),
    };
    joined.filter(c.slot, |row| c.test.passes(db, c.rel, row))
}

/// Positivity flags for one-vs-rest learning.
pub fn positivity(db: &Database, label: ClassLabel) -> Vec<bool> {
    db.labels().iter().map(|&l| l == label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_relational::{AttrType, Attribute, DatabaseSchema, JoinGraph, RelationSchema};

    /// Fig. 2 Loan/Account with frequency deciding the class imperfectly.
    fn fig2() -> Database {
        let mut schema = DatabaseSchema::new();
        let mut loan = RelationSchema::new("Loan");
        loan.add_attribute(Attribute::new("loan_id", AttrType::PrimaryKey)).unwrap();
        loan.add_attribute(Attribute::new(
            "account_id",
            AttrType::ForeignKey { target: "Account".into() },
        ))
        .unwrap();
        loan.add_attribute(Attribute::new("amount", AttrType::Numerical)).unwrap();
        let mut account = RelationSchema::new("Account");
        account.add_attribute(Attribute::new("account_id", AttrType::PrimaryKey)).unwrap();
        let mut f = Attribute::new("frequency", AttrType::Categorical);
        f.intern("monthly");
        f.intern("weekly");
        account.add_attribute(f).unwrap();
        let t = schema.add_relation(loan).unwrap();
        let a = schema.add_relation(account).unwrap();
        schema.set_target(t);
        let mut db = Database::new(schema).unwrap();
        for (lid, aid, amt, pos) in [
            (1u64, 124u64, 1000.0, true),
            (2, 124, 4000.0, true),
            (3, 108, 10000.0, false),
            (4, 45, 12000.0, false),
            (5, 45, 2000.0, true),
        ] {
            db.push_row(t, vec![Value::Key(lid), Value::Key(aid), Value::Num(amt)]).unwrap();
            db.push_label(if pos { ClassLabel::POS } else { ClassLabel::NEG });
        }
        for (aid, fr) in [(124u64, 0u32), (108, 1), (45, 0), (67, 1)] {
            db.push_row(a, vec![Value::Key(aid), Value::Cat(fr)]).unwrap();
        }
        db
    }

    #[test]
    fn counts_distinct_targets() {
        let db = fig2();
        let loan = db.target().unwrap();
        let is_pos = positivity(&db, ClassLabel::POS);
        let mut stamp = Stamp::new(5);
        let table = BindingTable::from_targets(loan, db.relation(loan).iter_rows());
        assert_eq!(table_class_counts(&table, &is_pos, &mut stamp), (3, 2));
    }

    #[test]
    fn best_candidate_finds_amount_threshold() {
        // amount <= 4000 covers pos {1,2,5} and no negatives: gain 3·I(c).
        let db = fig2();
        let loan = db.target().unwrap();
        let graph = JoinGraph::build(&db.schema);
        let is_pos = positivity(&db, ClassLabel::POS);
        let mut stamp = Stamp::new(5);
        let table = BindingTable::from_targets(loan, db.relation(loan).iter_rows());
        let best = best_candidate(
            &db,
            &graph,
            CandidateSpace::SchemaJoins,
            &table,
            &is_pos,
            &mut stamp,
            || true,
        )
        .unwrap();
        assert_eq!((best.pos, best.neg), (3, 0));
        match best.candidate.test {
            TestKind::Num { op: CmpOp::Le, threshold, .. } => assert_eq!(threshold, 4000.0),
            ref t => panic!("expected amount threshold, got {t:?}"),
        }
        assert!(best.candidate.join.is_none());
    }

    #[test]
    fn join_candidate_scored_via_materialization() {
        // Force the joined candidate to win by removing the numerical signal.
        let mut db = fig2();
        let loan = db.target().unwrap();
        for r in 0..5u32 {
            db.set_value(loan, Row(r), AttrId(2), Value::Num(1.0));
        }
        let graph = JoinGraph::build(&db.schema);
        let is_pos = positivity(&db, ClassLabel::POS);
        let mut stamp = Stamp::new(5);
        let table = BindingTable::from_targets(loan, db.relation(loan).iter_rows());
        let best = best_candidate(
            &db,
            &graph,
            CandidateSpace::SchemaJoins,
            &table,
            &is_pos,
            &mut stamp,
            || true,
        )
        .unwrap();
        // frequency = monthly: 3 pos, 1 neg via the Loan⋈Account join.
        assert!(best.candidate.join.is_some());
        assert_eq!((best.pos, best.neg), (3, 1));
    }

    #[test]
    fn apply_candidate_filters_table() {
        let db = fig2();
        let loan = db.target().unwrap();
        let graph = JoinGraph::build(&db.schema);
        let is_pos = positivity(&db, ClassLabel::POS);
        let mut stamp = Stamp::new(5);
        let table = BindingTable::from_targets(loan, db.relation(loan).iter_rows());
        let best = best_candidate(
            &db,
            &graph,
            CandidateSpace::SchemaJoins,
            &table,
            &is_pos,
            &mut stamp,
            || true,
        )
        .unwrap();
        let applied = apply_candidate(&db, &table, &best.candidate);
        assert_eq!(table_class_counts(&applied, &is_pos, &mut stamp), (3, 0));
    }

    #[test]
    fn budget_abort_returns_partial() {
        let db = fig2();
        let loan = db.target().unwrap();
        let graph = JoinGraph::build(&db.schema);
        let is_pos = positivity(&db, ClassLabel::POS);
        let mut stamp = Stamp::new(5);
        let table = BindingTable::from_targets(loan, db.relation(loan).iter_rows());
        // Budget that expires immediately: nothing explored.
        let res = best_candidate(
            &db,
            &graph,
            CandidateSpace::SchemaJoins,
            &table,
            &is_pos,
            &mut stamp,
            || false,
        );
        assert!(res.is_none());
    }
}

#[cfg(test)]
mod space_tests {
    use super::*;
    use crossmine_core::RelationalClassifier;
    use crossmine_relational::Row;
    use crossmine_synth::{generate, GenParams};

    /// Giving FOIL the §3.1 schema knowledge must shrink its candidate
    /// space: fewer join-scans, hence faster training at equal-or-better
    /// structure (the ablation the harness also measures).
    #[test]
    fn schema_joins_subset_of_untyped_keys() {
        let params = GenParams {
            num_relations: 6,
            expected_tuples: 80,
            min_tuples: 25,
            seed: 12,
            ..Default::default()
        };
        let db = generate(&params);
        let graph = crossmine_relational::JoinGraph::build(&db.schema);
        let target = db.target().unwrap();
        let rows: Vec<Row> = db.relation(target).iter_rows().collect();
        let table = BindingTable::from_targets(target, rows.iter().copied());
        let is_pos: Vec<bool> =
            db.labels().iter().map(|&l| l == crossmine_relational::ClassLabel::POS).collect();
        let mut stamp = crossmine_core::idset::Stamp::new(db.num_targets());

        let schema_cands = all_candidates(
            &db,
            &graph,
            CandidateSpace::SchemaJoins,
            &table,
            &is_pos,
            &mut stamp,
            || true,
        );
        let untyped_cands = all_candidates(
            &db,
            &graph,
            CandidateSpace::UntypedKeys,
            &table,
            &is_pos,
            &mut stamp,
            || true,
        );
        assert!(
            untyped_cands.len() >= schema_cands.len(),
            "untyped space ({}) must be at least as large as schema space ({})",
            untyped_cands.len(),
            schema_cands.len()
        );

        // Both spaces still learn the planted structure.
        for space in [CandidateSpace::SchemaJoins, CandidateSpace::UntypedKeys] {
            let foil =
                crate::foil::Foil::new(crate::foil::FoilParams { space, ..Default::default() });
            let preds = foil.train_predict(&db, &rows, &rows);
            let correct = preds.iter().zip(&rows).filter(|(p, r)| **p == db.label(**r)).count();
            assert!(
                correct as f64 / rows.len() as f64 > 0.6,
                "{space:?}: training-set accuracy too low"
            );
        }
    }

    #[test]
    fn candidate_space_default_is_untyped() {
        assert_eq!(CandidateSpace::default(), CandidateSpace::UntypedKeys);
    }
}
