//! FOIL (Quinlan & Cameron-Jones) reimplemented as the paper's baseline.
//!
//! A top-down sequential covering learner that — unlike CrossMine —
//! evaluates every candidate literal by **physically joining** the current
//! clause's binding table with the candidate relation (§2, §4.1). The
//! covering loop and stopping criteria mirror CrossMine's (same foil gain,
//! same Laplace accuracy), so measured differences isolate the evaluation
//! strategy: tuple-ID propagation vs. join materialization.

use std::time::{Duration, Instant};

use crossmine_core::gain::laplace_accuracy;
use crossmine_core::idset::Stamp;
use crossmine_relational::{BindingTable, ClassLabel, Database, JoinGraph, Row};

use crate::common::{
    apply_candidate, best_candidate, positivity, table_class_counts, Candidate, CandidateSpace,
};

/// FOIL hyper-parameters, aligned with CrossMine's for comparability.
#[derive(Debug, Clone)]
pub struct FoilParams {
    /// Minimum foil gain to append a literal.
    pub min_gain: f64,
    /// Maximum literals per clause.
    pub max_clause_length: usize,
    /// Covering stops when positives drop to this fraction.
    pub min_pos_fraction: f64,
    /// Safety cap on clauses per class.
    pub max_clauses: usize,
    /// Wall-clock budget for training (the paper cuts runs at 10 hours);
    /// `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Which joins the refinement operator considers (see
    /// [`CandidateSpace`]); the historical default is untyped keys.
    pub space: CandidateSpace,
}

impl Default for FoilParams {
    fn default() -> Self {
        FoilParams {
            min_gain: 2.5,
            max_clause_length: 6,
            min_pos_fraction: 0.1,
            max_clauses: 1000,
            timeout: None,
            space: CandidateSpace::default(),
        }
    }
}

/// One FOIL clause: a sequence of refinements plus prediction metadata.
#[derive(Debug, Clone)]
pub struct FoilClause {
    /// The refinements, in order. Slot indices refer to the binding table
    /// built by replaying the sequence from the target relation.
    pub steps: Vec<Candidate>,
    /// Predicted class.
    pub label: ClassLabel,
    /// Positive training support.
    pub sup_pos: usize,
    /// Negative training support.
    pub sup_neg: usize,
    /// Laplace accuracy estimate.
    pub accuracy: f64,
}

/// The FOIL classifier.
#[derive(Debug, Clone, Default)]
pub struct Foil {
    /// Hyper-parameters.
    pub params: FoilParams,
}

/// A trained FOIL model.
#[derive(Debug, Clone)]
pub struct FoilModel {
    /// All clauses across classes, sorted by accuracy descending.
    pub clauses: Vec<FoilClause>,
    /// Fallback label.
    pub default_label: ClassLabel,
    /// Whether training hit the timeout (results may be partial).
    pub timed_out: bool,
}

impl Foil {
    /// A FOIL learner with the given parameters.
    pub fn new(params: FoilParams) -> Self {
        Foil { params }
    }

    /// Trains on the target rows `train_rows` of `db`.
    pub fn fit(&self, db: &Database, train_rows: &[Row]) -> FoilModel {
        let graph = JoinGraph::build(&db.schema);
        let start = Instant::now();
        let deadline = self.params.timeout.map(|t| start + t);
        let in_budget = || deadline.map(|d| Instant::now() < d).unwrap_or(true);

        let mut class_counts: Vec<(ClassLabel, usize)> = Vec::new();
        for &r in train_rows {
            let l = db.label(r);
            match class_counts.iter_mut().find(|(c, _)| *c == l) {
                Some((_, n)) => *n += 1,
                None => class_counts.push((l, 1)),
            }
        }
        class_counts.sort_by_key(|&(c, _)| c);
        let default_label = class_counts
            .iter()
            .max_by_key(|&&(c, n)| (n, std::cmp::Reverse(c)))
            .map(|&(c, _)| c)
            .unwrap_or(ClassLabel::NEG);
        let num_classes = class_counts.len().max(2);

        let target = db.target().expect("database must have a target");
        let mut stamp = Stamp::new(db.num_targets());
        let mut clauses: Vec<FoilClause> = Vec::new();
        let mut timed_out = false;

        'classes: for &(class, _) in &class_counts {
            let is_pos = positivity(db, class);
            let mut remaining: Vec<Row> = train_rows.to_vec();
            let orig_pos = remaining.iter().filter(|r| is_pos[r.0 as usize]).count();
            let mut covered_pos = 0usize;

            while (orig_pos - covered_pos) as f64 > self.params.min_pos_fraction * orig_pos as f64
                && clauses.len() < self.params.max_clauses
            {
                if !in_budget() {
                    timed_out = true;
                    break 'classes;
                }
                let mut table = BindingTable::from_targets(target, remaining.iter().copied());
                let mut steps: Vec<Candidate> = Vec::new();
                while let Some(best) = best_candidate(
                    db,
                    &graph,
                    self.params.space,
                    &table,
                    &is_pos,
                    &mut stamp,
                    in_budget,
                ) {
                    if best.gain < self.params.min_gain {
                        break;
                    }
                    table = apply_candidate(db, &table, &best.candidate);
                    steps.push(best.candidate);
                    if steps.len() >= self.params.max_clause_length || !in_budget() {
                        break;
                    }
                }
                if steps.is_empty() {
                    break;
                }
                let (sup_pos, sup_neg) = table_class_counts(&table, &is_pos, &mut stamp);
                if sup_pos == 0 {
                    break;
                }
                let covered = table.distinct_targets();
                clauses.push(FoilClause {
                    steps,
                    label: class,
                    sup_pos,
                    sup_neg,
                    accuracy: laplace_accuracy(sup_pos, sup_neg as f64, num_classes),
                });
                // Remove covered positives; negatives stay (Algorithm 1).
                let covered_set: std::collections::HashSet<u32> =
                    covered.iter().map(|r| r.0).collect();
                remaining.retain(|r| {
                    let hit = covered_set.contains(&r.0) && is_pos[r.0 as usize];
                    if hit {
                        covered_pos += 1;
                    }
                    !hit
                });
            }
        }

        clauses.sort_by(|a, b| {
            b.accuracy.partial_cmp(&a.accuracy).unwrap_or(std::cmp::Ordering::Equal)
        });
        FoilModel { clauses, default_label, timed_out }
    }
}

impl FoilModel {
    /// Predicts by the most accurate satisfied clause, evaluated with
    /// physical joins (replaying each clause's refinement sequence).
    pub fn predict(&self, db: &Database, rows: &[Row]) -> Vec<ClassLabel> {
        let target = db.target().expect("database must have a target");
        let mut prediction: Vec<Option<ClassLabel>> = vec![None; rows.len()];
        let mut slot_of: Vec<Option<usize>> = vec![None; db.num_targets()];
        for (i, r) in rows.iter().enumerate() {
            slot_of[r.0 as usize] = Some(i);
        }
        let mut unassigned: Vec<Row> = rows.to_vec();
        for clause in &self.clauses {
            if unassigned.is_empty() {
                break;
            }
            let mut table = BindingTable::from_targets(target, unassigned.iter().copied());
            for step in &clause.steps {
                table = apply_candidate(db, &table, step);
                if table.is_empty() {
                    break;
                }
            }
            let satisfied = table.distinct_targets();
            if satisfied.is_empty() {
                continue;
            }
            let sat: std::collections::HashSet<u32> = satisfied.iter().map(|r| r.0).collect();
            for r in &satisfied {
                if let Some(slot) = slot_of[r.0 as usize] {
                    if prediction[slot].is_none() {
                        prediction[slot] = Some(clause.label);
                    }
                }
            }
            unassigned.retain(|r| !sat.contains(&r.0));
        }
        prediction.into_iter().map(|p| p.unwrap_or(self.default_label)).collect()
    }
}

impl crossmine_core::RelationalClassifier for Foil {
    fn train_predict(
        &self,
        db: &Database,
        train_rows: &[Row],
        test_rows: &[Row],
    ) -> Vec<ClassLabel> {
        let model = self.fit(db, train_rows);
        model.predict(db, test_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_relational::{AttrType, Attribute, DatabaseSchema, RelationSchema, Value};

    fn simple_db(n: u64) -> Database {
        let mut schema = DatabaseSchema::new();
        let mut t = RelationSchema::new("T");
        t.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        let mut c = Attribute::new("c", AttrType::Categorical);
        c.intern("a");
        c.intern("b");
        t.add_attribute(c).unwrap();
        let mut s = RelationSchema::new("S");
        s.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        s.add_attribute(Attribute::new("t_id", AttrType::ForeignKey { target: "T".into() }))
            .unwrap();
        let mut d = Attribute::new("d", AttrType::Categorical);
        d.intern("x");
        d.intern("y");
        s.add_attribute(d).unwrap();
        let tid = schema.add_relation(t).unwrap();
        let sid = schema.add_relation(s).unwrap();
        schema.set_target(tid);
        let mut db = Database::new(schema).unwrap();
        for i in 0..n {
            // class determined by the S relation's attribute, one join away.
            let pos = i % 2 == 0;
            db.push_row(tid, vec![Value::Key(i), Value::Cat(0)]).unwrap();
            db.push_label(if pos { ClassLabel::POS } else { ClassLabel::NEG });
            db.push_row(sid, vec![Value::Key(i), Value::Key(i), Value::Cat(pos as u32)]).unwrap();
        }
        db
    }

    #[test]
    fn learns_one_join_away() {
        let db = simple_db(40);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = Foil::default().fit(&db, &rows);
        assert!(!model.clauses.is_empty());
        assert!(!model.timed_out);
        let preds = model.predict(&db, &rows);
        let correct = preds.iter().zip(&rows).filter(|(p, r)| **p == db.label(**r)).count();
        assert_eq!(correct, rows.len(), "separable-one-join data must be perfect");
    }

    #[test]
    fn respects_timeout() {
        let db = simple_db(40);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let params = FoilParams { timeout: Some(Duration::ZERO), ..Default::default() };
        let model = Foil::new(params).fit(&db, &rows);
        assert!(model.timed_out);
        // Prediction still works (falls back to default).
        let preds = model.predict(&db, &rows);
        assert_eq!(preds.len(), rows.len());
    }

    #[test]
    fn clause_metadata_consistent() {
        let db = simple_db(60);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = Foil::default().fit(&db, &rows);
        for c in &model.clauses {
            assert!(c.sup_pos > 0);
            assert!(c.accuracy > 0.0 && c.accuracy <= 1.0);
            assert!(c.steps.len() <= FoilParams::default().max_clause_length);
        }
        for w in model.clauses.windows(2) {
            assert!(w[0].accuracy >= w[1].accuracy);
        }
    }

    #[test]
    fn noise_produces_no_clauses() {
        let mut db = simple_db(40);
        // Scramble labels so nothing correlates.
        let labels: Vec<ClassLabel> = (0..40)
            .map(|i| if (i / 2) % 2 == 0 { ClassLabel::POS } else { ClassLabel::NEG })
            .collect();
        db.set_labels(labels).unwrap();
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = Foil::default().fit(&db, &rows);
        // The S signal is gone; any clause found must be weak/absent.
        for c in &model.clauses {
            assert!(c.sup_pos + c.sup_neg < 40);
        }
    }
}
