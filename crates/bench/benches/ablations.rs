//! Ablations of CrossMine's design choices (DESIGN.md §4):
//!
//! * look-one-ahead on/off — cost of the wider search (§5.2);
//! * aggregation literals on/off — cost of per-target statistics (§3.2);
//! * fan-out constraint on/off — cost of unrestricted propagation (§4.3);
//! * negative sampling on/off — the §6 speedup on imbalanced data;
//! * ID propagation vs label propagation — per-edge cost of exactness (§4.3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use crossmine_baselines::label_prop::{propagate_labels, LabelAnnotation};
use crossmine_core::idset::TargetSet;
use crossmine_core::propagation::ClauseState;
use crossmine_core::{CrossMine, CrossMineParams};
use crossmine_relational::{ClassLabel, JoinGraph, Row};
use crossmine_synth::{generate, GenParams};

fn bench_learner_ablations(c: &mut Criterion) {
    let db = generate(&GenParams {
        num_relations: 10,
        expected_tuples: 200,
        min_tuples: 60,
        seed: 2,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();

    let variants: Vec<(&str, CrossMineParams)> = vec![
        ("full", CrossMineParams::default()),
        ("no_look_one_ahead", CrossMineParams::builder().look_one_ahead(false).build().unwrap()),
        ("no_aggregation", CrossMineParams::builder().aggregation_literals(false).build().unwrap()),
        ("no_fanout_limit", CrossMineParams::builder().max_fanout(None).build().unwrap()),
        ("with_sampling", CrossMineParams::with_sampling()),
    ];

    let mut group = c.benchmark_group("crossmine_ablations");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for (name, params) in variants {
        group.bench_function(name, |b| {
            let clf = CrossMine::new(params.clone());
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
    }
    group.finish();
}

fn bench_propagation_vs_label_prop(c: &mut Criterion) {
    let db = generate(&GenParams {
        num_relations: 8,
        expected_tuples: 1000,
        seed: 2,
        ..Default::default()
    });
    db.build_all_indexes();
    let graph = JoinGraph::build(&db.schema);
    let target = db.target().unwrap();
    let edge = *graph.edges_from(target).next().expect("target has an edge");
    let is_pos: Vec<bool> = db.labels().iter().map(|&l| l == ClassLabel::POS).collect();

    let mut group = c.benchmark_group("id_vs_label_propagation");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("tuple_id_propagation", |b| {
        let state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
        b.iter(|| std::hint::black_box(state.propagate_edge(&edge)));
    });
    group.bench_function("label_propagation", |b| {
        let ann = LabelAnnotation::from_target(&db, &is_pos);
        b.iter(|| std::hint::black_box(propagate_labels(&db, &ann, &edge)));
    });
    group.finish();
}

criterion_group!(benches, bench_learner_ablations, bench_propagation_vs_label_prop);
criterion_main!(benches);
