//! Figure 9 (bench form): training time vs number of relations on
//! `Rx.T*.F2` databases, for CrossMine, FOIL and TILDE. Sizes are scaled so
//! `cargo bench` stays fast; the experiment harness
//! (`--bin experiments -- fig9 --full`) runs the paper's sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crossmine_baselines::{Foil, FoilParams, Tilde, TildeParams};
use crossmine_core::CrossMine;
use crossmine_relational::Row;
use crossmine_synth::{generate, GenParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_relations");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for r in [5usize, 10, 20] {
        let params = GenParams {
            num_relations: r,
            expected_tuples: 120,
            min_tuples: 40,
            seed: 1,
            ..Default::default()
        };
        let db = generate(&params);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();

        group.bench_with_input(BenchmarkId::new("crossmine", r), &r, |b, _| {
            let clf = CrossMine::default();
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("foil", r), &r, |b, _| {
            let clf = Foil::new(FoilParams {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            });
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("tilde", r), &r, |b, _| {
            let clf = Tilde::new(TildeParams {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            });
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
