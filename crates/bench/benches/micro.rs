//! Microbenchmarks of CrossMine's hot paths: tuple-ID propagation, foil
//! gain, best-literal search, clause application, and the two physical join
//! strategies the baselines use.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crossmine_core::idset::{Stamp, TargetSet};
use crossmine_core::learner::{ClauseLearner, SearchScratch};
use crossmine_core::propagation::{propagate, ClauseState, PropagationScratch};
use crossmine_core::search::best_constraint_in;
use crossmine_core::CrossMineParams;
use crossmine_relational::{BindingTable, ClassLabel, Database, JoinEdge, JoinGraph};
use crossmine_synth::{generate, GenParams};

fn test_db(tuples: usize) -> Database {
    generate(&GenParams {
        num_relations: 8,
        expected_tuples: tuples,
        min_tuples: tuples / 4,
        seed: 3,
        ..Default::default()
    })
}

fn target_edge(db: &Database, graph: &JoinGraph) -> JoinEdge {
    let target = db.target().unwrap();
    *graph.edges_from(target).next().expect("target has at least one join edge")
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for tuples in [200usize, 1000, 5000] {
        let db = test_db(tuples);
        db.build_all_indexes();
        let graph = JoinGraph::build(&db.schema);
        let edge = target_edge(&db, &graph);
        let is_pos: Vec<bool> = db.labels().iter().map(|&l| l == ClassLabel::POS).collect();
        let state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
        group.bench_with_input(BenchmarkId::new("one_edge", tuples), &tuples, |b, _| {
            b.iter(|| std::hint::black_box(state.propagate_edge(&edge)));
        });
    }
    group.finish();
}

fn bench_gain(c: &mut Criterion) {
    c.bench_function("foil_gain", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 1..50usize {
                acc += crossmine_core::gain::foil_gain(
                    std::hint::black_box(50),
                    std::hint::black_box(50),
                    p,
                    50 - p,
                );
            }
            acc
        });
    });
}

fn bench_literal_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("literal_search");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for tuples in [200usize, 1000] {
        let db = test_db(tuples);
        db.build_all_indexes();
        let graph = JoinGraph::build(&db.schema);
        let edge = target_edge(&db, &graph);
        let is_pos: Vec<bool> = db.labels().iter().map(|&l| l == ClassLabel::POS).collect();
        let targets = TargetSet::all(&is_pos);
        let state = ClauseState::new(&db, &is_pos, targets.clone());
        let ann = state.propagate_edge(&edge);
        let params = CrossMineParams::default();
        group.bench_with_input(BenchmarkId::new("one_relation", tuples), &tuples, |b, _| {
            let mut stamp = Stamp::new(db.num_targets());
            b.iter(|| {
                std::hint::black_box(best_constraint_in(
                    &db, edge.to, &ann, &targets, &is_pos, &mut stamp, &params, true,
                ))
            });
        });
    }
    group.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("physical_join");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for tuples in [200usize, 1000] {
        let db = test_db(tuples);
        db.build_all_indexes();
        let graph = JoinGraph::build(&db.schema);
        let edge = target_edge(&db, &graph);
        let target = db.target().unwrap();
        let table = BindingTable::from_targets(target, db.relation(target).iter_rows());
        group.bench_with_input(BenchmarkId::new("indexed", tuples), &tuples, |b, _| {
            b.iter(|| std::hint::black_box(table.join(&db, 0, &edge)));
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", tuples), &tuples, |b, _| {
            b.iter(|| std::hint::black_box(table.join_scan(&db, 0, &edge)));
        });
    }
    group.finish();
}

fn bench_disk_vs_memory_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_vs_memory_propagation");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let db = test_db(2000);
    db.build_all_indexes();
    let graph = JoinGraph::build(&db.schema);
    let edge = target_edge(&db, &graph);
    let is_pos: Vec<bool> = db.labels().iter().map(|&l| l == ClassLabel::POS).collect();
    let state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
    group.bench_function("in_memory", |b| {
        b.iter(|| std::hint::black_box(state.propagate_edge(&edge)));
    });
    let path = std::env::temp_dir().join("crossmine-bench-disk.pages");
    let mut disk = crossmine_storage::DiskDatabase::spill(&db, &path, 32).unwrap();
    let target = db.target().unwrap();
    group.bench_function("disk_resident", |b| {
        b.iter(|| {
            std::hint::black_box(
                crossmine_storage::propagate_disk(
                    &mut disk,
                    state.annotation(target).unwrap(),
                    &edge,
                )
                .unwrap(),
            )
        });
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

/// Full Find-Best-Literal calls across worker counts on an R20.T500-class
/// database — the headline scaling number for the parallel search.
fn bench_threads_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("threads_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let db = generate(&GenParams {
        num_relations: 20,
        expected_tuples: 500,
        min_tuples: 125,
        seed: 3,
        ..Default::default()
    });
    db.build_all_indexes();
    let graph = JoinGraph::build(&db.schema);
    let is_pos: Vec<bool> = db.labels().iter().map(|&l| l == ClassLabel::POS).collect();
    for threads in [1usize, 2, 4, 8] {
        let params = CrossMineParams::builder().num_threads(Some(threads)).build().unwrap();
        let learner = ClauseLearner::new(&db, &graph, &params, ClassLabel::POS, 2);
        let state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
        group.bench_with_input(BenchmarkId::new("find_best_literal", threads), &threads, |b, _| {
            let mut scratch = SearchScratch::for_params(&db, &params);
            b.iter(|| std::hint::black_box(learner.find_best_literal(&state, &mut scratch)));
        });
    }
    group.finish();
}

/// Reused CSR scratch vs the allocating wrapper: the scratch path must not
/// grow the heap per call once its buffers reach steady state.
fn bench_propagation_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation_alloc");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for tuples in [1000usize, 5000] {
        let db = test_db(tuples);
        db.build_all_indexes();
        let graph = JoinGraph::build(&db.schema);
        let edge = target_edge(&db, &graph);
        let is_pos: Vec<bool> = db.labels().iter().map(|&l| l == ClassLabel::POS).collect();
        let state = ClauseState::new(&db, &is_pos, TargetSet::all(&is_pos));
        let ann = state.annotation(edge.from).unwrap().clone();
        group.bench_with_input(BenchmarkId::new("allocating", tuples), &tuples, |b, _| {
            b.iter(|| std::hint::black_box(propagate(&db, &ann, &edge)));
        });
        group.bench_with_input(BenchmarkId::new("scratch_reuse", tuples), &tuples, |b, _| {
            let mut scratch = PropagationScratch::new();
            b.iter(|| {
                scratch.propagate_from(&db, ann.view(), &edge);
                std::hint::black_box(scratch.view().total_ids())
            });
        });
    }
    group.finish();
}

/// `CrossMineModel::predict` vs the compiled-plan batched evaluator at
/// serving batch sizes: the per-request win of `ServeScratch` reuse shows
/// up at batch 1; the propagation-amortisation win at 32 and 1024.
fn bench_serve_batch(c: &mut Criterion) {
    use crossmine_core::CrossMine;
    use crossmine_serve::{evaluate_batch, CompiledPlan, ServeScratch};

    let mut group = c.benchmark_group("serve_batch");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    let db = test_db(1500);
    db.build_all_indexes();
    let target = db.target().unwrap();
    let rows: Vec<_> = db.relation(target).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).unwrap();
    let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
    for batch in [1usize, 32, 1024] {
        let batch = batch.min(rows.len());
        let chunk = &rows[..batch];
        group.bench_with_input(BenchmarkId::new("predict", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(model.predict(&db, chunk).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("compiled_batched", batch), &batch, |b, _| {
            let mut scratch = ServeScratch::new();
            b.iter(|| std::hint::black_box(evaluate_batch(&plan, &db, chunk, &mut scratch)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_propagation,
    bench_gain,
    bench_literal_search,
    bench_joins,
    bench_disk_vs_memory_propagation,
    bench_threads_scaling,
    bench_propagation_alloc,
    bench_serve_batch
);
criterion_main!(benches);
