//! Figure 11 (bench form): CrossMine with negative sampling on growing
//! databases — the paper runs this to 2 M total tuples; the bench covers
//! three decades to expose the near-linear scaling.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crossmine_core::{CrossMine, CrossMineParams};
use crossmine_relational::Row;
use crossmine_synth::{generate, GenParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_large");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for t in [500usize, 2000, 8000] {
        let params =
            GenParams { num_relations: 10, expected_tuples: t, seed: 1, ..Default::default() };
        let db = generate(&params);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        group.throughput(criterion::Throughput::Elements(db.total_tuples() as u64));
        group.bench_with_input(BenchmarkId::new("crossmine_sampling", t), &t, |b, _| {
            let clf = CrossMine::new(CrossMineParams::with_sampling());
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
