//! Figure 12 (bench form): training time vs foreign keys per relation on
//! `R10.T*.Fx`. More foreign keys mean more join edges per active relation,
//! the one dimension along which CrossMine itself grows superlinearly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crossmine_baselines::{Foil, FoilParams, Tilde, TildeParams};
use crossmine_core::CrossMine;
use crossmine_relational::Row;
use crossmine_synth::{generate, GenParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_fks");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for f in [1usize, 2, 3] {
        let params = GenParams {
            num_relations: 10,
            expected_tuples: 120,
            min_tuples: 40,
            expected_foreign_keys: f,
            seed: 1,
            ..Default::default()
        };
        let db = generate(&params);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();

        group.bench_with_input(BenchmarkId::new("crossmine", f), &f, |b, _| {
            let clf = CrossMine::default();
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("foil", f), &f, |b, _| {
            let clf = Foil::new(FoilParams {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            });
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("tilde", f), &f, |b, _| {
            let clf = Tilde::new(TildeParams {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            });
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
