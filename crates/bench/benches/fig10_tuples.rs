//! Figure 10 (bench form): training time vs tuples per relation on
//! `R10.Tx.F2`, for CrossMine (± sampling), FOIL and TILDE. The quadratic
//! growth of the join-based baselines vs CrossMine's near-linear growth is
//! the paper's headline scaling result.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crossmine_baselines::{Foil, FoilParams, Tilde, TildeParams};
use crossmine_core::{CrossMine, CrossMineParams};
use crossmine_relational::Row;
use crossmine_synth::{generate, GenParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_tuples");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for t in [100usize, 200, 400] {
        let params = GenParams {
            num_relations: 10,
            expected_tuples: t,
            min_tuples: t / 4,
            seed: 1,
            ..Default::default()
        };
        let db = generate(&params);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();

        group.bench_with_input(BenchmarkId::new("crossmine", t), &t, |b, _| {
            let clf = CrossMine::default();
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("crossmine_sampling", t), &t, |b, _| {
            let clf = CrossMine::new(CrossMineParams::with_sampling());
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("foil", t), &t, |b, _| {
            let clf = Foil::new(FoilParams {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            });
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
        group.bench_with_input(BenchmarkId::new("tilde", t), &t, |b, _| {
            let clf = Tilde::new(TildeParams {
                timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            });
            b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
