//! Table 3 (bench form): training time on the (simulated) Mutagenesis
//! database — small enough that all three approaches run at full size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use crossmine_baselines::{Foil, FoilParams, Tilde, TildeParams};
use crossmine_core::CrossMine;
use crossmine_datasets::{generate_mutagenesis, MutagenesisConfig};
use crossmine_relational::Row;

fn bench(c: &mut Criterion) {
    let db = generate_mutagenesis(&MutagenesisConfig::default());
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();

    let mut group = c.benchmark_group("table3_mutagenesis");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    group.bench_function("crossmine", |b| {
        let clf = CrossMine::default();
        b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
    });
    group.bench_function("foil", |b| {
        let clf =
            Foil::new(FoilParams { timeout: Some(Duration::from_secs(120)), ..Default::default() });
        b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
    });
    group.bench_function("tilde", |b| {
        let clf = Tilde::new(TildeParams {
            timeout: Some(Duration::from_secs(120)),
            ..Default::default()
        });
        b.iter(|| std::hint::black_box(clf.fit(&db, &rows)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
