//! The continuous-bench regression gate.
//!
//! [`run_suite`] executes a pinned suite of end-to-end benchmarks —
//! learner fits on the §7.1 synthetic workloads, a warm tuple-ID
//! propagation pass, the serve-layer batched evaluator, and the
//! prediction server's end-to-end latency under client load — and folds
//! each into a [`BenchSample`]: the **median of N runs** plus the **median
//! absolute deviation (MAD)** as a noise band. The whole suite serializes
//! to a schema-versioned JSON document (`BENCH_crossmine.json`) carrying a
//! machine fingerprint, and [`check`] compares a fresh run against such a
//! committed baseline:
//!
//! > a benchmark **regresses** when
//! > `new_median > baseline_median × 1.15 + 3 × baseline_MAD`
//!
//! i.e. more than 15 % slower *and* outside three noise bands. Tail
//! quantiles (`_p99` benchmarks) widen the band to at least
//! [`TAIL_NOISE_FLOOR`] of the median, because a pin taken on a quiet
//! machine records far less jitter than tails actually have. Only names
//! present in both reports are compared, so a smoke run (which skips the
//! expensive fit) still gates against a full baseline. When the machine
//! fingerprint differs, regressions are downgraded to warnings — absolute
//! times from another box prove nothing.
//!
//! The serve benchmarks take a [`ChaosConfig`], which is how the test
//! suite proves the gate actually fires: injecting a per-batch stall
//! slows the server measurably, and `check` must flag it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossmine_core::CrossMine;
use crossmine_relational::{Database, Row};
use crossmine_serve::{
    evaluate_batch, ChaosConfig, CompiledPlan, ModelRegistry, NetConfig, PredictionServer,
    ServeScratch, ServerConfig, ShardRouter,
};
use crossmine_synth::{generate, GenParams};

use crate::json::Json;
use crate::net_client::{NetClient, NetProto};

/// Current on-disk schema version of the suite report.
pub const SCHEMA_VERSION: u64 = 1;

/// Regression threshold: a benchmark fails when its fresh median exceeds
/// `baseline × REGRESSION_FACTOR + NOISE_BANDS × MAD`.
pub const REGRESSION_FACTOR: f64 = 1.15;
/// How many baseline MADs of slack the gate grants on top of the factor.
pub const NOISE_BANDS: f64 = 3.0;
/// Noise floor for tail-quantile benchmarks, as a fraction of the
/// baseline median. A smoke-run p99 is roughly the third-slowest of a few
/// hundred requests: one scheduler preemption on a small box moves it
/// 30–40% between otherwise identical runs, while a quiet pinning run can
/// record a MAD under 3% of the median. Gating tails against the raw
/// pinned MAD therefore turns jitter into failures; `_p99` benchmarks
/// instead use `max(MAD, TAIL_NOISE_FLOOR × median)` as their band, which
/// still catches any sustained ~1.6x tail regression.
pub const TAIL_NOISE_FLOOR: f64 = 0.15;

/// Whether a benchmark name denotes a tail quantile (`_p99`), and so
/// gates with the widened [`TAIL_NOISE_FLOOR`] band.
fn is_tail_bench(name: &str) -> bool {
    name.contains("_p99")
}

/// Knobs of one suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Runs per benchmark; the sample is the median, the noise band the MAD.
    pub samples: usize,
    /// Skip the expensive benchmarks (the R10.T500.F5 fit). Smoke runs
    /// share every other benchmark name with full runs so `check` still
    /// compares them against a full baseline.
    pub smoke: bool,
    /// Requests issued per serve-latency sample.
    pub serve_requests: usize,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Fault injection for the serve benchmarks. Off by default; the
    /// regression-gate test injects stalls here to prove `check` fires.
    pub chaos: ChaosConfig,
    /// When set, only benchmarks whose name starts with this prefix run.
    pub only: Option<String>,
    /// Count-store byte budget for the learner-fit benchmarks (`None`
    /// keeps the library default; `Some(0)` disables caching). The
    /// `.nocache` fit variants always run with a budget of 0 regardless.
    pub cache_budget: Option<usize>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            samples: 5,
            smoke: false,
            serve_requests: 2000,
            seed: 42,
            chaos: ChaosConfig::off(),
            only: None,
            cache_budget: None,
        }
    }
}

impl SuiteConfig {
    /// The fast configuration CI runs on every push.
    pub fn smoke() -> Self {
        SuiteConfig { samples: 3, smoke: true, serve_requests: 300, ..SuiteConfig::default() }
    }
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSample {
    /// Stable benchmark name, e.g. `learner.fit.R5.T200.F3`.
    pub name: String,
    /// Unit of every number in this sample (`ms` or `us`).
    pub unit: String,
    /// Median across runs.
    pub median: f64,
    /// Median absolute deviation across runs — the noise band.
    pub mad: f64,
    /// The raw per-run measurements, in run order.
    pub samples: Vec<f64>,
}

/// Where a report was produced. Comparing absolute medians across
/// machines is meaningless, so [`check`] downgrades regressions to
/// warnings when fingerprints differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Available parallelism at run time.
    pub parallelism: u64,
}

impl Fingerprint {
    /// The fingerprint of this machine, right now.
    pub fn current() -> Self {
        Fingerprint {
            arch: std::env::consts::ARCH.to_string(),
            os: std::env::consts::OS.to_string(),
            parallelism: std::thread::available_parallelism().map(|p| p.get() as u64).unwrap_or(1),
        }
    }
}

/// A full suite run: what was measured, where, and under which schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// On-disk schema version; bumped on incompatible changes.
    pub schema_version: u64,
    /// The machine that produced the numbers.
    pub fingerprint: Fingerprint,
    /// Whether this was a smoke run.
    pub smoke: bool,
    /// Runs per benchmark.
    pub samples_per_bench: usize,
    /// The measurements, in suite order.
    pub results: Vec<BenchSample>,
}

/// One name-by-name comparison from [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name present in both reports.
    pub name: String,
    /// Baseline median.
    pub base_median: f64,
    /// Baseline noise band (MAD).
    pub base_mad: f64,
    /// Fresh median.
    pub new_median: f64,
    /// `new_median / base_median` (`inf` when the baseline is 0).
    pub ratio: f64,
    /// Whether the regression rule fired for this benchmark.
    pub regressed: bool,
}

/// The outcome of gating a fresh report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Per-benchmark comparisons over the name intersection.
    pub comparisons: Vec<Comparison>,
    /// Whether both reports came from the same kind of machine.
    pub fingerprint_match: bool,
    /// Names present in the baseline but missing from the fresh run
    /// (informational — smoke runs legitimately skip benchmarks).
    pub missing: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate should fail the build: at least one regression on
    /// a matching machine. On a foreign machine regressions are warnings.
    pub fn failed(&self) -> bool {
        self.fingerprint_match && self.comparisons.iter().any(|c| c.regressed)
    }

    /// All comparisons that fired the rule, regardless of fingerprint.
    pub fn regressions(&self) -> impl Iterator<Item = &Comparison> {
        self.comparisons.iter().filter(|c| c.regressed)
    }

    /// Human-readable gate summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.comparisons {
            let verdict = if !c.regressed {
                "ok"
            } else if self.fingerprint_match {
                "REGRESSED"
            } else {
                "regressed (foreign baseline — warning only)"
            };
            out.push_str(&format!(
                "  {:<32} base {:>10.1} (mad {:>6.1})  now {:>10.1}  x{:.2}  {}\n",
                c.name, c.base_median, c.base_mad, c.new_median, c.ratio, verdict
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("  {name:<32} not measured in this run (skipped)\n"));
        }
        if !self.fingerprint_match {
            out.push_str(
                "  note: baseline fingerprint differs; regressions do not fail the gate\n",
            );
        }
        out
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("bench samples are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation around the median.
pub fn mad(values: &[f64]) -> f64 {
    let m = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&deviations)
}

fn sample_from(name: &str, unit: &str, runs: Vec<f64>) -> BenchSample {
    BenchSample {
        name: name.to_string(),
        unit: unit.to_string(),
        median: median(&runs),
        mad: mad(&runs),
        samples: runs,
    }
}

fn workload_r5(seed: u64) -> GenParams {
    GenParams {
        num_relations: 5,
        expected_tuples: 200,
        min_tuples: 60,
        expected_foreign_keys: 3,
        seed,
        ..Default::default()
    }
}

fn workload_r10(seed: u64) -> GenParams {
    GenParams {
        num_relations: 10,
        expected_tuples: 500,
        min_tuples: 150,
        expected_foreign_keys: 5,
        seed,
        ..Default::default()
    }
}

fn target_rows(db: &Database) -> Vec<Row> {
    db.relation(db.target().expect("synthetic databases always set a target")).iter_rows().collect()
}

fn wants(config: &SuiteConfig, name: &str) -> bool {
    config.only.as_deref().map(|p| name.starts_with(p)).unwrap_or(true)
}

/// Run the pinned suite and aggregate every benchmark into median + MAD.
///
/// `progress` receives one line per finished benchmark (pass
/// `|_| {}` to stay silent, or hook it to stderr from the binary).
pub fn run_suite(config: &SuiteConfig, mut progress: impl FnMut(&str)) -> BenchReport {
    let mut results = Vec::new();

    // -- Learner: end-to-end fit on the §7.1 workloads ------------------
    // Each sample fits a fresh classifier (fresh count store), so the
    // cache-on numbers measure one cold fit with intra-fit reuse only.
    let mut fit_bench =
        |name: &str, params: &GenParams, budget: Option<usize>, results: &mut Vec<BenchSample>| {
            if !wants(config, name) {
                return;
            }
            let db = generate(params);
            let rows = target_rows(&db);
            let make = || {
                let mut clf = CrossMine::default();
                if let Some(b) = budget {
                    clf.params.stats_cache_budget_bytes = b;
                }
                clf
            };
            // Warmup fit excluded from the samples: builds the database's
            // lazy key/sorted indexes and faults in the allocator, so no
            // sample pays a one-off cold-start cost.
            let warm = make().fit(&db, &rows).expect("fit on pinned workload");
            std::hint::black_box(warm.num_clauses());
            let mut runs = Vec::with_capacity(config.samples);
            for _ in 0..config.samples {
                let clf = make();
                let start = Instant::now();
                let model = clf.fit(&db, &rows).expect("fit on pinned workload");
                runs.push(start.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(model.num_clauses());
            }
            let sample = sample_from(name, "ms", runs);
            progress(&format!(
                "{:<32} median {:.1} ms (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        };
    // With an explicit budget of 0 the plain variants would duplicate the
    // `.nocache` ones and be gated against cache-on baselines, so skip them;
    // the gate reports them as "not measured" (non-fatal).
    let budget = config.cache_budget;
    if budget != Some(0) {
        fit_bench("learner.fit.R5.T200.F3", &workload_r5(config.seed), budget, &mut results);
    }
    fit_bench("learner.fit.R5.T200.F3.nocache", &workload_r5(config.seed), Some(0), &mut results);
    if !config.smoke {
        if budget != Some(0) {
            fit_bench("learner.fit.R10.T500.F5", &workload_r10(config.seed), budget, &mut results);
        }
        fit_bench(
            "learner.fit.R10.T500.F5.nocache",
            &workload_r10(config.seed),
            Some(0),
            &mut results,
        );
    }

    // -- Shared model for the propagation / serve benchmarks ------------
    let db = Arc::new(generate(&workload_r5(config.seed)));
    let rows = target_rows(&db);
    let model = CrossMine::default().fit(&db, &rows).expect("fit on pinned workload");
    let plan = CompiledPlan::compile(&model, &db.schema).expect("plan compiles");

    // -- Propagation: a warm in-core predict pass ------------------------
    if wants(config, "propagation.predict.R5.T200.F3") {
        let mut runs = Vec::with_capacity(config.samples);
        // Warmup passes (excluded from samples) so no sample pays cold
        // caches, lazy indexes, or first-touch page faults.
        for _ in 0..2 {
            std::hint::black_box(model.predict(&db, &rows).expect("predict"));
        }
        for _ in 0..config.samples {
            let start = Instant::now();
            let labels = model.predict(&db, &rows).expect("predict");
            runs.push(start.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(labels.len());
        }
        let sample = sample_from("propagation.predict.R5.T200.F3", "us", runs);
        progress(&format!(
            "{:<32} median {:.1} us (mad {:.1})",
            sample.name, sample.median, sample.mad
        ));
        results.push(sample);
    }

    // -- Serve: the batched evaluator over reusable scratch --------------
    if wants(config, "serve.eval_batch.R5.T200.F3") {
        let mut scratch = ServeScratch::new();
        // Warmup passes excluded from samples (see propagation.predict).
        for _ in 0..2 {
            std::hint::black_box(evaluate_batch(&plan, &db, &rows, &mut scratch));
        }
        let mut runs = Vec::with_capacity(config.samples);
        for _ in 0..config.samples {
            let start = Instant::now();
            let labels = evaluate_batch(&plan, &db, &rows, &mut scratch);
            runs.push(start.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(labels.len());
        }
        let sample = sample_from("serve.eval_batch.R5.T200.F3", "us", runs);
        progress(&format!(
            "{:<32} median {:.1} us (mad {:.1})",
            sample.name, sample.median, sample.mad
        ));
        results.push(sample);
    }

    // -- Serve: end-to-end request latency under the micro-batcher -------
    let want_p50 = wants(config, "serve.latency_p50");
    let want_p99 = wants(config, "serve.latency_p99");
    if want_p50 || want_p99 {
        let mut p50_runs = Vec::with_capacity(config.samples);
        let mut p99_runs = Vec::with_capacity(config.samples);
        for _ in 0..config.samples {
            let registry = Arc::new(ModelRegistry::new(plan.clone()));
            let server = PredictionServer::start(
                Arc::clone(&db),
                registry,
                ServerConfig::builder()
                    .chaos(config.chaos.clone())
                    .build()
                    .expect("default server config is valid"),
            )
            .expect("default server config is valid");
            // Warm the fresh server (thread spin-up, first-batch plan
            // touch) before measuring.
            for i in 0..(config.serve_requests / 10).clamp(8, 64) {
                let row = rows[i % rows.len()];
                server.predict(row).expect("serve warmup runs without panics or deadlines");
            }
            let mut latencies_us = Vec::with_capacity(config.serve_requests);
            for i in 0..config.serve_requests {
                let row = rows[i % rows.len()];
                let start = Instant::now();
                server.predict(row).expect("serve bench runs without panics or deadlines");
                latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            }
            server.shutdown();
            // Exact client-side quantiles — deliberately NOT the server's
            // log2-bucketed histogram, whose bucket bounds quantize medians
            // too coarsely (2x steps) for a 15 % gate.
            latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let q = |f: f64| {
                let idx = ((latencies_us.len() - 1) as f64 * f).round() as usize;
                latencies_us[idx]
            };
            p50_runs.push(q(0.50));
            p99_runs.push(q(0.99));
        }
        if want_p50 {
            let sample = sample_from("serve.latency_p50", "us", p50_runs);
            progress(&format!(
                "{:<32} median {:.1} us (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        }
        if want_p99 {
            let sample = sample_from("serve.latency_p99", "us", p99_runs);
            progress(&format!(
                "{:<32} median {:.1} us (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        }
    }

    // -- Serve: the same end-to-end latency with the continuous profiler
    // on at production defaults (97 Hz wall sampler, allocation tracking,
    // lock-wait timers). Pinned in the baseline so profiler overhead
    // regressions gate like any other slowdown; the enabled-vs-disabled
    // <5% budget itself is proven by the `profile_overhead` binary.
    let want_prof_p50 = wants(config, "serve.latency_p50.profiled");
    let want_prof_p99 = wants(config, "serve.latency_p99.profiled");
    if want_prof_p50 || want_prof_p99 {
        let mut p50_runs = Vec::with_capacity(config.samples);
        let mut p99_runs = Vec::with_capacity(config.samples);
        for _ in 0..config.samples {
            let profiler = crossmine_obs::Profiler::enabled();
            let registry = Arc::new(ModelRegistry::new(plan.clone()));
            let server = PredictionServer::start(
                Arc::clone(&db),
                registry,
                ServerConfig::builder()
                    .chaos(config.chaos.clone())
                    .profiler(profiler)
                    .build()
                    .expect("default server config is valid"),
            )
            .expect("default server config is valid");
            for i in 0..(config.serve_requests / 10).clamp(8, 64) {
                let row = rows[i % rows.len()];
                server.predict(row).expect("serve warmup runs without panics or deadlines");
            }
            let mut latencies_us = Vec::with_capacity(config.serve_requests);
            for i in 0..config.serve_requests {
                let row = rows[i % rows.len()];
                let start = Instant::now();
                server.predict(row).expect("serve bench runs without panics or deadlines");
                latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            }
            server.shutdown();
            latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let q = |f: f64| {
                let idx = ((latencies_us.len() - 1) as f64 * f).round() as usize;
                latencies_us[idx]
            };
            p50_runs.push(q(0.50));
            p99_runs.push(q(0.99));
        }
        if want_prof_p50 {
            let sample = sample_from("serve.latency_p50.profiled", "us", p50_runs);
            progress(&format!(
                "{:<32} median {:.1} us (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        }
        if want_prof_p99 {
            let sample = sample_from("serve.latency_p99.profiled", "us", p99_runs);
            progress(&format!(
                "{:<32} median {:.1} us (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        }
    }

    // -- Net: socket-to-socket latency over each wire protocol -----------
    // Same server, same model, but the request crosses the crossmine-net
    // front end over real TCP: sniff, parse/decode, admission, scoring,
    // encode, write. One keep-alive connection, one row per request —
    // the closest wire analog of `serve.latency_*`.
    for proto in [NetProto::Http, NetProto::Binary] {
        let p50_name = format!("net.{}_p50", proto.name());
        let p99_name = format!("net.{}_p99", proto.name());
        let want_p50 = wants(config, &p50_name);
        let want_p99 = wants(config, &p99_name);
        if !want_p50 && !want_p99 {
            continue;
        }
        let mut p50_runs = Vec::with_capacity(config.samples);
        let mut p99_runs = Vec::with_capacity(config.samples);
        for _ in 0..config.samples {
            let registry = Arc::new(ModelRegistry::new(plan.clone()));
            let server = PredictionServer::start(
                Arc::clone(&db),
                registry,
                ServerConfig::builder()
                    .chaos(config.chaos.clone())
                    .net(NetConfig::default())
                    .build()
                    .expect("default server config with net is valid"),
            )
            .expect("default server config with net is valid");
            let addr = server.net_addr().expect("net was configured");
            let mut client =
                NetClient::connect(addr, proto).expect("bench client connects to the front end");
            // Warm the server threads, the connection, and the sniffed
            // protocol before measuring.
            for i in 0..(config.serve_requests / 10).clamp(8, 64) {
                let row = rows[i % rows.len()].0;
                let reply = client.request(&[row], None).expect("net bench warmup");
                assert_eq!(reply.status, 200, "warmup must not shed: one serial client");
            }
            let mut latencies_us = Vec::with_capacity(config.serve_requests);
            for i in 0..config.serve_requests {
                let row = rows[i % rows.len()].0;
                let start = Instant::now();
                let reply = client.request(&[row], None).expect("net bench request");
                latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                assert_eq!(reply.status, 200, "bench must not shed: one serial client");
                std::hint::black_box(reply.labels.len());
            }
            drop(client);
            server.shutdown();
            latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let q = |f: f64| {
                let idx = ((latencies_us.len() - 1) as f64 * f).round() as usize;
                latencies_us[idx]
            };
            p50_runs.push(q(0.50));
            p99_runs.push(q(0.99));
        }
        for (want, name, runs) in [(want_p50, &p50_name, p50_runs), (want_p99, &p99_name, p99_runs)]
        {
            if !want {
                continue;
            }
            let sample = sample_from(name, "us", runs);
            progress(&format!(
                "{:<32} median {:.1} us (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        }
    }

    // -- Shard: router predict latency across shard counts ----------------
    // The same one-row predict as `serve.latency_*`, but through a
    // ShardRouter — S1 prices the routing layer itself against the single
    // server, S2/S4 price the shared-nothing scatter. One serial client,
    // so these measure per-request latency, not parallel throughput.
    for shards in [1usize, 2, 4] {
        let p50_name = format!("shard.latency_p50.S{shards}");
        let p99_name = format!("shard.latency_p99.S{shards}");
        let want_p50 = wants(config, &p50_name);
        let want_p99 = wants(config, &p99_name);
        if !want_p50 && !want_p99 {
            continue;
        }
        let mut p50_runs = Vec::with_capacity(config.samples);
        let mut p99_runs = Vec::with_capacity(config.samples);
        for _ in 0..config.samples {
            let router = ShardRouter::start(
                Arc::clone(&db),
                &plan,
                ServerConfig::builder()
                    .chaos(config.chaos.clone())
                    .shards(shards)
                    .build()
                    .expect("default sharded config is valid"),
            )
            .expect("default sharded config is valid");
            // Warm every shard's workers before measuring.
            for i in 0..(config.serve_requests / 10).clamp(8, 64) {
                let row = rows[i % rows.len()];
                router.predict(row).expect("shard bench warmup runs clean");
            }
            let mut latencies_us = Vec::with_capacity(config.serve_requests);
            for i in 0..config.serve_requests {
                let row = rows[i % rows.len()];
                let start = Instant::now();
                router.predict(row).expect("shard bench runs clean");
                latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            }
            router.shutdown();
            latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let q = |f: f64| {
                let idx = ((latencies_us.len() - 1) as f64 * f).round() as usize;
                latencies_us[idx]
            };
            p50_runs.push(q(0.50));
            p99_runs.push(q(0.99));
        }
        for (want, name, runs) in [(want_p50, &p50_name, p50_runs), (want_p99, &p99_name, p99_runs)]
        {
            if !want {
                continue;
            }
            let sample = sample_from(name, "us", runs);
            progress(&format!(
                "{:<32} median {:.1} us (mad {:.1})",
                sample.name, sample.median, sample.mad
            ));
            results.push(sample);
        }
    }

    BenchReport {
        schema_version: SCHEMA_VERSION,
        fingerprint: Fingerprint::current(),
        smoke: config.smoke,
        samples_per_bench: config.samples,
        results,
    }
}

/// Gate a fresh report against a committed baseline.
///
/// Compares the intersection of benchmark names; each fails when
/// `new_median > base_median × 1.15 + 3 × band`, where `band` is the
/// baseline MAD — widened to [`TAIL_NOISE_FLOOR`] × median for `_p99`
/// benchmarks, whose order-statistic jitter a quiet pin underestimates. A
/// fingerprint mismatch keeps the comparisons but [`GateOutcome::failed`]
/// stays `false` — foreign absolute times only warn.
pub fn check(baseline: &BenchReport, current: &BenchReport) -> GateOutcome {
    let fingerprint_match = baseline.fingerprint == current.fingerprint;
    let mut comparisons = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.results {
        match current.results.iter().find(|s| s.name == base.name) {
            None => missing.push(base.name.clone()),
            Some(cur) => {
                let band = if is_tail_bench(&base.name) {
                    base.mad.max(TAIL_NOISE_FLOOR * base.median)
                } else {
                    base.mad
                };
                let threshold = base.median * REGRESSION_FACTOR + NOISE_BANDS * band;
                let ratio =
                    if base.median > 0.0 { cur.median / base.median } else { f64::INFINITY };
                comparisons.push(Comparison {
                    name: base.name.clone(),
                    base_median: base.median,
                    base_mad: base.mad,
                    new_median: cur.median,
                    ratio,
                    regressed: cur.median > threshold,
                });
            }
        }
    }
    GateOutcome { comparisons, fingerprint_match, missing }
}

// ---------------------------------------------------------------------
// JSON (de)serialization
// ---------------------------------------------------------------------

/// Why a baseline document could not be loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// The document is not valid JSON.
    Parse(String),
    /// The document parses but does not match the report schema.
    Schema(String),
    /// The document's `schema_version` is one this build cannot read.
    Version(u64),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Parse(e) => write!(f, "invalid JSON: {e}"),
            ReportError::Schema(e) => write!(f, "schema mismatch: {e}"),
            ReportError::Version(v) => {
                write!(f, "unsupported schema_version {v} (this build reads {SCHEMA_VERSION})")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl BenchReport {
    /// Serialize to the pretty, committed `BENCH_crossmine.json` form.
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("unit".into(), Json::Str(s.unit.clone())),
                    ("median".into(), Json::Num(s.median)),
                    ("mad".into(), Json::Num(s.mad)),
                    (
                        "samples".into(),
                        Json::Arr(s.samples.iter().map(|&v| Json::Num(v)).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(self.schema_version as f64)),
            (
                "fingerprint".into(),
                Json::Obj(vec![
                    ("arch".into(), Json::Str(self.fingerprint.arch.clone())),
                    ("os".into(), Json::Str(self.fingerprint.os.clone())),
                    ("parallelism".into(), Json::Num(self.fingerprint.parallelism as f64)),
                ]),
            ),
            ("smoke".into(), Json::Bool(self.smoke)),
            ("samples_per_bench".into(), Json::Num(self.samples_per_bench as f64)),
            ("results".into(), Json::Arr(results)),
        ])
        .render_pretty()
    }

    /// Parse a document produced by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let doc = Json::parse(text).map_err(|e| ReportError::Parse(e.to_string()))?;
        let field = |name: &str| {
            doc.get(name).ok_or_else(|| ReportError::Schema(format!("missing field '{name}'")))
        };
        let version = field("schema_version")?
            .as_u64()
            .ok_or_else(|| ReportError::Schema("schema_version must be an integer".into()))?;
        if version != SCHEMA_VERSION {
            return Err(ReportError::Version(version));
        }
        let fp = field("fingerprint")?;
        let fp_str = |name: &str| {
            fp.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ReportError::Schema(format!("fingerprint.{name} must be a string")))
        };
        let fingerprint = Fingerprint {
            arch: fp_str("arch")?,
            os: fp_str("os")?,
            parallelism: fp
                .get("parallelism")
                .and_then(Json::as_u64)
                .ok_or_else(|| ReportError::Schema("fingerprint.parallelism".into()))?,
        };
        let mut results = Vec::new();
        for entry in field("results")?
            .as_arr()
            .ok_or_else(|| ReportError::Schema("results must be an array".into()))?
        {
            let str_of =
                |name: &str| {
                    entry.get(name).and_then(Json::as_str).map(str::to_string).ok_or_else(|| {
                        ReportError::Schema(format!("result.{name} must be a string"))
                    })
                };
            let num_of = |name: &str| {
                entry
                    .get(name)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ReportError::Schema(format!("result.{name} must be a number")))
            };
            let samples = entry
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or_else(|| ReportError::Schema("result.samples must be an array".into()))?
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| ReportError::Schema("samples must be numbers".into()))
                })
                .collect::<Result<Vec<f64>, _>>()?;
            results.push(BenchSample {
                name: str_of("name")?,
                unit: str_of("unit")?,
                median: num_of("median")?,
                mad: num_of("mad")?,
                samples,
            });
        }
        Ok(BenchReport {
            schema_version: version,
            fingerprint,
            smoke: field("smoke")?
                .as_bool()
                .ok_or_else(|| ReportError::Schema("smoke must be a bool".into()))?,
            samples_per_bench: field("samples_per_bench")?
                .as_u64()
                .ok_or_else(|| ReportError::Schema("samples_per_bench".into()))?
                as usize,
            results,
        })
    }
}

/// A stall long enough to dominate any single-request serve latency on
/// any plausible machine — used by tests and docs to demonstrate the gate.
pub fn slowdown_chaos() -> ChaosConfig {
    ChaosConfig { stall_every: 1, stall_for: Duration::from_millis(5), ..ChaosConfig::off() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(samples: Vec<BenchSample>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            fingerprint: Fingerprint::current(),
            smoke: false,
            samples_per_bench: 5,
            results: samples,
        }
    }

    fn bench(name: &str, median: f64, mad: f64) -> BenchSample {
        BenchSample { name: name.into(), unit: "us".into(), median, mad, samples: vec![median] }
    }

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 3.0, 100.0]), 1.0);
    }

    #[test]
    fn threshold_rule_is_exact() {
        // base 100, mad 2 → threshold 100*1.15 + 3*2 ≈ 121 (up to f64
        // rounding of 1.15 — probe either side with clear margins).
        let base = report_with(vec![bench("x", 100.0, 2.0)]);
        let pass = report_with(vec![bench("x", 120.9, 0.0)]);
        assert!(!check(&base, &pass).failed(), "below the threshold is not a regression");
        let fail = report_with(vec![bench("x", 121.1, 0.0)]);
        let outcome = check(&base, &fail);
        assert!(outcome.failed());
        assert_eq!(outcome.regressions().count(), 1);
    }

    #[test]
    fn tail_benches_gate_with_the_noise_floor() {
        // A p99 pinned with an unrealistically tight MAD: the floor is
        // 15% of the median, so the band is 3 × 90 on a 600 base →
        // threshold 600*1.15 + 270 = 960. A 35%-slower tail (jitter on a
        // small box) passes; the same ratio on a non-tail name fails.
        let base = report_with(vec![
            bench("serve.latency_p99", 600.0, 5.0),
            bench("serve.latency_p50", 600.0, 5.0),
        ]);
        let current = report_with(vec![
            bench("serve.latency_p99", 810.0, 0.0),
            bench("serve.latency_p50", 810.0, 0.0),
        ]);
        let outcome = check(&base, &current);
        let regressed: Vec<_> = outcome.regressions().map(|c| c.name.as_str()).collect();
        assert_eq!(regressed, vec!["serve.latency_p50"], "only the median bench trips");
        // A sustained 2x tail regression still blows past the widened band.
        let doubled = report_with(vec![
            bench("serve.latency_p99", 1200.0, 0.0),
            bench("serve.latency_p50", 600.0, 0.0),
        ]);
        assert!(check(&base, &doubled).regressions().any(|c| c.name == "serve.latency_p99"));
    }

    #[test]
    fn foreign_fingerprint_downgrades_to_warning() {
        let base = BenchReport {
            fingerprint: Fingerprint {
                arch: "quantum9000".into(),
                os: "templeos".into(),
                parallelism: 512,
            },
            ..report_with(vec![bench("x", 1.0, 0.0)])
        };
        let current = report_with(vec![bench("x", 1000.0, 0.0)]);
        let outcome = check(&base, &current);
        assert!(!outcome.fingerprint_match);
        assert_eq!(outcome.regressions().count(), 1, "comparison still reported");
        assert!(!outcome.failed(), "foreign baselines only warn");
        assert!(outcome.render().contains("warning only"));
    }

    #[test]
    fn missing_names_are_reported_not_failed() {
        let base = report_with(vec![bench("kept", 10.0, 0.0), bench("skipped", 10.0, 0.0)]);
        let current = report_with(vec![bench("kept", 10.0, 0.0)]);
        let outcome = check(&base, &current);
        assert!(!outcome.failed());
        assert_eq!(outcome.missing, vec!["skipped".to_string()]);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = report_with(vec![
            BenchSample {
                name: "learner.fit.R5.T200.F3".into(),
                unit: "ms".into(),
                median: 123.456,
                mad: 1.25,
                samples: vec![122.0, 123.456, 125.5],
            },
            bench("serve.latency_p99", 850.0, 40.0),
        ]);
        let text = report.to_json();
        let parsed = BenchReport::from_json(&text).expect("roundtrip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn version_and_schema_errors_are_typed() {
        let mut report = report_with(vec![]);
        report.schema_version = 999;
        // to_json writes whatever version the struct carries…
        let text = report.to_json();
        // …and from_json rejects versions it cannot read.
        assert_eq!(BenchReport::from_json(&text), Err(ReportError::Version(999)));
        assert!(matches!(BenchReport::from_json("{}"), Err(ReportError::Schema(_))));
        assert!(matches!(BenchReport::from_json("not json"), Err(ReportError::Parse(_))));
    }
}
