//! # crossmine-bench
//!
//! The experiment harness regenerating every table and figure of the
//! CrossMine paper's evaluation (§7), plus shared helpers for the Criterion
//! benches.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p crossmine-bench --bin experiments -- all
//! cargo run --release -p crossmine-bench --bin experiments -- fig9 --full
//! ```
//!
//! By default experiments run at *scaled* sizes (minutes, not the paper's
//! 10-hour cutoffs); `--full` uses the paper's parameters. Absolute times
//! differ from the 2004 hardware — the claims under test are the shapes:
//! who wins, by roughly what factor, and how runtimes grow along each
//! parameter sweep.

#![warn(missing_docs)]

pub mod json;
pub mod net_client;
pub mod suite;

use std::time::Duration;

use crossmine_baselines::common::CandidateSpace;
use crossmine_baselines::{Foil, FoilParams, Tilde, TildeParams};
use crossmine_core::{cross_validate, CrossMine, CrossMineParams, RelationalClassifier};
use crossmine_datasets::{FinancialConfig, MutagenesisConfig};
use crossmine_relational::Database;
use crossmine_synth::GenParams;

/// One row of an experiment's output table.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// The x-axis label (`R50.T500.F2`, `financial`, ...).
    pub workload: String,
    /// The approach measured.
    pub approach: String,
    /// Mean cross-validated accuracy.
    pub accuracy: f64,
    /// Mean per-fold runtime (train + predict), as the paper reports.
    pub runtime: Duration,
    /// Number of folds actually executed.
    pub folds: usize,
}

/// Global knobs of a harness run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Use the paper's full sizes instead of the scaled defaults.
    pub full: bool,
    /// Per-fold timeout for the join-based baselines (the paper stops
    /// experiments "much greater than 10 hours").
    pub timeout: Duration,
    /// RNG seed for database generation and fold assignment.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { full: false, timeout: Duration::from_secs(300), seed: 1 }
    }
}

/// The approaches compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// CrossMine with the paper's default parameters.
    CrossMine,
    /// CrossMine with negative-tuple sampling (§6).
    CrossMineSampling,
    /// FOIL over physically materialized joins.
    Foil,
    /// TILDE logical decision trees.
    Tilde,
}

impl Approach {
    /// Display name used in the output tables.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::CrossMine => "CrossMine",
            Approach::CrossMineSampling => "CrossMine+sampling",
            Approach::Foil => "FOIL",
            Approach::Tilde => "TILDE",
        }
    }
}

fn classifier(approach: Approach, timeout: Duration) -> Box<dyn RelationalClassifier> {
    match approach {
        Approach::CrossMine => Box::new(CrossMine::default()),
        Approach::CrossMineSampling => Box::new(CrossMine::new(CrossMineParams::with_sampling())),
        Approach::Foil => {
            Box::new(Foil::new(FoilParams { timeout: Some(timeout), ..Default::default() }))
        }
        Approach::Tilde => {
            Box::new(Tilde::new(TildeParams { timeout: Some(timeout), ..Default::default() }))
        }
    }
}

/// Runs `approach` on `db` with `folds` of 10-fold CV (the paper runs only
/// the first fold of slow algorithms).
pub fn measure(
    db: &Database,
    workload: &str,
    approach: Approach,
    folds: usize,
    config: &HarnessConfig,
) -> ExperimentRow {
    let clf = classifier(approach, config.timeout);
    let result = cross_validate(&clf, db, 10, config.seed, folds);
    ExperimentRow {
        workload: workload.to_string(),
        approach: approach.name().to_string(),
        accuracy: result.mean_accuracy(),
        runtime: result.mean_time(),
        folds: result.fold_accuracies.len(),
    }
}

/// Figure 9: scalability w.r.t. the number of relations (`Rx.T500.F2`).
pub fn fig9(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let (relations, tuples): (Vec<usize>, usize) =
        if config.full { (vec![10, 20, 50, 100, 200], 500) } else { (vec![10, 20, 50], 300) };
    let mut rows = Vec::new();
    for r in relations {
        let params = GenParams {
            num_relations: r,
            expected_tuples: tuples,
            seed: config.seed,
            ..Default::default()
        };
        let db = crossmine_synth::generate(&params);
        let name = params.name();
        let cm_folds = 2;
        rows.push(measure(&db, &name, Approach::CrossMine, cm_folds, config));
        rows.push(measure(&db, &name, Approach::Foil, 1, config));
        rows.push(measure(&db, &name, Approach::Tilde, 1, config));
    }
    rows
}

/// Figure 10: scalability w.r.t. tuples per relation (`R20.Tx.F2`),
/// including CrossMine with negative sampling.
pub fn fig10(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let tuples: Vec<usize> =
        if config.full { vec![200, 500, 1000, 2000, 5000] } else { vec![200, 500, 1000] };
    let mut rows = Vec::new();
    for t in tuples {
        let params = GenParams {
            num_relations: 20,
            expected_tuples: t,
            seed: config.seed,
            ..Default::default()
        };
        let db = crossmine_synth::generate(&params);
        let name = params.name();
        let cm_folds = 2;
        rows.push(measure(&db, &name, Approach::CrossMine, cm_folds, config));
        rows.push(measure(&db, &name, Approach::CrossMineSampling, cm_folds, config));
        rows.push(measure(&db, &name, Approach::Foil, 1, config));
        rows.push(measure(&db, &name, Approach::Tilde, 1, config));
    }
    rows
}

/// Figure 11: CrossMine (with sampling) alone on large databases — up to
/// 2 M tuples (`R20.T100000.F2`) at full scale.
pub fn fig11(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let tuples: Vec<usize> = if config.full {
        vec![200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000]
    } else {
        vec![200, 1000, 5000, 20_000]
    };
    let mut rows = Vec::new();
    for t in tuples {
        let params = GenParams {
            num_relations: 20,
            expected_tuples: t,
            seed: config.seed,
            ..Default::default()
        };
        let db = crossmine_synth::generate(&params);
        let name = params.name();
        rows.push(measure(&db, &name, Approach::CrossMineSampling, 1, config));
    }
    rows
}

/// Figure 12: scalability w.r.t. foreign keys per relation (`R20.T500.Fx`).
pub fn fig12(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let fks: Vec<usize> = vec![1, 2, 3, 4, 5];
    let tuples = if config.full { 500 } else { 300 };
    let mut rows = Vec::new();
    for f in fks {
        let params = GenParams {
            num_relations: 20,
            expected_tuples: tuples,
            expected_foreign_keys: f,
            seed: config.seed,
            ..Default::default()
        };
        let db = crossmine_synth::generate(&params);
        let name = params.name();
        let cm_folds = 2;
        rows.push(measure(&db, &name, Approach::CrossMine, cm_folds, config));
        rows.push(measure(&db, &name, Approach::Foil, 1, config));
        rows.push(measure(&db, &name, Approach::Tilde, 1, config));
    }
    rows
}

/// Table 2: the financial database (10-fold).
pub fn table2(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let db = crossmine_datasets::generate_financial(&if config.full {
        FinancialConfig::default()
    } else {
        FinancialConfig::small()
    });
    let name = "financial";
    let baseline_folds = if config.full { 10 } else { 1 };
    vec![
        measure(&db, name, Approach::CrossMine, 10, config),
        measure(&db, name, Approach::CrossMineSampling, 10, config),
        measure(&db, name, Approach::Foil, baseline_folds, config),
        measure(&db, name, Approach::Tilde, baseline_folds, config),
    ]
}

/// Table 3: the Mutagenesis database (10-fold).
pub fn table3(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let db = crossmine_datasets::generate_mutagenesis(&MutagenesisConfig::default());
    let name = "mutagenesis";
    let baseline_folds = if config.full { 10 } else { 3 };
    vec![
        measure(&db, name, Approach::CrossMine, 10, config),
        measure(&db, name, Approach::Foil, baseline_folds, config),
        measure(&db, name, Approach::Tilde, baseline_folds, config),
    ]
}

/// Ablations of CrossMine's design choices on a mid-size synthetic database
/// and the financial database: look-one-ahead, aggregation literals, the
/// fan-out constraint, and negative sampling.
pub fn ablations(config: &HarnessConfig) -> Vec<ExperimentRow> {
    let variants: Vec<(&str, CrossMineParams)> = vec![
        ("full", CrossMineParams::default()),
        ("no look-one-ahead", CrossMineParams::builder().look_one_ahead(false).build().unwrap()),
        ("no aggregation", CrossMineParams::builder().aggregation_literals(false).build().unwrap()),
        ("no fan-out limit", CrossMineParams::builder().max_fanout(None).build().unwrap()),
        ("with sampling", CrossMineParams::with_sampling()),
    ];
    let synth_params = GenParams {
        num_relations: 20,
        expected_tuples: if config.full { 500 } else { 300 },
        seed: config.seed,
        ..Default::default()
    };
    let synth_db = crossmine_synth::generate(&synth_params);
    let fin_db = crossmine_datasets::generate_financial(&if config.full {
        FinancialConfig::default()
    } else {
        FinancialConfig::small()
    });
    let mut rows = Vec::new();
    for (db, workload, folds) in
        [(&synth_db, synth_params.name(), 3), (&fin_db, "financial".to_string(), 10)]
    {
        for (name, params) in &variants {
            let clf = CrossMine::new(params.clone());
            let result = cross_validate(&clf, db, 10, config.seed, folds);
            rows.push(ExperimentRow {
                workload: workload.clone(),
                approach: format!("CrossMine {name}"),
                accuracy: result.mean_accuracy(),
                runtime: result.mean_time(),
                folds: result.fold_accuracies.len(),
            });
        }
        // Baseline candidate-space ablation: what schema knowledge is worth
        // to the join-based learners (historical untyped keys vs the §3.1
        // join graph).
        for (name, space) in [
            ("FOIL untyped keys", CandidateSpace::UntypedKeys),
            ("FOIL schema joins", CandidateSpace::SchemaJoins),
        ] {
            let clf = Foil::new(FoilParams {
                timeout: Some(config.timeout),
                space,
                ..Default::default()
            });
            let result = cross_validate(&clf, db, 10, config.seed, 1);
            rows.push(ExperimentRow {
                workload: workload.clone(),
                approach: name.to_string(),
                accuracy: result.mean_accuracy(),
                runtime: result.mean_time(),
                folds: result.fold_accuracies.len(),
            });
        }
    }
    rows
}

/// Client-side retry discipline for the prediction server's typed
/// admission errors.
///
/// The server never blocks a submitter: under overload it sheds with
/// [`ServeError::Overloaded`], and post-admission degradations surface
/// from [`PredictionHandle::wait`]. A well-behaved client therefore
/// retries *retryable* errors with exponential backoff (so a shedding
/// server gets room to drain) and propagates the rest.
///
/// [`ServeError::Overloaded`]: crossmine_serve::ServeError::Overloaded
/// [`PredictionHandle::wait`]: crossmine_serve::PredictionHandle::wait
pub mod serve_client {
    use std::time::Duration;

    use crossmine_relational::Row;
    use crossmine_serve::{PredictionHandle, PredictionServer, ServeError};

    /// Backoff ceiling: long enough for a stalled worker to clear a batch,
    /// short enough to not dominate smoke-test latency.
    const MAX_BACKOFF: Duration = Duration::from_millis(5);

    /// Runs `attempt` until it succeeds, fails with a non-retryable error,
    /// or exhausts `max_retries` retries; sleeps with doubling backoff
    /// (starting at `base_backoff`, capped at 5 ms) between attempts.
    pub fn retry_with_backoff<T>(
        mut attempt: impl FnMut() -> Result<T, ServeError>,
        max_retries: usize,
        base_backoff: Duration,
    ) -> Result<T, ServeError> {
        let mut backoff = base_backoff;
        let mut retries = 0;
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && retries < max_retries => {
                    retries += 1;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(MAX_BACKOFF);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Single-row admission ([`crossmine_serve::ServeRequest`]) with
    /// shed-aware retry: re-submits on `Overloaded` (backing off each
    /// time) up to `max_retries` times.
    pub fn submit_with_retry(
        server: &PredictionServer,
        row: Row,
        max_retries: usize,
    ) -> Result<PredictionHandle, ServeError> {
        use crossmine_serve::ServeRequest;
        retry_with_backoff(
            || server.serve(ServeRequest::row(row)).map(|mut h| h.pop().expect("one handle")),
            max_retries,
            Duration::from_micros(50),
        )
    }
}

/// Renders rows as an aligned text table.
pub fn render(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<16} {:<20} {:>9} {:>14} {:>6}\n",
        "workload", "approach", "accuracy", "runtime", "folds"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<20} {:>8.1}% {:>14} {:>6}\n",
            r.workload,
            r.approach,
            100.0 * r.accuracy,
            format!("{:.3?}", r.runtime),
            r.folds,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_names() {
        assert_eq!(Approach::CrossMine.name(), "CrossMine");
        assert_eq!(Approach::CrossMineSampling.name(), "CrossMine+sampling");
    }

    #[test]
    fn measure_runs_a_tiny_experiment() {
        let params = GenParams {
            num_relations: 4,
            expected_tuples: 60,
            min_tuples: 20,
            seed: 5,
            ..Default::default()
        };
        let db = crossmine_synth::generate(&params);
        let config = HarnessConfig::default();
        let row = measure(&db, &params.name(), Approach::CrossMine, 1, &config);
        assert_eq!(row.folds, 1);
        assert!(row.accuracy >= 0.0 && row.accuracy <= 1.0);
        assert_eq!(row.workload, "R4.T60.F2");
    }

    #[test]
    fn retry_with_backoff_retries_transient_and_stops_on_fatal() {
        use crossmine_serve::ServeError;
        use serve_client::retry_with_backoff;

        // Succeeds on the third attempt.
        let mut calls = 0;
        let r = retry_with_backoff(
            || {
                calls += 1;
                if calls < 3 {
                    Err(ServeError::Overloaded { queue_depth: 1, capacity: 1 })
                } else {
                    Ok(calls)
                }
            },
            5,
            Duration::from_micros(1),
        );
        assert_eq!(r, Ok(3));

        // Non-retryable errors propagate immediately.
        let mut calls = 0;
        let r: Result<(), _> = retry_with_backoff(
            || {
                calls += 1;
                Err(ServeError::ShuttingDown)
            },
            5,
            Duration::from_micros(1),
        );
        assert_eq!(r, Err(ServeError::ShuttingDown));
        assert_eq!(calls, 1);

        // Retry budget is honored: max_retries = 2 means 3 attempts total.
        let mut calls = 0;
        let r: Result<(), _> = retry_with_backoff(
            || {
                calls += 1;
                Err(ServeError::WorkerPanicked)
            },
            2,
            Duration::from_micros(1),
        );
        assert_eq!(r, Err(ServeError::WorkerPanicked));
        assert_eq!(calls, 3);
    }

    #[test]
    fn render_formats_rows() {
        let rows = vec![ExperimentRow {
            workload: "R10.T500.F2".into(),
            approach: "CrossMine".into(),
            accuracy: 0.9123,
            runtime: Duration::from_millis(1234),
            folds: 10,
        }];
        let s = render("Figure 9", &rows);
        assert!(s.contains("Figure 9"));
        assert!(s.contains("91.2%"));
        assert!(s.contains("R10.T500.F2"));
    }
}
