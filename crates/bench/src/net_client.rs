//! Blocking socket client for the `crossmine-net` wire front end, shared
//! by `loadgen --net` and the socket-path benches in the regression
//! suite.
//!
//! One [`NetClient`] owns one keep-alive TCP connection speaking either
//! wire protocol ([`NetProto`]); [`NetClient::pipelined`] writes a window
//! of requests back-to-back before reading any reply, exercising the
//! server's pipelining path. The client is deliberately simple and
//! blocking — the nonblocking complexity under test lives on the server
//! side.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crossmine_net::frame::{decode_response, encode_request};
use crossmine_net::http::format_predict_request;

/// Which wire protocol this connection speaks. Both run on the same
/// port; the server sniffs the first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetProto {
    /// `POST /predict` with a JSON body, HTTP/1.1 keep-alive.
    Http,
    /// Length-prefixed binary frames.
    Binary,
}

impl NetProto {
    /// Display name used in bench output.
    pub fn name(&self) -> &'static str {
        match self {
            NetProto::Http => "http",
            NetProto::Binary => "binary",
        }
    }
}

/// One decoded wire reply, protocol-independent.
#[derive(Debug, Clone)]
pub struct WireReply {
    /// HTTP status code / binary status field (200 on success).
    pub status: u16,
    /// Retry hint in seconds, present exactly on retryable failures.
    pub retry_after_s: Option<u16>,
    /// Model epoch the batch was scored under (0 on failure).
    pub epoch: u64,
    /// One label per submitted row (empty on failure).
    pub labels: Vec<u32>,
}

impl WireReply {
    /// True for statuses the client should back off and resend.
    pub fn is_retryable(&self) -> bool {
        self.retry_after_s.is_some()
    }
}

/// One keep-alive connection to the wire front end.
pub struct NetClient {
    stream: TcpStream,
    proto: NetProto,
    rbuf: Vec<u8>,
    next_id: u64,
}

impl NetClient {
    /// Connects and fixes the protocol this connection will speak.
    pub fn connect(addr: SocketAddr, proto: NetProto) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(NetClient { stream, proto, rbuf: Vec::new(), next_id: 1 })
    }

    /// The protocol this connection speaks.
    pub fn proto(&self) -> NetProto {
        self.proto
    }

    /// One request, one reply.
    pub fn request(&mut self, rows: &[u32], deadline_ms: Option<u64>) -> io::Result<WireReply> {
        let mut replies = self.pipelined(&[rows], deadline_ms)?;
        Ok(replies.pop().expect("one request yields one reply"))
    }

    /// Writes every batch back-to-back, then reads the replies in order
    /// — the pipelining pattern the server must answer in FIFO order.
    pub fn pipelined(
        &mut self,
        batches: &[&[u32]],
        deadline_ms: Option<u64>,
    ) -> io::Result<Vec<WireReply>> {
        let mut wire = Vec::new();
        for rows in batches {
            match self.proto {
                NetProto::Http => {
                    wire.extend_from_slice(&format_predict_request(rows, deadline_ms, true));
                }
                NetProto::Binary => {
                    encode_request(self.next_id, deadline_ms, rows, &mut wire);
                    self.next_id += 1;
                }
            }
        }
        self.stream.write_all(&wire)?;
        let mut replies = Vec::with_capacity(batches.len());
        for _ in batches {
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }

    /// Blocks until one full reply is buffered, then decodes it.
    fn read_reply(&mut self) -> io::Result<WireReply> {
        loop {
            if let Some((reply, consumed)) = self.try_decode()? {
                self.rbuf.drain(..consumed);
                return Ok(reply);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-reply",
                ));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    fn try_decode(&self) -> io::Result<Option<(WireReply, usize)>> {
        match self.proto {
            NetProto::Binary => match decode_response(&self.rbuf, 1 << 24) {
                Ok(Some((frame, consumed))) => {
                    let retry = (frame.retry_after_s > 0).then_some(frame.retry_after_s);
                    Ok(Some((
                        WireReply {
                            status: frame.status,
                            retry_after_s: retry,
                            epoch: frame.epoch,
                            labels: frame.labels,
                        },
                        consumed,
                    )))
                }
                Ok(None) => Ok(None),
                Err(e) => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad binary reply: {e:?}"),
                )),
            },
            NetProto::Http => parse_http_reply(&self.rbuf),
        }
    }
}

/// Parses one buffered HTTP/1.1 response; `Ok(None)` means incomplete.
fn parse_http_reply(buf: &[u8]) -> io::Result<Option<(WireReply, usize)>> {
    let Some(head_end) = find_crlf_crlf(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut retry_after_s = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after_s = value.parse().ok();
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = &buf[body_start..body_start + content_length];
    let body = std::str::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    let reply = WireReply {
        status,
        retry_after_s,
        epoch: extract_u64(body, "\"epoch\":").unwrap_or(0),
        labels: extract_labels(body),
    };
    Ok(Some((reply, body_start + content_length)))
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn extract_u64(body: &str, key: &str) -> Option<u64> {
    let rest = &body[body.find(key)? + key.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_labels(body: &str) -> Vec<u32> {
    let Some(start) = body.find("\"labels\":[") else { return Vec::new() };
    let rest = &body[start + "\"labels\":[".len()..];
    let Some(end) = rest.find(']') else { return Vec::new() };
    rest[..end].split(',').filter_map(|s| s.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_reply_parsing_is_incremental_and_typed() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 31\r\n\r\n{\"epoch\":7,\"labels\":[1,0,2,15]}";
        for cut in 0..wire.len() {
            assert!(parse_http_reply(&wire[..cut]).unwrap().is_none(), "cut {cut}");
        }
        let (reply, consumed) = parse_http_reply(wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(reply.status, 200);
        assert_eq!(reply.epoch, 7);
        assert_eq!(reply.labels, vec![1, 0, 2, 15]);
        assert!(!reply.is_retryable());
    }

    #[test]
    fn http_429_carries_the_retry_hint() {
        let body = "{\"error\":\"full\",\"code\":429,\"retryable\":true}";
        let wire = format!(
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let (reply, _) = parse_http_reply(wire.as_bytes()).unwrap().unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.retry_after_s, Some(1));
        assert!(reply.is_retryable());
        assert!(reply.labels.is_empty());
    }
}
