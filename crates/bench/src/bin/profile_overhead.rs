//! Measures the wall-clock cost of continuous profiling on serving.
//!
//! Starts the prediction server on the §7.1 `R5.T200.F3` workload twice
//! per rep — once with [`Profiler::noop`], once with the production
//! default [`Profiler::enabled`] (97 Hz wall sampler, allocation
//! attribution through this binary's [`ProfiledAllocator`], lock-wait
//! timers on the admission queue / registry / count store) — drives the
//! same request stream through both, verifies the answers are identical,
//! and reports mean wall time per configuration plus the relative
//! overhead. The acceptance budget is **< 5%** for the enabled profiler;
//! the disabled path is separately pinned to zero allocations by
//! `crossmine-obs`'s counting-allocator test.
//!
//! Configurations are interleaved so drift (thermal, cache) hits both
//! evenly, with one untimed warmup rep each.
//!
//! ```text
//! cargo run --release -p crossmine-bench --bin profile_overhead
//! cargo run --release -p crossmine-bench --bin profile_overhead -- --reps 20 --requests 5000
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossmine_core::CrossMine;
use crossmine_obs::{ProfiledAllocator, Profiler};
use crossmine_relational::{ClassLabel, Row};
use crossmine_serve::{CompiledPlan, ModelRegistry, PredictionServer, ServerConfig};
use crossmine_synth::{generate, GenParams};

/// The enabled half measures what production pays, so the allocator
/// wrapper the attribution rides on must be installed here too.
#[global_allocator]
static ALLOC: ProfiledAllocator<std::alloc::System> = ProfiledAllocator(std::alloc::System);

fn main() {
    let mut reps = 10usize;
    let mut requests = 2_000usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                i += 1;
                reps = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            "--requests" => {
                i += 1;
                requests = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--requests needs a positive integer");
            }
            other => panic!("unknown flag {other} (try --reps N --requests N)"),
        }
        i += 1;
    }

    let db = generate(&GenParams {
        num_relations: 5,
        expected_tuples: 200,
        min_tuples: 60,
        expected_foreign_keys: 3,
        seed: 42,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().expect("target set")).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).expect("generated database is valid");
    let plan = CompiledPlan::compile(&model, &db.schema).expect("trained model compiles");
    let db = Arc::new(db);
    println!(
        "R5.T200.F3 ({} target rows), {reps} reps x {requests} requests per configuration",
        rows.len()
    );

    let serve = |profiler: Profiler| -> (Duration, Vec<ClassLabel>) {
        let registry = Arc::new(ModelRegistry::new(plan.clone()));
        let config = ServerConfig::builder()
            .profiler(profiler)
            .build()
            .expect("default server config is valid");
        let server = PredictionServer::start(Arc::clone(&db), registry, config)
            .expect("default server config starts");
        // Warm the fresh server (thread spin-up, first-batch plan touch).
        for i in 0..64 {
            server.predict(rows[i % rows.len()]).expect("warmup request");
        }
        let mut labels = Vec::with_capacity(requests);
        let start = Instant::now();
        for i in 0..requests {
            let p = server.predict(rows[i % rows.len()]).expect("bench request");
            labels.push(p.label);
        }
        let elapsed = start.elapsed();
        server.shutdown();
        (elapsed, labels)
    };

    let (_, baseline_labels) = serve(Profiler::noop());
    let (_, profiled_labels) = serve(Profiler::enabled());
    assert_eq!(baseline_labels, profiled_labels, "profiling must not change what is served");

    let mut noop = Duration::ZERO;
    let mut enabled = Duration::ZERO;
    for _ in 0..reps {
        noop += serve(Profiler::noop()).0;
        enabled += serve(Profiler::enabled()).0;
    }
    let noop_mean = noop / reps as u32;
    let enabled_mean = enabled / reps as u32;
    let overhead = enabled_mean.as_secs_f64() / noop_mean.as_secs_f64() - 1.0;
    println!("no-op profiler:   {noop_mean:?} mean");
    println!("enabled profiler: {enabled_mean:?} mean");
    println!("overhead:         {:+.1}%", overhead * 100.0);
    if overhead > 0.05 {
        eprintln!("profile_overhead: WARNING: overhead above the 5% target");
        std::process::exit(1);
    }
    println!("OK: within the 5% overhead target");
}
