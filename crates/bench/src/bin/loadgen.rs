//! Load generator for the `crossmine-serve` prediction server.
//!
//! Trains a model on a synthetic `Rx.Ty.Fz` database, compiles it, starts
//! the micro-batching server, and drives a fixed number of requests from
//! concurrent client threads — verifying every reply against
//! `CrossMineModel::predict` — then prints throughput, latency quantiles,
//! and the batch-size histogram. A same-model hot swap is injected midway
//! so the swap path is always exercised (labels are unaffected).
//!
//! ```text
//! cargo run --release -p crossmine-bench --bin loadgen
//! cargo run --release -p crossmine-bench --bin loadgen -- --smoke
//! cargo run --release -p crossmine-bench --bin loadgen -- \
//!     --requests 50000 --workers 4 --clients 8 --batch 64 --wait-us 200
//! cargo run --release -p crossmine-bench --bin loadgen -- \
//!     --report --jsonl /tmp/obs.jsonl
//! cargo run --release -p crossmine-bench --bin loadgen -- --chaos --smoke
//! cargo run --release -p crossmine-bench --bin loadgen -- \
//!     --prom 127.0.0.1:0 --explain 3
//! ```
//!
//! `--report` attaches enabled `crossmine-obs` handles to training and
//! serving (training additionally turns on §6 negative sampling so the
//! sampling hooks are exercised) and prints the train/serve span tables
//! and counters after the run; `--jsonl PATH` exports the same metrics as
//! JSON lines.
//!
//! `--chaos` turns on the fault-injection harness: workers stall, panic,
//! and score oversized batches on a fixed schedule
//! (`ChaosConfig::standard()`), the registry is swapped repeatedly
//! mid-stream, every fourth request carries a tight deadline, and clients
//! retry retryable errors through `crossmine_bench::serve_client`. The run
//! passes iff every request is eventually answered correctly, at least one
//! injected worker panic was survived, and the server shuts down cleanly —
//! degradations (sheds, expiries, restarts) are expected and reported, but
//! crashes, deadlocks, and wrong answers are not.
//!
//! `--net ADDR` (e.g. `--net 127.0.0.1:0`) binds the `crossmine-net`
//! wire front end on ADDR and drives the whole run over real TCP instead
//! of in-process calls: `--conns` keep-alive connections (default 8
//! under `--smoke`, 200 otherwise — hundreds, as production would see),
//! each pipelining windows of requests and verifying every label.
//! `--net-proto http|binary|both` picks the wire protocol (`both`
//! alternates per connection, exercising the sniffer). Wire clients
//! retry retryable statuses (429/504/500+Retry-After) with backoff, so
//! `--net --chaos` proves typed overload answers under fault injection.
//!
//! `--prom ADDR` binds the live telemetry endpoint
//! (`ServerConfig::telemetry_addr`) and scrapes `GET /metrics` from it
//! over real TCP midway through the run — proving the Prometheus surface
//! works under production load — then prints the second-half delta of the
//! server's own metrics via `MetricsSnapshot::diff`. `--explain N` prints
//! full provenance (fired clauses, matched literals, prop-path lengths)
//! for the first N rows as JSONL after the run.
//!
//! `--shards N` replaces the single server with a `ShardRouter` over N
//! shared-nothing shards and turns the run into the mutable-database
//! acceptance drill: phase one drives the base snapshot, then a delta
//! (fresh-keyed clones of live target rows plus a cell patch) is
//! broadcast to every shard and parity-proven against a from-scratch
//! evaluation of the materialized merge, and phase two drives the merged
//! database — over real TCP with `--net` — while the model is hot-swapped
//! shard-by-shard (`rolling_install`) once between phases and once
//! mid-stream under live traffic. Passes iff every reply matched, nothing
//! was lost, every shard finished at epoch 2, and traffic actually spread
//! across the shards:
//!
//! ```text
//! cargo run --release -p crossmine-bench --bin loadgen -- \
//!     --smoke --shards 4 --net 127.0.0.1:0
//! ```
//!
//! `--trace` attaches an enabled request tracer (default tail-sampling
//! config: 256-trace ring, slowest 8 per 128-completion window, every
//! error kept). After the run it prints the sampler stats and one
//! complete causal chain — with `--net`, the full wire-to-worker tree
//! (`net.sniff → net.parse → serve.queue_wait → serve.batch →
//! serve.eval → net.write`) rendered as JSONL — and dies if no sampled
//! trace holds the whole chain. Combined with `--prom` it also fetches
//! `GET /trace` over real TCP mid-proof.
//!
//! `--profile` attaches the continuous in-process profiler (wall
//! sampler raised to 1997 Hz for the proof, allocation attribution on —
//! this binary installs [`crossmine_obs::ProfiledAllocator`] as its
//! global allocator). After the run it dies unless the folded stacks
//! hold the full worker chain `serve.worker;serve.batch;serve.eval`
//! (plus the `net.poll` wire root under `--net`), the flamegraph SVG is
//! well-formed, and the heap report attributes the `serve.queue` lock;
//! with `--prom` the same three surfaces are also fetched over real TCP
//! (`GET /profile`, `/profile/flamegraph`, `/profile/heap`). Every
//! check prints a grep-able `profile proof:` line.
//!
//! Exits non-zero on any parity mismatch, delivery error, or lost request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossmine_bench::net_client::{NetClient, NetProto};
use crossmine_bench::serve_client::submit_with_retry;
use crossmine_core::{CrossMine, CrossMineParams};
use crossmine_obs::{
    ObsHandle, ProfileConfig, ProfiledAllocator, Profiler, ServeReport, TrainReport,
};
use crossmine_relational::{AttrId, ClassLabel, Database, DeltaBatch, Row, Value};
use crossmine_serve::{
    evaluate_batch, predict_disk, ChaosConfig, CompiledPlan, ModelRegistry, NetConfig,
    PredictionServer, ServeRequest, ServeScratch, ServerConfig, ShardRouter, Tracer,
};
use crossmine_storage::DiskDatabase;
use crossmine_synth::{generate, GenParams};

/// Allocation attribution needs the wrapper in front of the system
/// allocator for the whole process; without `--profile` no profiler
/// registers and every allocation costs one relaxed atomic load extra.
#[global_allocator]
static ALLOC: ProfiledAllocator<std::alloc::System> = ProfiledAllocator(std::alloc::System);

struct Args {
    smoke: bool,
    requests: usize,
    workers: usize,
    clients: usize,
    max_batch: usize,
    wait_us: u64,
    seed: u64,
    skip_disk: bool,
    report: bool,
    jsonl: Option<String>,
    chaos: bool,
    prom: Option<String>,
    explain: usize,
    net: Option<String>,
    conns: usize,
    net_proto: NetProtoArg,
    trace: bool,
    shards: usize,
    profile: bool,
}

/// `--net-proto`: which protocol the wire clients speak.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NetProtoArg {
    Http,
    Binary,
    /// Alternate per connection — half HTTP, half binary, so both
    /// decoders and the sniffer run in every `--net` invocation.
    Both,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            smoke: false,
            requests: 20_000,
            workers: 2,
            clients: 4,
            max_batch: 64,
            wait_us: 200,
            seed: 42,
            skip_disk: false,
            report: false,
            jsonl: None,
            chaos: false,
            prom: None,
            explain: 0,
            net: None,
            conns: 0,
            net_proto: NetProtoArg::Both,
            trace: false,
            shards: 1,
            profile: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> u64 {
            *i += 1;
            argv.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&format!("{} needs a numeric value", argv[*i - 1])))
        };
        match argv[i].as_str() {
            "--smoke" => {
                args.smoke = true;
                args.requests = 1_000;
                args.workers = 2;
            }
            "--requests" => args.requests = take(&mut i) as usize,
            "--workers" => args.workers = take(&mut i) as usize,
            "--clients" => args.clients = take(&mut i) as usize,
            "--batch" => args.max_batch = take(&mut i) as usize,
            "--wait-us" => args.wait_us = take(&mut i),
            "--seed" => args.seed = take(&mut i),
            "--no-disk" => args.skip_disk = true,
            "--report" => args.report = true,
            "--chaos" => args.chaos = true,
            "--jsonl" => {
                i += 1;
                let path = argv.get(i).unwrap_or_else(|| die("--jsonl needs a file path"));
                args.jsonl = Some(path.clone());
            }
            "--prom" => {
                i += 1;
                let addr = argv
                    .get(i)
                    .unwrap_or_else(|| die("--prom needs an address (e.g. 127.0.0.1:0)"));
                args.prom = Some(addr.clone());
            }
            "--explain" => args.explain = take(&mut i) as usize,
            "--net" => {
                i += 1;
                let addr =
                    argv.get(i).unwrap_or_else(|| die("--net needs an address (e.g. 127.0.0.1:0)"));
                args.net = Some(addr.clone());
            }
            "--conns" => args.conns = take(&mut i) as usize,
            "--trace" => args.trace = true,
            "--profile" => args.profile = true,
            "--shards" => args.shards = take(&mut i) as usize,
            "--net-proto" => {
                i += 1;
                args.net_proto = match argv.get(i).map(String::as_str) {
                    Some("http") => NetProtoArg::Http,
                    Some("binary") => NetProtoArg::Binary,
                    Some("both") => NetProtoArg::Both,
                    _ => die("--net-proto needs one of: http, binary, both"),
                };
            }
            other => die(&format!("unknown flag {other} (try --smoke)")),
        }
        i += 1;
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = parse_args();

    // The §7.1 R5.T200.F3 workload (a smaller R4.T80 one for --smoke).
    let params = if args.smoke {
        GenParams {
            num_relations: 4,
            expected_tuples: 80,
            min_tuples: 25,
            seed: args.seed,
            ..Default::default()
        }
    } else {
        GenParams {
            num_relations: 5,
            expected_tuples: 200,
            min_tuples: 60,
            expected_foreign_keys: 3,
            seed: args.seed,
            ..Default::default()
        }
    };
    let db = generate(&params);
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
    println!("database {} ({} target rows)", params.name(), rows.len());

    // `--report`/`--jsonl` attach enabled obs handles; otherwise both stay
    // no-ops and every hook below costs one branch.
    let obs_on = args.report || args.jsonl.is_some();
    let train_obs = if obs_on { ObsHandle::enabled() } else { ObsHandle::noop() };
    let serve_obs = if obs_on { ObsHandle::enabled() } else { ObsHandle::noop() };
    let classifier = if obs_on {
        // Negative sampling (§6) on, so the sampling hooks show up in the
        // span table. Parity below is against this same model, so the
        // different clause set changes nothing about the checks.
        CrossMine::new(
            CrossMineParams::builder().sampling(true).obs(train_obs.clone()).build().unwrap(),
        )
    } else {
        CrossMine::default()
    };

    let fit_start = Instant::now();
    let model = classifier.fit(&db, &rows).unwrap();
    println!("trained {} clauses in {:?}", model.num_clauses(), fit_start.elapsed());
    let expected = model.predict(&db, &rows).unwrap();
    let plan = match CompiledPlan::compile(&model, &db.schema) {
        Ok(p) => p,
        Err(e) => die(&format!("model failed to compile: {e}")),
    };
    println!("compiled plan: {}", plan.stats);

    if !args.skip_disk {
        disk_check(&db, &plan, &rows, &expected);
    }

    let db = Arc::new(db);
    // `--trace`: the default tail-sampling config (256-trace ring, every
    // error kept, slowest 8 per 128-completion window).
    let tracer = if args.trace { Tracer::enabled() } else { Tracer::noop() };
    // `--profile`: a hot sampler (1997 Hz instead of the production-default
    // 97) so even the smoke run lands samples inside every worker frame.
    let profiler = if args.profile {
        Profiler::with_config(ProfileConfig { hz: 1997, ..Default::default() })
    } else {
        Profiler::noop()
    };

    // `--shards`: the whole run moves behind a ShardRouter — two phases
    // around a mid-run delta broadcast, two rolling installs.
    if args.shards != 1 {
        run_sharded(&args, db, &rows, &expected, &plan, &train_obs, &serve_obs, tracer, profiler);
        return;
    }

    let registry = Arc::new(ModelRegistry::new(plan.clone()));
    let mut config_builder = ServerConfig::builder()
        .workers(args.workers)
        .max_batch(args.max_batch)
        .max_wait(Duration::from_micros(args.wait_us))
        // Tiny under chaos so worker stalls actually fill it and force
        // sheds; big enough otherwise that the healthy path never rejects.
        .queue_capacity(if args.chaos { 2 } else { 1024 })
        .obs(serve_obs.clone())
        .chaos(if args.chaos { ChaosConfig::standard() } else { ChaosConfig::off() })
        .tracer(tracer.clone())
        .profiler(profiler.clone());
    if let Some(a) = &args.prom {
        config_builder = config_builder.telemetry_addr(
            a.parse().unwrap_or_else(|e| die(&format!("--prom: invalid address {a:?}: {e}"))),
        );
    }
    if let Some(addr) = &args.net {
        config_builder = config_builder.net(NetConfig { addr: addr.clone(), ..Default::default() });
    }
    let config =
        config_builder.build().unwrap_or_else(|e| die(&format!("invalid server config: {e}")));
    let server = PredictionServer::start(Arc::clone(&db), Arc::clone(&registry), config)
        .unwrap_or_else(|e| die(&format!("server failed to start: {e}")));
    if args.prom.is_some() {
        let addr = server.telemetry_addr().expect("--prom was given, so telemetry is on");
        println!("telemetry live at http://{addr} (/metrics /healthz /buildinfo)");
    }
    if args.chaos {
        println!("chaos mode: stalls, worker panics, oversized batches, repeated hot swaps");
        // Injected panics are expected by the hundreds; silence their
        // default printout so real panics stay visible in the output.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<&str>().is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    println!(
        "serving with {} workers, max_batch {}, max_wait {}us, {} client threads",
        args.workers, args.max_batch, args.wait_us, args.clients
    );

    // `--net`: the run goes socket-to-socket. One unit of work is then a
    // wire request (a batch of WIRE_BATCH_ROWS rows) instead of a single
    // in-process row, driven by `conns` keep-alive connections.
    let wire_addr = args.net.as_ref().map(|_| {
        let addr = server.net_addr().expect("--net was given, so the wire front end is on");
        println!("wire front end live at {addr} (HTTP + binary on one port)");
        addr
    });
    let conns = if args.conns > 0 {
        args.conns
    } else if args.smoke {
        8
    } else {
        200
    };

    let mismatches = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let units = if wire_addr.is_some() { conns } else { args.clients.max(1) };
    let per_client = args.requests.div_ceil(units);
    let total = per_client * units;
    let chaos = args.chaos;
    let swap_plan = plan.clone();
    // `--prom`: filled midway through the run by the scrape thread with
    // (server metrics at the scrape instant, raw /metrics body).
    let scrape: std::sync::Mutex<Option<(crossmine_serve::MetricsSnapshot, String)>> =
        std::sync::Mutex::new(None);
    let bench_start = Instant::now();
    std::thread::scope(|scope| {
        if let Some(addr) = wire_addr {
            for c in 0..conns {
                let proto = match args.net_proto {
                    NetProtoArg::Http => NetProto::Http,
                    NetProtoArg::Binary => NetProto::Binary,
                    NetProtoArg::Both => {
                        if c % 2 == 0 {
                            NetProto::Http
                        } else {
                            NetProto::Binary
                        }
                    }
                };
                let rows = &rows;
                let expected = &expected;
                let mismatches = &mismatches;
                let answered = &answered;
                let retried = &retried;
                scope.spawn(move || {
                    wire_client(
                        addr, proto, c, per_client, rows, expected, chaos, answered, mismatches,
                        retried,
                    );
                });
            }
        } else {
            for c in 0..args.clients.max(1) {
                let server = &server;
                let rows = &rows;
                let expected = &expected;
                let mismatches = &mismatches;
                let answered = &answered;
                let retried = &retried;
                scope.spawn(move || {
                    for k in 0..per_client {
                        let i = (c * per_client + k) % rows.len();
                        let p = if chaos {
                            chaos_request(server, rows[i], k, retried)
                        } else {
                            server.predict(rows[i]).unwrap_or_else(|e| {
                                die(&format!("healthy-path request failed: {e}"))
                            })
                        };
                        answered.fetch_add(1, Ordering::Relaxed);
                        if p.label != expected[i] {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        }
        if let Some(addr) = server.telemetry_addr() {
            // Scrape the live endpoint over real TCP while clients are
            // mid-flight — the point of `--prom` is proving the Prometheus
            // surface under production load, not after it.
            let server = &server;
            let answered = &answered;
            let scrape = &scrape;
            let half = (total / 2) as u64;
            scope.spawn(move || {
                while answered.load(Ordering::Relaxed) < half {
                    std::thread::sleep(Duration::from_micros(200));
                }
                let mid = server.metrics();
                let body = http_get(addr, "/metrics");
                *scrape.lock().unwrap_or_else(|e| e.into_inner()) = Some((mid, body));
            });
        }
        if chaos {
            // Mid-batch registry swaps, the fourth chaos dimension: keep
            // reinstalling the same plan until the clients finish. Answers
            // must stay correct across every swap.
            let registry = &registry;
            let answered = &answered;
            scope.spawn(move || {
                while answered.load(Ordering::Relaxed) < total as u64 {
                    registry.install(swap_plan.clone());
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        } else {
            // Hot-swap the same model midway: exercises the epoch machinery
            // without changing any prediction.
            let registry = &registry;
            let answered = &answered;
            let half = (total / 2) as u64;
            scope.spawn(move || {
                while answered.load(Ordering::Relaxed) < half {
                    std::thread::sleep(Duration::from_micros(200));
                }
                registry.install(plan.clone());
            });
        }
    });
    let elapsed = bench_start.elapsed();

    if let Some((mid, body)) = scrape.into_inner().unwrap_or_else(|e| e.into_inner()) {
        let samples = body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
        if !body.contains("crossmine_serve_requests_total") {
            die("scraped /metrics is missing crossmine_serve_requests_total");
        }
        println!();
        println!("mid-run /metrics scrape: {samples} samples, {} bytes", body.len());
        println!("second half only (now minus mid-run scrape):");
        println!("{}", server.metrics().diff(&mid));
    }

    if args.explain > 0 {
        let n = args.explain.min(rows.len());
        println!();
        println!("provenance for the first {n} rows (JSONL):");
        for &row in &rows[..n] {
            match server.predict_explained(row) {
                Ok(p) => println!("{}", p.explanation.to_json()),
                Err(e) => die(&format!("--explain failed on row {}: {e}", row.0)),
            }
        }
    }

    if args.trace {
        // Fetch the trace surface over real TCP while telemetry is still
        // up — the walkthrough the README documents, proven under load.
        if let Some(addr) = server.telemetry_addr() {
            let body = http_get(addr, "/trace");
            println!();
            println!(
                "GET /trace: {} sampled traces ({} bytes JSONL)",
                body.lines().filter(|l| !l.is_empty()).count(),
                body.len()
            );
        }
    }

    if args.profile {
        // Prove the profile surfaces before shutdown, while the worker
        // and poll threads still publish their stacks.
        profile_proof(&profiler, server.telemetry_addr(), args.net.is_some(), || {
            for &row in rows.iter().take(32) {
                let _ = server.predict(row);
            }
        });
    }

    let wire_stats = server.net_metrics().map(|m| m.snapshot());
    let report = server.shutdown();
    let throughput = total as f64 / elapsed.as_secs_f64();
    println!();
    println!("{} requests in {:?}  ({:.0} req/s)", total, elapsed, throughput);
    println!("{report}");
    if let Some(s) = &wire_stats {
        println!(
            "wire: {} conns accepted ({} http, {} binary), {} http + {} binary requests, \
             {} wire errors, {} B in, {} B out",
            s.accepted,
            s.http_conns,
            s.binary_conns,
            s.http_requests,
            s.binary_requests,
            s.wire_errors,
            s.bytes_read,
            s.bytes_written
        );
    }
    println!();

    if args.trace {
        let stats = tracer.stats();
        println!(
            "tracing: {} completed, {} sampled, {} dropped by tail sampling",
            stats.completed, stats.sampled, stats.dropped
        );
        // The proof the trace smoke leg greps for: at least one sampled
        // trace holds the entire causal chain, wire to worker and back.
        let chain: &[&str] = if args.net.is_some() {
            &[
                "net.sniff",
                "net.parse",
                "serve.queue_wait",
                "serve.batch",
                "serve.eval",
                "net.write",
            ]
        } else {
            &["serve.queue_wait", "serve.batch", "serve.eval"]
        };
        let complete = tracer
            .recent(256)
            .into_iter()
            .find(|t| chain.iter().all(|stage| t.spans.iter().any(|s| s.name == *stage)));
        match complete {
            Some(t) => {
                println!("complete causal chain: {}", chain.join(" -> "));
                println!("{}", t.render_jsonl());
            }
            None => die("--trace: no sampled trace contains the complete causal chain"),
        }
        println!();
    }
    if args.report {
        println!("{}", TrainReport::from_handle(&train_obs));
        println!("{}", ServeReport::from_handle(&serve_obs));
    }
    if let Some(path) = &args.jsonl {
        export_jsonl(path, &train_obs, &serve_obs);
        println!("obs metrics exported to {path}");
    }

    let lost = total as u64 - answered.load(Ordering::Relaxed);
    let bad = mismatches.load(Ordering::Relaxed);
    if args.chaos {
        // Under fault injection, degradations are the point: errors, sheds,
        // expiries, and restarts are expected. What must hold is that every
        // request was eventually answered correctly, that the injected
        // panics actually fired (and were survived), and that shutdown
        // completed — reaching this line proves no deadlock or crash.
        let degraded = retried.load(Ordering::Relaxed);
        if bad > 0 || lost > 0 {
            die(&format!("FAILED under chaos: {bad} mismatches, {lost} lost"));
        }
        if report.worker_restarts == 0 {
            die("FAILED under chaos: no worker panic was injected — harness inert");
        }
        println!(
            "OK under chaos: all {total} predictions matched after {degraded} degraded \
             attempts ({} sheds, {} expiries, {} restarts survived)",
            report.shed, report.deadline_expired, report.worker_restarts
        );
    } else if args.net.is_some() {
        // Over the wire the client is remote: the server may shed under
        // the connection storm and the client retries — that's the
        // contract. What must hold is that every batch was eventually
        // answered with the right labels.
        if bad > 0 || lost > 0 || report.swaps != 1 {
            die(&format!(
                "FAILED over the wire: {bad} mismatches, {lost} lost, {} swaps",
                report.swaps
            ));
        }
        println!(
            "OK over the wire: all {total} batches matched after {} retried replies \
             ({} sheds server-side)",
            retried.load(Ordering::Relaxed),
            report.shed
        );
    } else {
        if bad > 0 || lost > 0 || report.errors > 0 || report.swaps != 1 {
            die(&format!(
                "FAILED: {bad} mismatches, {lost} lost, {} errors, {} swaps",
                report.errors, report.swaps
            ));
        }
        println!("OK: all {total} predictions matched CrossMineModel::predict, zero errors");
    }
}

/// The `--shards N` run: the same parity-or-die discipline as the
/// single-server path, but against a [`ShardRouter`] over N
/// shared-nothing shards with the mutable-database story exercised
/// mid-run. Phase 1 drives the base snapshot; between phases a delta is
/// broadcast to every shard, every merged row is parity-checked against
/// a from-scratch evaluation of the materialized merge, and the model
/// is rolled shard-by-shard; phase 2 drives the merged database (over
/// real TCP with `--net`) with a second roll injected under live
/// traffic.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    args: &Args,
    db: Arc<Database>,
    rows: &[Row],
    expected: &[ClassLabel],
    plan: &CompiledPlan,
    train_obs: &ObsHandle,
    serve_obs: &ObsHandle,
    tracer: Tracer,
    profiler: Profiler,
) {
    if args.trace && args.net.is_none() {
        die("--trace with --shards needs --net (wire requests own their traces)");
    }
    let mut builder = ServerConfig::builder()
        .workers(args.workers)
        .max_batch(args.max_batch)
        .max_wait(Duration::from_micros(args.wait_us))
        // Small under chaos (per shard) so stalls force sheds; roomy
        // otherwise so the healthy path never rejects.
        .queue_capacity(if args.chaos { 4 } else { 1024 })
        .obs(serve_obs.clone())
        .chaos(if args.chaos { ChaosConfig::standard() } else { ChaosConfig::off() })
        .tracer(tracer.clone())
        .profiler(profiler.clone())
        .shards(args.shards);
    if let Some(a) = &args.prom {
        builder = builder.telemetry_addr(
            a.parse().unwrap_or_else(|e| die(&format!("--prom: invalid address {a:?}: {e}"))),
        );
    }
    if let Some(addr) = &args.net {
        builder = builder.net(NetConfig { addr: addr.clone(), ..Default::default() });
    }
    let config = builder.build().unwrap_or_else(|e| die(&format!("invalid server config: {e}")));
    let router = ShardRouter::start(Arc::clone(&db), plan, config)
        .unwrap_or_else(|e| die(&format!("shard router failed to start: {e}")));
    println!(
        "sharded serving: {} shards x {} workers, max_batch {}, max_wait {}us",
        args.shards, args.workers, args.max_batch, args.wait_us
    );
    if let Some(addr) = router.telemetry_addr() {
        println!("telemetry live at http://{addr} (/metrics /healthz /buildinfo)");
    }
    if args.chaos {
        println!("chaos mode: stalls, worker panics, oversized batches on every shard");
        // Injected panics are expected by the hundreds; silence their
        // default printout so real panics stay visible in the output.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<&str>().is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                default_hook(info);
            }
        }));
    }

    let mismatches = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    let chaos = args.chaos;
    let bench_start = Instant::now();

    // Phase 1: in-process clients over the base snapshot.
    let clients = args.clients.max(1);
    let per_client = (args.requests / 2).max(1).div_ceil(clients);
    let phase1 = per_client * clients;
    let answered1 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..clients {
            let router = &router;
            let mismatches = &mismatches;
            let retried = &retried;
            let answered1 = &answered1;
            scope.spawn(move || {
                for k in 0..per_client {
                    let i = (c * per_client + k) % rows.len();
                    let p = sharded_request(router, rows[i], k, chaos, retried);
                    answered1.fetch_add(1, Ordering::Relaxed);
                    if p.label != expected[i] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Between phases: mutate the database. A delta the synth schema
    // itself dictates — fresh-keyed clones of live target rows plus one
    // cell patch — broadcast to every shard in lockstep...
    let batch = build_delta(&db, rows);
    let delta_stats = router
        .apply_delta(&batch)
        .unwrap_or_else(|e| die(&format!("delta broadcast rejected: {e}")));
    let mut merged = (*db).clone();
    merged
        .apply_delta(&batch)
        .unwrap_or_else(|e| die(&format!("materialized merge failed: {e:?}")));
    let merged_rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();
    let expected_merged = evaluate_batch(plan, &merged, &merged_rows, &mut ServeScratch::new());
    println!(
        "delta applied on all {} shards: +{} rows, {} cells patched ({} -> {} target rows)",
        args.shards,
        delta_stats.inserted_rows,
        delta_stats.updated_cells,
        rows.len(),
        merged_rows.len(),
    );
    // ...and parity-proven: every merged row — old rows whose labels may
    // have shifted through join paths, and the appended rows — must
    // answer exactly what a from-scratch evaluation of the materialized
    // merge says.
    for (i, &row) in merged_rows.iter().enumerate() {
        let p = sharded_request(&router, row, 1, chaos, &retried);
        if p.label != expected_merged[i] {
            die(&format!("post-delta parity: row {} diverged from the materialized merge", row.0));
        }
    }
    println!("post-delta parity OK: {} rows against the materialized merge", merged_rows.len());
    // First hot swap, shard by shard, between phases.
    let epochs = router.rolling_install(plan);
    if epochs.iter().any(|&e| e != 1) {
        die(&format!("first rolling install left uneven epochs {epochs:?}"));
    }
    // `--prom`: scrape mid-run — the per-shard series must be live.
    if let Some(addr) = router.telemetry_addr() {
        let body = http_get(addr, "/metrics");
        if !body.contains("crossmine_shard_count") {
            die("scraped /metrics is missing crossmine_shard_count");
        }
        for k in 0..args.shards {
            if !body.contains(&format!("crossmine_shard_{k}_requests_total")) {
                die(&format!("scraped /metrics is missing shard {k}'s series"));
            }
        }
        println!("mid-run /metrics scrape: per-shard series live for all {} shards", args.shards);
    }

    // Phase 2: the merged database, over the wire when --net is given,
    // with the second rolling install injected mid-stream.
    let wire_addr = args.net.as_ref().map(|_| {
        let addr = router.net_addr().expect("--net was given, so the wire front end is on");
        println!("wire front end live at {addr} (all {} shards behind one port)", args.shards);
        addr
    });
    let conns = if args.conns > 0 {
        args.conns
    } else if args.smoke {
        8
    } else {
        200
    };
    let units = if wire_addr.is_some() { conns } else { clients };
    let per_unit = (args.requests - args.requests / 2).max(1).div_ceil(units);
    let phase2 = per_unit * units;
    let answered2 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        if let Some(addr) = wire_addr {
            for c in 0..conns {
                let proto = match args.net_proto {
                    NetProtoArg::Http => NetProto::Http,
                    NetProtoArg::Binary => NetProto::Binary,
                    NetProtoArg::Both => {
                        if c % 2 == 0 {
                            NetProto::Http
                        } else {
                            NetProto::Binary
                        }
                    }
                };
                let merged_rows = &merged_rows;
                let expected_merged = &expected_merged;
                let mismatches = &mismatches;
                let answered2 = &answered2;
                let retried = &retried;
                scope.spawn(move || {
                    wire_client(
                        addr,
                        proto,
                        c,
                        per_unit,
                        merged_rows,
                        expected_merged,
                        chaos,
                        answered2,
                        mismatches,
                        retried,
                    );
                });
            }
        } else {
            for c in 0..clients {
                let router = &router;
                let merged_rows = &merged_rows;
                let expected_merged = &expected_merged;
                let mismatches = &mismatches;
                let answered2 = &answered2;
                let retried = &retried;
                scope.spawn(move || {
                    for k in 0..per_unit {
                        let i = (c * per_unit + k) % merged_rows.len();
                        let p = sharded_request(router, merged_rows[i], k, chaos, retried);
                        answered2.fetch_add(1, Ordering::Relaxed);
                        if p.label != expected_merged[i] {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        }
        // The second roll happens under live traffic: replies must keep
        // flowing while the shards swap one by one.
        let router = &router;
        let answered2 = &answered2;
        let half = (phase2 / 2) as u64;
        scope.spawn(move || {
            while answered2.load(Ordering::Relaxed) < half {
                std::thread::sleep(Duration::from_micros(200));
            }
            let epochs = router.rolling_install(plan);
            if epochs.iter().any(|&e| e != 2) {
                die(&format!("second rolling install left uneven epochs {epochs:?}"));
            }
        });
    });
    let elapsed = bench_start.elapsed();

    if args.explain > 0 {
        let n = args.explain.min(merged_rows.len());
        println!();
        println!("provenance for the first {n} merged rows (JSONL):");
        for &row in &merged_rows[..n] {
            match router.predict_explained(row) {
                Ok(p) => println!("{}", p.explanation.to_json()),
                Err(e) => die(&format!("--explain failed on row {}: {e}", row.0)),
            }
        }
    }
    if args.trace {
        if let Some(addr) = router.telemetry_addr() {
            let body = http_get(addr, "/trace");
            println!();
            println!(
                "GET /trace: {} sampled traces ({} bytes JSONL)",
                body.lines().filter(|l| !l.is_empty()).count(),
                body.len()
            );
        }
    }

    if args.profile {
        profile_proof(&profiler, router.telemetry_addr(), args.net.is_some(), || {
            for &row in merged_rows.iter().take(16) {
                let _ = sharded_request(&router, row, 1, chaos, &retried);
            }
        });
    }

    let wire_stats = router.net_metrics().map(|m| m.snapshot());
    let stats = router.shutdown();
    let total = phase1 + merged_rows.len() + phase2;
    println!();
    println!(
        "{} requests in {:?}  ({:.0} req/s) across {} shards",
        total,
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
        args.shards
    );
    let per_shard: Vec<String> = stats
        .shards
        .iter()
        .map(|s| format!("shard {}: {} reqs, epoch {}", s.shard, s.snapshot.requests, s.epoch))
        .collect();
    println!("{}", per_shard.join("  |  "));
    if let Some(s) = &wire_stats {
        println!(
            "wire: {} conns accepted ({} http, {} binary), {} http + {} binary requests, \
             {} wire errors, {} B in, {} B out",
            s.accepted,
            s.http_conns,
            s.binary_conns,
            s.http_requests,
            s.binary_requests,
            s.wire_errors,
            s.bytes_read,
            s.bytes_written
        );
    }
    println!();

    if args.trace {
        let tstats = tracer.stats();
        println!(
            "tracing: {} completed, {} sampled, {} dropped by tail sampling",
            tstats.completed, tstats.sampled, tstats.dropped
        );
        let chain = [
            "net.sniff",
            "net.parse",
            "serve.queue_wait",
            "serve.batch",
            "serve.eval",
            "net.write",
        ];
        let complete = tracer
            .recent(256)
            .into_iter()
            .find(|t| chain.iter().all(|stage| t.spans.iter().any(|s| s.name == *stage)));
        match complete {
            Some(t) => {
                println!("complete causal chain: {}", chain.join(" -> "));
                println!("{}", t.render_jsonl());
            }
            None => die("--trace: no sampled trace contains the complete causal chain"),
        }
        println!();
    }
    if args.report {
        println!("{}", TrainReport::from_handle(train_obs));
        println!("{}", ServeReport::from_handle(serve_obs));
    }
    if let Some(path) = &args.jsonl {
        export_jsonl(path, train_obs, serve_obs);
        println!("obs metrics exported to {path}");
    }

    let lost = (phase1 as u64 - answered1.load(Ordering::Relaxed))
        + (phase2 as u64 - answered2.load(Ordering::Relaxed));
    let bad = mismatches.load(Ordering::Relaxed);
    if bad > 0 || lost > 0 {
        die(&format!("FAILED sharded: {bad} mismatches, {lost} lost"));
    }
    if (stats.min_epoch(), stats.max_epoch()) != (2, 2) {
        die(&format!(
            "FAILED sharded: shards finished at uneven epochs {:?}",
            router_epochs(&stats)
        ));
    }
    let busy = stats.shards.iter().filter(|s| s.snapshot.requests > 0).count();
    if busy < 2 {
        die("FAILED sharded: routing never spread traffic across shards");
    }
    if chaos && stats.total_worker_restarts() == 0 {
        die("FAILED sharded: no worker panic was injected under chaos — harness inert");
    }
    let degraded = retried.load(Ordering::Relaxed);
    println!(
        "OK sharded: {total} predictions matched across {} shards ({phase1} base + {} \
         merged-parity + {phase2} post-delta), 2 rolling swaps, {degraded} degraded attempts, \
         zero lost",
        args.shards,
        merged_rows.len()
    );
}

/// The per-shard epochs out of a final [`crossmine_serve::RouterStats`],
/// for the failure message.
fn router_epochs(stats: &crossmine_serve::RouterStats) -> Vec<u64> {
    stats.shards.iter().map(|s| s.epoch).collect()
}

/// One in-process request against the router, retried through every
/// retryable degradation exactly like the single-server chaos client;
/// under `--chaos` every fourth first attempt carries a tight deadline.
/// Outside chaos any error is fatal — the healthy sharded path, like the
/// healthy single-server path, must never degrade.
fn sharded_request(
    router: &ShardRouter,
    row: Row,
    k: usize,
    chaos: bool,
    retried: &AtomicU64,
) -> crossmine_serve::Prediction {
    const MAX_ATTEMPTS: usize = 1000;
    for attempt in 0..MAX_ATTEMPTS {
        let req = if chaos && attempt == 0 && k.is_multiple_of(4) {
            ServeRequest::row(row).deadline(Duration::from_micros(300))
        } else {
            ServeRequest::row(row)
        };
        let outcome = router
            .serve(req)
            .map(|mut handles| handles.pop().expect("one row in, one handle out"))
            .and_then(|h| h.wait());
        match outcome {
            Ok(p) => return p,
            Err(e) if chaos && e.is_retryable() => {
                retried.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(100 * (attempt as u64 + 1)));
            }
            Err(e) => die(&format!("sharded request failed: {e}")),
        }
    }
    die("request starved: not answered within the sharded retry budget")
}

/// A delta the schema itself dictates: clones of existing target rows
/// under fresh primary keys (labels copied from the source rows, FKs and
/// categoricals preserved so every reference stays valid) plus one
/// same-value cell patch on the first non-key attribute, so both the
/// insert and update paths run whatever `GenParams` produced.
fn build_delta(db: &Database, rows: &[Row]) -> DeltaBatch {
    let target = db.target().unwrap();
    let rel = db.relation(target);
    let labels = db.labels();
    let max_key = rel
        .iter_rows()
        .filter_map(|r| rel.tuple(r).first().and_then(Value::as_key))
        .max()
        .unwrap_or(0);
    let mut batch = DeltaBatch::new();
    let n = (rows.len() / 10).clamp(1, 32);
    for i in 0..n {
        let src = rows[(i * 7) % rows.len()];
        let mut tuple = rel.tuple(src);
        tuple[0] = Value::Key(max_key + 1 + i as u64);
        batch.insert_labeled(target, tuple, labels[src.0 as usize]);
    }
    // Rewrite a non-key cell to its current value: the update machinery
    // runs on every shard without changing any label.
    let tuple = rel.tuple(rows[0]);
    if let Some((j, v)) = tuple.iter().enumerate().skip(1).find(|(_, v)| v.as_key().is_none()) {
        batch.update(target, rows[0], AttrId(j), *v);
    }
    batch
}

/// Rows per wire request: big enough that batch decode matters, small
/// enough that hundreds of pipelined connections don't dwarf the queue.
const WIRE_BATCH_ROWS: usize = 8;
/// Requests written back-to-back before reading any reply.
const WIRE_PIPELINE: usize = 4;

/// One wire connection's share of the run: `per_conn` keep-alive
/// requests in pipelined windows, every label verified against the
/// in-process model, retryable statuses resent (after the window is
/// fully drained, so pipelined FIFO order is never violated).
#[allow(clippy::too_many_arguments)]
fn wire_client(
    addr: std::net::SocketAddr,
    proto: NetProto,
    conn_idx: usize,
    per_conn: usize,
    rows: &[Row],
    expected: &[ClassLabel],
    chaos: bool,
    answered: &AtomicU64,
    mismatches: &AtomicU64,
    retried: &AtomicU64,
) {
    let mut client = NetClient::connect(addr, proto)
        .unwrap_or_else(|e| die(&format!("wire connect {addr} ({}): {e}", proto.name())));
    let verify = |g: usize, labels: &[u32]| {
        if labels.len() != WIRE_BATCH_ROWS {
            mismatches.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (j, &label) in labels.iter().enumerate() {
            let i = (g * WIRE_BATCH_ROWS + j) % rows.len();
            if label != expected[i].0 {
                mismatches.fetch_add(1, Ordering::Relaxed);
            }
        }
    };
    let mut k = 0;
    while k < per_conn {
        let window = (per_conn - k).min(WIRE_PIPELINE);
        let batches: Vec<Vec<u32>> = (0..window)
            .map(|w| {
                let g = conn_idx * per_conn + k + w;
                (0..WIRE_BATCH_ROWS)
                    .map(|j| rows[(g * WIRE_BATCH_ROWS + j) % rows.len()].0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u32]> = batches.iter().map(Vec::as_slice).collect();
        // Every fourth chaos window carries a tight deadline so the wire
        // deadline field (and the 504 path) is exercised.
        let deadline = if chaos && (k / WIRE_PIPELINE).is_multiple_of(4) { Some(5) } else { None };
        let replies = client
            .pipelined(&refs, deadline)
            .unwrap_or_else(|e| die(&format!("wire pipeline ({}): {e}", proto.name())));
        // First pass: drain the whole window (keeps FIFO order intact),
        // remembering which slots need a resend.
        let mut resend = Vec::new();
        for (w, reply) in replies.into_iter().enumerate() {
            if reply.status == 200 {
                verify(conn_idx * per_conn + k + w, &reply.labels);
                answered.fetch_add(1, Ordering::Relaxed);
            } else if reply.is_retryable() {
                resend.push(w);
            } else {
                die(&format!("non-retryable wire status {} ({})", reply.status, proto.name()));
            }
        }
        // Second pass: one request in flight at a time, so each reply
        // read is unambiguously ours.
        for w in resend {
            let mut attempt = 0u64;
            loop {
                retried.fetch_add(1, Ordering::Relaxed);
                attempt += 1;
                if attempt > 1000 {
                    die("wire request starved: not answered within the retry budget");
                }
                std::thread::sleep(Duration::from_micros(100 * attempt.min(50)));
                let reply = client
                    .request(refs[w], None)
                    .unwrap_or_else(|e| die(&format!("wire retry ({}): {e}", proto.name())));
                if reply.status == 200 {
                    verify(conn_idx * per_conn + k + w, &reply.labels);
                    answered.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                if !reply.is_retryable() {
                    die(&format!("non-retryable wire status {} on retry", reply.status));
                }
            }
        }
        k += window;
    }
}

/// One client request under chaos: every fourth first attempt carries a
/// tight deadline (exercising queue-side expiry), and every retryable
/// degradation — shed, expired, worker panic — is retried with backoff
/// until the request is answered. Increments `retried` once per degraded
/// attempt.
fn chaos_request(
    server: &PredictionServer,
    row: Row,
    k: usize,
    retried: &AtomicU64,
) -> crossmine_serve::Prediction {
    const MAX_ATTEMPTS: usize = 1000;
    for attempt in 0..MAX_ATTEMPTS {
        let submitted = if attempt == 0 && k.is_multiple_of(4) {
            server
                .serve(ServeRequest::row(row).deadline(Duration::from_micros(300)))
                .map(|mut handles| handles.pop().expect("one row in, one handle out"))
        } else {
            submit_with_retry(server, row, 100)
        };
        let outcome = submitted.and_then(|h| h.wait());
        match outcome {
            Ok(p) => return p,
            Err(e) if e.is_retryable() => {
                retried.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(100 * (attempt as u64 + 1)));
            }
            Err(e) => die(&format!("non-retryable error under chaos: {e}")),
        }
    }
    die("request starved: not answered within the chaos retry budget")
}

/// The `--profile` acceptance drill, run before shutdown while the
/// worker and poll threads still publish their span stacks. Dies unless
/// every surface holds: the folded stacks must carry the full worker
/// chain (`drive` feeds extra requests and forces sampler sweeps until
/// they do, so the check never races the sampling cadence), the
/// flamegraph must be a well-formed SVG, the heap report must attribute
/// the admission-queue lock, and — when telemetry is bound — all three
/// must also answer over real TCP. Prints one grep-able
/// `profile proof:` line per check plus soft `profile note:` lines for
/// the short-lived frames whose sampling is load-dependent.
fn profile_proof(
    profiler: &Profiler,
    telemetry: Option<std::net::SocketAddr>,
    wire: bool,
    mut drive: impl FnMut(),
) {
    const CHAIN: &str = "serve.worker;serve.batch;serve.eval";
    let deadline = Instant::now() + Duration::from_secs(20);
    while !profiler.collapsed().contains(CHAIN) {
        if Instant::now() >= deadline {
            die(&format!(
                "--profile: sampler never observed {CHAIN}; folded stacks:\n{}",
                profiler.collapsed()
            ));
        }
        drive();
        profiler.sample_now();
    }
    let collapsed = profiler.collapsed();
    println!();
    println!("profile proof: chain {CHAIN} observed");
    if wire {
        // net.poll is the poll thread's lifetime root: any sample taken
        // while the wire front end is up must carry it.
        if !collapsed.contains("net.poll") {
            die("--profile: wire run but net.poll never sampled");
        }
        println!("profile proof: net.poll observed");
    }

    let svg = profiler.flamegraph_svg();
    let well_formed = svg.starts_with("<svg")
        && svg.trim_end().ends_with("</svg>")
        && svg.matches("<g>").count() == svg.matches("</g>").count()
        && svg.contains("serve.eval");
    if !well_formed {
        die("--profile: flamegraph SVG is malformed or missing the eval frame");
    }
    println!("profile proof: flamegraph svg well-formed ({} bytes)", svg.len());

    let heap = profiler.heap_report();
    if !heap.contains("# heap:") || !heap.contains("# locks:") {
        die("--profile: heap report is missing its heap or lock table");
    }
    if !heap.contains("serve.queue") {
        die(&format!("--profile: no serve.queue lock-wait attribution:\n{heap}"));
    }
    let lock_rows = heap
        .lines()
        .skip_while(|l| !l.starts_with("# locks:"))
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count();
    println!(
        "profile proof: heap report {} bytes, {} lock-wait series (serve.queue attributed)",
        heap.len(),
        lock_rows
    );

    // Short-lived frames: whether a 1997 Hz sampler lands inside them
    // depends on load shape, so presence is reported, not asserted.
    for frame in
        ["net.sniff", "net.parse", "net.write", "serve.admission", "serve.wait", "shard.route"]
    {
        println!("profile note: {frame} sampled={}", collapsed.contains(frame));
    }

    if let Some(addr) = telemetry {
        let over_tcp = http_get(addr, "/profile");
        if !over_tcp.contains(CHAIN) {
            die("--profile: GET /profile is missing the worker chain");
        }
        let svg_tcp = http_get(addr, "/profile/flamegraph");
        if !svg_tcp.starts_with("<svg") {
            die("--profile: GET /profile/flamegraph did not answer an SVG");
        }
        let heap_tcp = http_get(addr, "/profile/heap");
        if !heap_tcp.contains("# locks:") {
            die("--profile: GET /profile/heap is missing the lock table");
        }
        println!("profile proof: /profile /profile/flamegraph /profile/heap live over TCP");
    }
}

/// One blocking HTTP/1.1 GET against the telemetry endpoint, returning
/// the response body. Any failure is fatal: `--prom` exists to prove the
/// endpoint works, so a scrape error is a result, not an inconvenience.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .unwrap_or_else(|e| die(&format!("scrape: connect {addr}: {e}")));
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap_or_else(|e| die(&format!("scrape: send: {e}")));
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap_or_else(|e| die(&format!("scrape: read: {e}")));
    let (head, body) =
        response.split_once("\r\n\r\n").unwrap_or_else(|| die("scrape: malformed HTTP response"));
    if !head.starts_with("HTTP/1.1 200") {
        die(&format!("scrape: GET {path} answered {}", head.lines().next().unwrap_or("")));
    }
    body.to_string()
}

/// Writes every train-side then serve-side metric as one JSON object per
/// line (the `crossmine-obs` JSONL schema).
fn export_jsonl(path: &str, train_obs: &ObsHandle, serve_obs: &ObsHandle) {
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => die(&format!("cannot create {path}: {e}")),
    };
    let mut w = std::io::BufWriter::new(file);
    for obs in [train_obs, serve_obs] {
        if let Err(e) = obs.write_metrics_jsonl(&mut w) {
            die(&format!("cannot write {path}: {e}"));
        }
    }
}

/// Serve the whole batch against a disk-resident copy through a small
/// buffer pool: parity with in-memory prediction plus a non-trivial cache
/// hit rate, reported via the pool's `Display` stats.
fn disk_check(db: &Database, plan: &CompiledPlan, rows: &[Row], expected: &[ClassLabel]) {
    let path = std::env::temp_dir().join(format!("crossmine-loadgen-{}.pages", std::process::id()));
    let mut disk = match DiskDatabase::spill(db, &path, 16) {
        Ok(d) => d,
        Err(e) => die(&format!("spill failed: {e:?}")),
    };
    let got = match predict_disk(plan, &mut disk, rows) {
        Ok(g) => g,
        Err(e) => die(&format!("disk prediction failed: {e:?}")),
    };
    let stats = disk.stats();
    std::fs::remove_file(&path).ok();
    if got != expected {
        die("disk-resident prediction diverged from in-memory prediction");
    }
    if stats.hits == 0 {
        die(&format!("disk serving never hit the buffer pool: {stats}"));
    }
    println!("disk parity OK through 16-page pool: {stats}");
}
