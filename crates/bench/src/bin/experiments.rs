//! Regenerates the CrossMine paper's evaluation tables and figures.
//!
//! ```text
//! experiments [fig9 fig10 fig11 fig12 table2 table3 | all]
//!             [--full] [--timeout SECONDS] [--seed N]
//! ```
//!
//! Scaled sizes run in minutes; `--full` uses the paper's parameters (the
//! join-based baselines may then run for hours — raise `--timeout`).

use std::time::Duration;

use crossmine_bench::{
    ablations, fig10, fig11, fig12, fig9, render, table2, table3, HarnessConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = HarnessConfig::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => config.full = true,
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--timeout needs a number of seconds"));
                config.timeout = Duration::from_secs(secs);
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "all" => experiments.extend(
                ["fig9", "fig10", "fig11", "fig12", "table2", "table3", "ablations"]
                    .iter()
                    .map(|s| s.to_string()),
            ),
            name @ ("fig9" | "fig10" | "fig11" | "fig12" | "table2" | "table3" | "ablations") => {
                experiments.push(name.to_string())
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if experiments.is_empty() {
        usage("no experiment selected");
    }

    println!(
        "# CrossMine experiment harness — {} sizes, baseline timeout {:?}, seed {}\n",
        if config.full { "FULL (paper)" } else { "scaled" },
        config.timeout,
        config.seed
    );
    for exp in experiments {
        let (title, rows) = match exp.as_str() {
            "fig9" => {
                ("Figure 9: runtime & accuracy vs number of relations (Rx.T*.F2)", fig9(&config))
            }
            "fig10" => {
                ("Figure 10: runtime & accuracy vs tuples per relation (R20.Tx.F2)", fig10(&config))
            }
            "fig11" => {
                ("Figure 11: CrossMine+sampling on large databases (R20.Tx.F2)", fig11(&config))
            }
            "fig12" => {
                ("Figure 12: runtime & accuracy vs foreign keys (R20.T*.Fx)", fig12(&config))
            }
            "table2" => ("Table 2: PKDD CUP'99 financial database", table2(&config)),
            "ablations" => ("Ablations: CrossMine design choices (DESIGN.md)", ablations(&config)),
            "table3" => ("Table 3: Mutagenesis database", table3(&config)),
            _ => unreachable!("validated above"),
        };
        println!("{}", render(title, &rows));
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments [fig9 fig10 fig11 fig12 table2 table3 ablations | all] \
         [--full] [--timeout SECONDS] [--seed N]"
    );
    std::process::exit(2);
}
