//! Measures the wall-clock cost of observability on training.
//!
//! Trains the §7.1 `R5.T200.F3` workload repeatedly with the default no-op
//! [`ObsHandle`] and again with an enabled (aggregate-only) handle —
//! *identical* parameters otherwise, so the learned clauses are the same —
//! and reports both means and the relative overhead. The acceptance target
//! is < 5% overhead for the enabled aggregate path; the no-op path is
//! additionally covered by allocation-count tests in `crossmine-core`.
//!
//! ```text
//! cargo run --release -p crossmine-bench --bin obs_overhead
//! cargo run --release -p crossmine-bench --bin obs_overhead -- --reps 20
//! ```

use std::time::{Duration, Instant};

use crossmine_core::{CrossMine, CrossMineParams};
use crossmine_obs::ObsHandle;
use crossmine_relational::Row;
use crossmine_synth::{generate, GenParams};

fn main() {
    let mut reps = 10usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--reps" => {
                i += 1;
                reps = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--reps needs a positive integer");
            }
            other => panic!("unknown flag {other} (try --reps N)"),
        }
        i += 1;
    }

    let db = generate(&GenParams {
        num_relations: 5,
        expected_tuples: 200,
        min_tuples: 60,
        expected_foreign_keys: 3,
        seed: 42,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
    println!("R5.T200.F3 ({} target rows), {reps} reps per configuration", rows.len());

    let fit = |obs: ObsHandle| -> (Duration, usize) {
        let cm =
            CrossMine::new(CrossMineParams::builder().sampling(true).obs(obs).build().unwrap());
        let start = Instant::now();
        let model = cm.fit(&db, &rows).expect("generated database is valid");
        (start.elapsed(), model.num_clauses())
    };

    // Interleave configurations so drift (thermal, cache) hits both evenly;
    // one untimed warmup each.
    let (_, baseline_clauses) = fit(ObsHandle::noop());
    let (_, instrumented_clauses) = fit(ObsHandle::enabled());
    assert_eq!(
        baseline_clauses, instrumented_clauses,
        "observability must not change what is learned"
    );
    let mut noop = Duration::ZERO;
    let mut enabled = Duration::ZERO;
    for _ in 0..reps {
        noop += fit(ObsHandle::noop()).0;
        enabled += fit(ObsHandle::enabled()).0;
    }
    let noop_mean = noop / reps as u32;
    let enabled_mean = enabled / reps as u32;
    let overhead = enabled_mean.as_secs_f64() / noop_mean.as_secs_f64() - 1.0;
    println!("no-op handle:    {noop_mean:?} mean");
    println!("enabled handle:  {enabled_mean:?} mean");
    println!("overhead:        {:+.1}%", overhead * 100.0);
    if overhead > 0.05 {
        eprintln!("obs_overhead: WARNING: overhead above the 5% target");
        std::process::exit(1);
    }
    println!("OK: within the 5% overhead target");
}
