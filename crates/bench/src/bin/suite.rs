//! The continuous-bench suite and its regression gate.
//!
//! Runs the pinned benchmark suite (learner fits, warm propagation, the
//! serve evaluator, end-to-end serve latency, and socket-to-socket wire
//! latency through the `crossmine-net` front end), aggregates every
//! benchmark into median-of-N with a MAD noise band, and optionally
//! writes the schema-versioned report or gates it against a committed
//! baseline:
//!
//! ```text
//! cargo run --release -p crossmine-bench --bin suite
//! cargo run --release -p crossmine-bench --bin suite -- --out BENCH_crossmine.json
//! cargo run --release -p crossmine-bench --bin suite -- --smoke --check BENCH_crossmine.json
//! ```
//!
//! `--check FILE` exits non-zero when any benchmark's fresh median
//! exceeds `baseline × 1.15 + 3 × MAD` — more than 15 % slower and
//! outside the baseline's noise band — **in two independent runs**: a
//! benchmark that regresses is re-measured in isolation, and only a
//! repeat offense fails the gate. A transient scheduler stall during one
//! measurement and a real regression are indistinguishable in a single
//! run; only the regression reproduces. When the baseline was recorded on
//! a different kind of machine (fingerprint mismatch) regressions are
//! printed as warnings and the gate passes: absolute times don't
//! transfer across hardware. `--smoke` skips the expensive fit so CI can
//! run the gate on every push; the remaining benchmark names still match
//! a full baseline. `--cache-budget N` pins the learner's count-store
//! budget in bytes (0 disables it and skips the plain fit benches, which
//! would duplicate the always-disabled `.nocache` variants).

use crossmine_bench::suite::{check, run_suite, BenchReport, SuiteConfig};

struct Args {
    config: SuiteConfig,
    out: Option<String>,
    check_against: Option<String>,
}

fn parse_args() -> Args {
    let mut config = SuiteConfig::default();
    let mut out = None;
    let mut check_against = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take_num = |i: &mut usize| -> u64 {
            *i += 1;
            argv.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&format!("{} needs a numeric value", argv[*i - 1])))
        };
        let take_str = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| die(&format!("{} needs a value", argv[*i - 1])))
        };
        match argv[i].as_str() {
            "--smoke" => {
                let samples = config.samples;
                let cache_budget = config.cache_budget;
                config = SuiteConfig::smoke();
                // Explicit --samples / --cache-budget before --smoke still win.
                if samples != SuiteConfig::default().samples {
                    config.samples = samples;
                }
                config.cache_budget = cache_budget;
            }
            "--samples" => config.samples = take_num(&mut i) as usize,
            "--requests" => config.serve_requests = take_num(&mut i) as usize,
            "--seed" => config.seed = take_num(&mut i),
            "--only" => config.only = Some(take_str(&mut i)),
            "--cache-budget" => config.cache_budget = Some(take_num(&mut i) as usize),
            "--out" => out = Some(take_str(&mut i)),
            "--check" => check_against = Some(take_str(&mut i)),
            other => die(&format!("unknown flag {other} (try --smoke, --out, --check)")),
        }
        i += 1;
    }
    if config.samples == 0 {
        die("--samples must be at least 1");
    }
    Args { config, out, check_against }
}

fn die(msg: &str) -> ! {
    eprintln!("suite: {msg}");
    std::process::exit(1)
}

fn main() {
    let args = parse_args();
    let mode = if args.config.smoke { "smoke" } else { "full" };
    println!(
        "continuous-bench suite ({mode}, {} samples per bench, {} serve requests)",
        args.config.samples, args.config.serve_requests
    );
    let report = run_suite(&args.config, |line| println!("  {line}"));

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = &args.check_against {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")));
        let baseline =
            BenchReport::from_json(&text).unwrap_or_else(|e| die(&format!("baseline {path}: {e}")));
        let outcome = check(&baseline, &report);
        println!("gate against {path}:");
        print!("{}", outcome.render());
        if outcome.failed() {
            // One bad measurement doesn't distinguish a scheduler stall
            // from a real slowdown — but only the slowdown repeats.
            // Re-measure each regressed benchmark in isolation and fail
            // on repeat offenders only.
            let names: Vec<String> = outcome.regressions().map(|c| c.name.clone()).collect();
            println!(
                "re-measuring {} regressed benchmark(s) to rule out transient noise",
                names.len()
            );
            let mut confirmed = Vec::new();
            for name in &names {
                let retry_config = SuiteConfig { only: Some(name.clone()), ..args.config.clone() };
                let retry = run_suite(&retry_config, |line| println!("  retry {line}"));
                let retry_outcome = check(&baseline, &retry);
                if retry_outcome.regressions().any(|c| &c.name == name) {
                    confirmed.push(name.clone());
                }
            }
            if !confirmed.is_empty() {
                for name in &confirmed {
                    eprintln!("suite: {name} regressed in two independent runs");
                }
                eprintln!("suite: regression gate FAILED");
                std::process::exit(1);
            }
            println!("regression gate passed (initial regressions did not reproduce)");
        } else {
            println!("regression gate passed");
        }
    }
}
