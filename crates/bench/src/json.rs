//! A minimal JSON value type with a parser and renderer.
//!
//! The workspace is zero-dependency, so the continuous-bench suite cannot
//! reach for serde; it needs exactly one document shape — the
//! `BENCH_crossmine.json` regression baseline — read back by
//! `suite --check`. This module implements the subset of JSON that shape
//! needs (which happens to be all of standard JSON) with a recursive
//! descent parser and a deterministic renderer whose pretty form diffs
//! cleanly under version control.
//!
//! Numbers are `f64` throughout: bench medians and MADs are fractional,
//! and every integer the suite stores (schema versions, sample counts)
//! fits `f64` exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved so rendering is
    /// deterministic and diffs stay minimal.
    Obj(Vec<(String, Json)>),
}

/// Why a document failed to parse, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Render compactly (single line, no spaces).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation and a trailing newline — the form
    /// committed to version control.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Render a finite `f64` so that it parses back to the same value and is
/// valid JSON (no `NaN`/`inf` — those become `null`, which the suite never
/// produces for real measurements).
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    // `{}` on f64 is round-trip exact in Rust and never produces a bare
    // exponent without digits, so the output is always a valid JSON number.
    let s = format!("{n}");
    debug_assert!(s.parse::<f64>().map(|r| r == n).unwrap_or(false));
    s
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through by char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek returned Some");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse and consume exactly four hex digits.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for i in 0..4 {
            let b = self
                .bytes
                .get(self.pos + i)
                .copied()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.get("d").unwrap(), &Json::Obj(vec![]));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("serve.latency \"p99\"".into())),
            ("median".into(), Json::Num(123.456)),
            ("samples".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
        ]);
        for rendered in [v.render(), v.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), v, "from {rendered}");
        }
        assert!(!v.render().contains('\n'));
        assert!(v.render_pretty().ends_with('}') || v.render_pretty().ends_with("}\n"));
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        let v = Json::parse(r#""é😀x""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀x");
        let escaped = "\"\\u00e9\\ud83d\\ude00\"";
        let v = Json::parse(escaped).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀", "escaped form incl. surrogate pair");
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone surrogate must fail");
        // Control characters render escaped and parse back.
        let s = Json::Str("a\u{1}b".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn numbers_roundtrip_exactly() {
        for n in [0.0, -0.5, 1e-9, 123456789.125, 1.15, 3.0] {
            let rendered = Json::Num(n).render();
            assert_eq!(Json::parse(&rendered).unwrap().as_f64(), Some(n), "{rendered}");
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
