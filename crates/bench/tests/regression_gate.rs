//! End-to-end contract of the continuous-bench regression gate:
//!
//! * an unmodified tree benched twice stays within the noise bands — the
//!   gate passes;
//! * a genuine slowdown — injected here as a per-batch worker stall via
//!   [`ChaosConfig`] — blows past `baseline × 1.15 + 3 × MAD` on the
//!   serve-latency benchmarks and the gate demonstrably fails;
//! * the report written by one run parses back bit-identically, so the
//!   committed `BENCH_crossmine.json` is a valid baseline.
//!
//! The suite here runs in smoke mode with few samples/requests: the gate
//! logic under test is identical, only the absolute numbers shrink.

use std::sync::Mutex;

use crossmine_bench::suite::{check, run_suite, slowdown_chaos, BenchReport, SuiteConfig};

/// These tests time real work; running them concurrently on one box would
/// have them regress *each other*. One lock serializes the binary.
static BENCH_LOCK: Mutex<()> = Mutex::new(());

/// A fast configuration for gating tests: serve benches only (the fit and
/// propagation benches don't react to server chaos and just cost time).
fn serve_only(samples: usize, requests: usize) -> SuiteConfig {
    SuiteConfig {
        samples,
        smoke: true,
        serve_requests: requests,
        only: Some("serve.latency".to_string()),
        ..SuiteConfig::default()
    }
}

/// Rebuild one report whose per-bench samples are the medians of several
/// runs. Used to *interleave* baseline and fresh measurements: sequential
/// blocks drift systematically (allocator state, CPU throttling —
/// especially under the debug profile), which is exactly what
/// alternating run assignment cancels.
fn merged(runs: &[BenchReport]) -> BenchReport {
    use crossmine_bench::suite::{mad, median};
    let mut proto = runs[0].clone();
    for sample in &mut proto.results {
        let values: Vec<f64> = runs
            .iter()
            .map(|r| {
                r.results
                    .iter()
                    .find(|s| s.name == sample.name)
                    .expect("one config measures one set of names")
                    .median
            })
            .collect();
        sample.median = median(&values);
        sample.mad = mad(&values);
        sample.samples = values;
    }
    proto
}

#[test]
fn unmodified_tree_passes_the_gate() {
    let _serial = BENCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config =
        SuiteConfig { samples: 1, smoke: true, serve_requests: 100, ..SuiteConfig::default() };
    let mut baseline_runs = Vec::new();
    let mut fresh_runs = Vec::new();
    // Ten alternating runs, five per side: debug-profile medians on a
    // small machine see occasional ~1.3x outliers (allocator state shifts
    // between runs), and a median of five absorbs two of them where a
    // median of three flips on one.
    for i in 0..10 {
        let run = run_suite(&config, |_| {});
        assert!(!run.results.is_empty());
        if i % 2 == 0 { &mut baseline_runs } else { &mut fresh_runs }.push(run);
    }
    let mut baseline = merged(&baseline_runs);
    let mut fresh = merged(&fresh_runs);
    // The warm-propagation bench is bimodal under the *debug* profile
    // (~8ms vs ~13ms depending on where the freshly generated CSR lands
    // in the heap — pointer-chasing cost the optimizer normally hides),
    // so median-vs-median comparison of debug runs is a coin flip for it.
    // Release builds measure it with ~2% MAD; the release-profile gate in
    // CI (`suite --smoke --check`) covers it. Everything else holds here.
    let debug_bimodal = "propagation.predict.R5.T200.F3";
    baseline.results.retain(|s| s.name != debug_bimodal);
    fresh.results.retain(|s| s.name != debug_bimodal);
    // Tail quantiles are likewise debug-only noise: a p99 is one request
    // out of a hundred, and under the debug profile on a small machine a
    // single scheduler hiccup moves it 1.5x between otherwise identical
    // runs. The release gate in CI pins the tails; medians hold here.
    baseline.results.retain(|s| !s.name.ends_with("_p99"));
    fresh.results.retain(|s| !s.name.ends_with("_p99"));
    assert_eq!(
        baseline.results.iter().map(|s| &s.name).collect::<Vec<_>>(),
        fresh.results.iter().map(|s| &s.name).collect::<Vec<_>>(),
        "the suite is pinned: every run of one config measures the same names"
    );

    let outcome = check(&baseline, &fresh);
    assert!(outcome.fingerprint_match, "same process, same machine");
    assert_eq!(outcome.comparisons.len(), baseline.results.len());
    assert!(
        !outcome.failed(),
        "interleaved runs of an unmodified tree must stay within the noise \
         bands:\n{}",
        outcome.render()
    );
}

#[test]
fn injected_stall_fails_the_gate() {
    let _serial = BENCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = run_suite(&serve_only(3, 60), |_| {});
    assert!(
        baseline.results.iter().any(|s| s.name == "serve.latency_p50"),
        "the filter must keep the serve latency benches"
    );

    // A 5 ms stall before every batch dwarfs any real serve latency on any
    // machine; this is the synthetic 2x-plus slowdown of the acceptance
    // criteria, injected through the server's own fault-injection hooks.
    let slowed_config = SuiteConfig { chaos: slowdown_chaos(), ..serve_only(2, 40) };
    let slowed = run_suite(&slowed_config, |_| {});

    let outcome = check(&baseline, &slowed);
    assert!(outcome.fingerprint_match);
    assert!(
        outcome.failed(),
        "a per-batch stall must trip the regression gate:\n{}",
        outcome.render()
    );
    let p50 = outcome.regressions().find(|c| c.name == "serve.latency_p50").unwrap_or_else(|| {
        panic!("the stall hits every request, so the median must regress:\n{}", outcome.render())
    });
    // The median is where the 2x-plus claim is robust: every request eats
    // the full stall. (Tail quantiles are already stall-dominated in the
    // baseline of slow debug builds, so their ratio can sit near 1.)
    assert!(
        p50.ratio > 2.0,
        "a 5 ms per-batch stall should slow the median far beyond 2x, measured x{:.2}",
        p50.ratio
    );
}

#[test]
fn suite_report_is_a_valid_committable_baseline() {
    let _serial = BENCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let report = run_suite(&serve_only(2, 40), |_| {});
    let text = report.to_json();
    assert!(text.ends_with('\n'), "committed files end with a newline");
    let parsed = BenchReport::from_json(&text).expect("suite output parses back");
    assert_eq!(parsed, report);

    // And it gates cleanly against itself.
    let outcome = check(&parsed, &report);
    assert!(!outcome.failed());
    assert!(outcome.missing.is_empty());
}
