//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, std-only implementation of the `rand 0.8` API surface it
//! actually uses: [`rngs::StdRng`] (a xoshiro256++ generator), the
//! [`SeedableRng`]/[`Rng`] traits with `gen`, `gen_range`, and `gen_bool`,
//! and [`seq::SliceRandom`] with `shuffle`/`choose`. Streams are
//! deterministic per seed but do not match upstream `rand` byte-for-byte.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Low-level source of random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64`/`f32` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics when the range is empty, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform sampling of an integer count in `[0, span)` without noticeable
/// modulo bias (span is always far below 2^64 in this workspace).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply trick: map 64 random bits onto [0, span).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        let u: f64 = f64::sample_standard(rng);
        start + (end - start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9u32..=9), 9);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "p=0.25 of 2000 gave {hits}");
    }

    #[test]
    fn range_distribution_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of tolerance");
        }
    }
}
