//! Slice sampling helpers (the `rand::seq` subset used by the workspace).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements staying sorted is astronomically unlikely");
    }

    #[test]
    fn choose_behavior() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u32];
        assert_eq!(one.choose(&mut rng), Some(&42));
        let many = [1u32, 2, 3, 4];
        for _ in 0..20 {
            assert!(many.contains(many.choose(&mut rng).unwrap()));
        }
    }
}
