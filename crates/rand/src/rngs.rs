//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++, seeded through
/// SplitMix64. Fast, 256-bit state, passes BigCrush — more than enough for
/// synthetic-data generation and sampling. Not cryptographically secure.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 never
        // produces four zeros from one seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
