//! Protocol sniffing: both protocols share one port, distinguished by the
//! first byte of the connection.
//!
//! * HTTP/1.1 requests start with an ASCII method token (`GET`, `POST`,
//!   ...), i.e. an uppercase letter.
//! * Binary frames start with [`REQ_MAGIC`](crate::frame::REQ_MAGIC)
//!   (`0xCE`), which is not a printable ASCII byte and can therefore never
//!   begin a well-formed HTTP request.
//!
//! Anything else is neither protocol: the connection is closed cleanly
//! without a response (we cannot know how the peer wants errors framed).

use crate::frame::REQ_MAGIC;

/// The sniffer's verdict on a connection's first bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sniff {
    /// First byte looks like an HTTP method token.
    Http,
    /// First byte is the binary frame magic.
    Binary,
    /// No bytes yet.
    NeedMore,
    /// Neither protocol — close the connection.
    Unknown,
}

/// Classifies the first bytes of a connection.
pub fn sniff(first: &[u8]) -> Sniff {
    match first.first() {
        None => Sniff::NeedMore,
        Some(&REQ_MAGIC) => Sniff::Binary,
        Some(b) if b.is_ascii_uppercase() => Sniff::Http,
        Some(_) => Sniff::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_table() {
        assert_eq!(sniff(b""), Sniff::NeedMore);
        assert_eq!(sniff(b"POST /predict HTTP/1.1\r\n"), Sniff::Http);
        assert_eq!(sniff(b"G"), Sniff::Http);
        assert_eq!(sniff(&[REQ_MAGIC, 0, 0]), Sniff::Binary);
        assert_eq!(sniff(b"post lowercase"), Sniff::Unknown);
        assert_eq!(sniff(&[0x00]), Sniff::Unknown);
        assert_eq!(sniff(&[0xFF]), Sniff::Unknown);
    }

    #[test]
    fn magic_is_not_a_method_byte() {
        assert!(!REQ_MAGIC.is_ascii_uppercase());
    }
}
