//! Network-path metrics: per-connection and per-protocol counters plus
//! stage latency histograms, all flowing through `crossmine-obs` so the
//! existing `/metrics` endpoint exports them as `crossmine_net_*`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crossmine_obs::{Exemplars, ObsHandle};

/// Relaxed-ordering counters for the hot poll loop, mirrored into the
/// obs registry for export. Counters are monotonic; gauges are derived
/// (`open = accepted - closed`).
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections closed (any reason).
    pub closed: AtomicU64,
    /// Connections shed at accept because the connection table was full.
    pub accept_shed: AtomicU64,
    /// Connections reaped by the idle timeout.
    pub idle_closed: AtomicU64,
    /// Connections that sniffed as HTTP.
    pub http_conns: AtomicU64,
    /// Connections that sniffed as binary.
    pub binary_conns: AtomicU64,
    /// Connections whose first byte was neither protocol.
    pub unknown_conns: AtomicU64,
    /// Predict requests parsed off HTTP connections.
    pub http_requests: AtomicU64,
    /// Predict requests parsed off binary connections.
    pub binary_requests: AtomicU64,
    /// Requests answered with a non-200 status (any protocol).
    pub wire_errors: AtomicU64,
    /// Bytes read from sockets.
    pub bytes_read: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_written: AtomicU64,
    /// Current adaptive sweep backoff of the poll loop, in microseconds.
    /// Gauge, not counter: exported as `crossmine_net_sweep_backoff_us` so
    /// the 20µs–1ms idle ramp is visible on /metrics.
    pub sweep_backoff_us: AtomicU64,
    /// Most recent `TraceId` per wire-latency log2 bucket. Joined against
    /// `net.request_us` so a tail bucket resolves to a stored trace.
    pub request_exemplars: Exemplars,
}

impl NetMetrics {
    /// Bumps a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Mirrors every counter into the obs handle (called periodically by
    /// the poll thread; obs counters are set via delta to stay monotonic).
    /// Deltas are clamped at zero: a counter that moved backwards (reset
    /// after a listener restart) must not wrap into a huge u64 bump.
    pub fn publish(&self, obs: &ObsHandle, last: &mut NetCountersSnapshot) {
        let cur = self.snapshot();
        obs.add("net.accepted", cur.accepted.saturating_sub(last.accepted));
        obs.add("net.closed", cur.closed.saturating_sub(last.closed));
        obs.add("net.accept_shed", cur.accept_shed.saturating_sub(last.accept_shed));
        obs.add("net.idle_closed", cur.idle_closed.saturating_sub(last.idle_closed));
        obs.add("net.http_conns", cur.http_conns.saturating_sub(last.http_conns));
        obs.add("net.binary_conns", cur.binary_conns.saturating_sub(last.binary_conns));
        obs.add("net.unknown_conns", cur.unknown_conns.saturating_sub(last.unknown_conns));
        obs.add("net.http_requests", cur.http_requests.saturating_sub(last.http_requests));
        obs.add("net.binary_requests", cur.binary_requests.saturating_sub(last.binary_requests));
        obs.add("net.wire_errors", cur.wire_errors.saturating_sub(last.wire_errors));
        obs.add("net.bytes_read", cur.bytes_read.saturating_sub(last.bytes_read));
        obs.add("net.bytes_written", cur.bytes_written.saturating_sub(last.bytes_written));
        obs.gauge_set("net.open_conns", cur.accepted.saturating_sub(cur.closed) as i64);
        obs.gauge_set("net.sweep_backoff_us", Self::get(&self.sweep_backoff_us) as i64);
        *last = cur;
    }

    /// A coherent-enough copy of all counters.
    pub fn snapshot(&self) -> NetCountersSnapshot {
        NetCountersSnapshot {
            accepted: Self::get(&self.accepted),
            closed: Self::get(&self.closed),
            accept_shed: Self::get(&self.accept_shed),
            idle_closed: Self::get(&self.idle_closed),
            http_conns: Self::get(&self.http_conns),
            binary_conns: Self::get(&self.binary_conns),
            unknown_conns: Self::get(&self.unknown_conns),
            http_requests: Self::get(&self.http_requests),
            binary_requests: Self::get(&self.binary_requests),
            wire_errors: Self::get(&self.wire_errors),
            bytes_read: Self::get(&self.bytes_read),
            bytes_written: Self::get(&self.bytes_written),
        }
    }
}

/// Point-in-time counter values (also the delta base for publishing).
/// Fields mirror [`NetMetrics`] one-to-one.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct NetCountersSnapshot {
    pub accepted: u64,
    pub closed: u64,
    pub accept_shed: u64,
    pub idle_closed: u64,
    pub http_conns: u64,
    pub binary_conns: u64,
    pub unknown_conns: u64,
    pub http_requests: u64,
    pub binary_requests: u64,
    pub wire_errors: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

/// Records elapsed microseconds into an obs histogram when dropped —
/// wraps the accept/read/decode/write stages of the poll loop.
pub struct StageTimer<'a> {
    obs: &'a ObsHandle,
    name: &'static str,
    start: Instant,
}

impl<'a> StageTimer<'a> {
    /// Starts timing one stage.
    pub fn start(obs: &'a ObsHandle, name: &'static str) -> Self {
        StageTimer { obs, name, start: Instant::now() }
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.obs.record(self.name, us);
    }
}

/// Histogram names the poll loop records (microseconds). Exported as
/// `crossmine_net_<stage>_us` by the telemetry endpoint.
pub const STAGE_ACCEPT_US: &str = "net.accept_us";
/// Time spent in one read readiness burst.
pub const STAGE_READ_US: &str = "net.read_us";
/// Time spent parsing/decoding after a read.
pub const STAGE_DECODE_US: &str = "net.decode_us";
/// Time spent in one write readiness burst.
pub const STAGE_WRITE_US: &str = "net.write_us";
/// End-to-end wire latency per request: first byte read off the socket to
/// last reply byte flushed back onto it. Recorded by the listener when a
/// request's reply bytes drain; joined to traces via
/// [`NetMetrics::request_exemplars`].
pub const STAGE_REQUEST_US: &str = "net.request_us";

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_obs::ObsHandle;

    #[test]
    fn publish_is_delta_based_and_monotonic() {
        let obs = ObsHandle::enabled();
        let m = NetMetrics::default();
        let mut last = NetCountersSnapshot::default();
        NetMetrics::add(&m.accepted, 3);
        NetMetrics::inc(&m.http_conns);
        m.publish(&obs, &mut last);
        NetMetrics::add(&m.accepted, 2);
        NetMetrics::inc(&m.closed);
        m.publish(&obs, &mut last);
        let reg = obs.registry().expect("enabled");
        let counters: std::collections::HashMap<_, _> = reg.counter_values().into_iter().collect();
        assert_eq!(counters.get("net.accepted"), Some(&5));
        assert_eq!(counters.get("net.http_conns"), Some(&1));
        assert_eq!(counters.get("net.closed"), Some(&1));
    }

    #[test]
    fn publish_clamps_backward_counters_to_zero() {
        let obs = ObsHandle::enabled();
        let m = NetMetrics::default();
        // Pretend a previous listener instance published larger values:
        // the fresh metrics struct is "behind" the delta base.
        let mut last =
            NetCountersSnapshot { accepted: 10, bytes_read: 1_000, ..Default::default() };
        NetMetrics::add(&m.accepted, 2);
        m.publish(&obs, &mut last);
        let reg = obs.registry().expect("enabled");
        let counters: std::collections::HashMap<_, _> = reg.counter_values().into_iter().collect();
        // Raw subtraction would have produced 2u64.wrapping_sub(10) ≈ u64::MAX.
        assert_eq!(counters.get("net.accepted").copied().unwrap_or(0), 0);
        assert_eq!(counters.get("net.bytes_read").copied().unwrap_or(0), 0);
        // open_conns likewise saturates instead of going hugely positive.
        let gauges: std::collections::HashMap<_, _> = reg.gauge_values().into_iter().collect();
        assert_eq!(gauges.get("net.open_conns"), Some(&2));
    }

    #[test]
    fn sweep_backoff_gauge_is_published() {
        let obs = ObsHandle::enabled();
        let m = NetMetrics::default();
        m.sweep_backoff_us.store(640, Ordering::Relaxed);
        let mut last = NetCountersSnapshot::default();
        m.publish(&obs, &mut last);
        let reg = obs.registry().expect("enabled");
        let gauges: std::collections::HashMap<_, _> = reg.gauge_values().into_iter().collect();
        assert_eq!(gauges.get("net.sweep_backoff_us"), Some(&640));
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let obs = ObsHandle::enabled();
        {
            let _t = StageTimer::start(&obs, STAGE_DECODE_US);
        }
        let h = obs.histogram(STAGE_DECODE_US).expect("registered");
        assert_eq!(h.count(), 1);
    }
}
