//! The workspace's one HTTP/1.1 parser and response writer.
//!
//! Serves two masters: the wire front end (`POST /predict` with
//! keep-alive and pipelining) and the telemetry endpoint in
//! `crossmine-serve` (tiny bodyless `GET`s), so the repo has exactly one
//! implementation of request parsing.
//!
//! The parser is **incremental and pipelining-aware**: [`parse_request`]
//! inspects a byte buffer, returns `Ok(None)` while the request is still
//! incomplete, and on success reports how many bytes it consumed so the
//! caller can slice them off and parse the next pipelined request from
//! the remainder. It never blocks, never panics on arbitrary bytes, and
//! enforces explicit header/body size limits.
//!
//! Grammar accepted (a deliberate HTTP/1.1 subset — see DESIGN §3g):
//!
//! ```text
//! request  = method SP path SP "HTTP/1." ("0" | "1") CRLF *header CRLF [body]
//! header   = token ":" OWS value CRLF        ; names case-insensitive
//! body     = exactly Content-Length bytes    ; no chunked encoding
//! ```

/// A parsed HTTP request. Header names are lowercased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request path with any query string split off into nothing —
    /// callers route on the path only.
    pub path: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of `name` (case-insensitive; pass lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be parsed. All variants map to `400` except
/// where noted; the connection is closed after responding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD SP PATH SP HTTP/1.x`.
    BadRequestLine,
    /// A header line has no `:` or a malformed name.
    BadHeader,
    /// `Content-Length` is present but not a decimal integer.
    BadContentLength,
    /// The header block exceeds the configured limit.
    HeadersTooLarge,
    /// The declared body exceeds the configured limit.
    BodyTooLarge,
    /// `Transfer-Encoding` was sent; this subset requires
    /// `Content-Length` framing.
    UnsupportedTransferEncoding,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::BadContentLength => write!(f, "malformed Content-Length"),
            HttpError::HeadersTooLarge => write!(f, "headers exceed limit"),
            HttpError::BodyTooLarge => write!(f, "body exceeds limit"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding unsupported; use Content-Length")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Size limits enforced during parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_header_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_header_bytes: 8 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full request is
/// available, `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// A typed [`HttpError`] as soon as the bytes read so far cannot be a
/// valid request — malformed framing is detected without waiting for
/// more input where possible.
pub fn parse_request(
    buf: &[u8],
    limits: &HttpLimits,
) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    // Find the end of the header block.
    let head_end = match find_subslice(buf, b"\r\n\r\n") {
        Some(i) => i,
        None => {
            if buf.len() > limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            return Ok(None);
        }
    };
    if head_end + 4 > limits.max_header_bytes {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = &buf[..head_end];
    let mut lines = head.split(|&b| b == b'\n').map(|l| l.strip_suffix(b"\r").unwrap_or(l));
    let request_line = lines.next().unwrap_or(b"");
    let request_line = std::str::from_utf8(request_line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || target.is_empty()
        || parts.next().is_some()
    {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequestLine),
    };
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let line = std::str::from_utf8(line).map_err(|_| HttpError::BadHeader)?;
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let n: usize = value.parse().map_err(|_| HttpError::BadContentLength)?;
            if n > limits.max_body_bytes {
                return Err(HttpError::BodyTooLarge);
            }
            content_length = n;
        }
        if name == "transfer-encoding" {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        headers.push((name, value));
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let request = HttpRequest {
        method: method.to_string(),
        path,
        http11,
        headers,
        body: buf[body_start..total].to_vec(),
    };
    Ok(Some((request, total)))
}

/// Serializes one response into `out`. `extra` headers are emitted
/// verbatim after the standard set; `keep_alive` controls the
/// `Connection` header.
pub fn write_response(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    let mut code = [0u8; 3];
    code[0] = b'0' + ((status / 100) % 10) as u8;
    code[1] = b'0' + ((status / 10) % 10) as u8;
    code[2] = b'0' + (status % 10) as u8;
    out.extend_from_slice(&code);
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    for (name, value) in extra {
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
    }
    out.extend_from_slice(if keep_alive {
        b"\r\nConnection: keep-alive\r\n\r\n" as &[u8]
    } else {
        b"\r\nConnection: close\r\n\r\n" as &[u8]
    });
    out.extend_from_slice(body);
}

/// Renders a `POST /predict` request — the client half of the protocol,
/// shared by `loadgen --net`, the suite benches, and the tests.
pub fn format_predict_request(rows: &[u32], deadline_ms: Option<u64>, keep_alive: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + rows.len() * 8);
    body.extend_from_slice(b"{\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push(b',');
        }
        body.extend_from_slice(r.to_string().as_bytes());
    }
    body.push(b']');
    if let Some(d) = deadline_ms {
        body.extend_from_slice(b",\"deadline_ms\":");
        body.extend_from_slice(d.to_string().as_bytes());
    }
    body.push(b'}');
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(b"POST /predict HTTP/1.1\r\nContent-Type: application/json\r\n");
    if !keep_alive {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"Content-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(&body);
    out
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    #[test]
    fn parses_a_full_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 12\r\nX-Deadline-Ms: 50\r\n\r\n{\"rows\":[1]}";
        let (req, consumed) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert!(req.http11);
        assert_eq!(req.header("x-deadline-ms"), Some("50"));
        assert_eq!(req.body, b"{\"rows\":[1]}");
        assert!(req.keep_alive());
    }

    #[test]
    fn incremental_and_pipelined() {
        let a = format_predict_request(&[1], None, true);
        let b = format_predict_request(&[2, 3], Some(9), false);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        // Byte-at-a-time: None until the first request completes.
        for cut in 1..a.len() {
            assert_eq!(parse_request(&stream[..cut], &limits()).unwrap(), None, "cut {cut}");
        }
        let (r1, c1) = parse_request(&stream, &limits()).unwrap().unwrap();
        assert_eq!(c1, a.len());
        assert!(r1.keep_alive());
        let (r2, c2) = parse_request(&stream[c1..], &limits()).unwrap().unwrap();
        assert_eq!(c1 + c2, stream.len());
        assert!(!r2.keep_alive(), "Connection: close honored");
        assert!(r2.body.windows(3).any(|w| w == b"2,3"));
    }

    #[test]
    fn query_strings_are_stripped_and_http10_closes() {
        let raw = b"GET /metrics?name=x HTTP/1.0\r\n\r\n";
        let (req, _) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.path, "/metrics");
        assert!(!req.http11);
        assert!(!req.keep_alive());
    }

    #[test]
    fn typed_parse_errors() {
        let l = limits();
        assert_eq!(parse_request(b"NOT-A-REQUEST\r\n\r\n", &l), Err(HttpError::BadRequestLine));
        assert_eq!(parse_request(b"POST /x HTTP/2.0\r\n\r\n", &l), Err(HttpError::BadRequestLine));
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nbad header\r\n\r\n", &l),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n", &l),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &l),
            Err(HttpError::UnsupportedTransferEncoding)
        );
        let small = HttpLimits { max_header_bytes: 16, max_body_bytes: 4 };
        assert_eq!(
            parse_request(b"POST /averylongpathname HTTP/1.1\r\n\r\n", &small),
            Err(HttpError::HeadersTooLarge)
        );
        let tiny_body = HttpLimits { max_header_bytes: 128, max_body_bytes: 4 };
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n", &tiny_body),
            Err(HttpError::BodyTooLarge)
        );
        // Oversized headers fail even before the terminator arrives.
        let unterminated = vec![b'A'; 64];
        assert_eq!(parse_request(&unterminated, &small), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn response_writer_shapes() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "Too Many Requests",
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
            true,
        );
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{s}");
        assert!(s.contains("Retry-After: 1\r\n"), "{s}");
        assert!(s.contains("Connection: keep-alive\r\n"), "{s}");
        assert!(s.ends_with("\r\n\r\n{}"), "{s}");
    }
}
