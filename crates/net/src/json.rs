//! A minimal, hostile-input-safe JSON reader for `/predict` bodies.
//!
//! The HTTP side of the wire protocol accepts exactly one document shape:
//!
//! ```json
//! {"rows": [0, 17, 42], "deadline_ms": 250}
//! ```
//!
//! `rows` is required (non-empty, each element a `u32` row id);
//! `deadline_ms` is optional. Unknown keys are skipped structurally so
//! clients may attach extra metadata. The parser is a recursive-descent
//! scanner with an explicit depth limit — arbitrary bytes must never
//! panic, recurse unboundedly, or allocate proportionally to claimed (as
//! opposed to actual) sizes; they yield a typed [`JsonError`] which the
//! connection layer turns into a `400`.

use crossmine_relational::Row;

/// Why a predict body was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonError {
    /// The bytes are not a well-formed JSON document.
    Syntax,
    /// Nesting exceeds the depth limit (defends the stack).
    TooDeep,
    /// The document is well-formed but not `{"rows": [u32, ...], ...}`.
    Shape,
    /// `rows` is present but empty — an empty batch is meaningless.
    EmptyRows,
    /// A row id or deadline is negative, fractional, or out of range.
    Range,
    /// `rows` has more elements than the configured batch limit.
    TooManyRows,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax => write!(f, "malformed JSON"),
            JsonError::TooDeep => write!(f, "JSON nested too deeply"),
            JsonError::Shape => write!(f, "body must be {{\"rows\": [row ids...]}}"),
            JsonError::EmptyRows => write!(f, "rows must be non-empty"),
            JsonError::Range => write!(f, "row ids and deadline_ms must be non-negative integers"),
            JsonError::TooManyRows => write!(f, "rows exceeds the batch limit"),
        }
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 32;

/// The fields extracted from a valid predict body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictBody {
    /// Target rows to score, decoded into `out_rows` by the caller.
    pub deadline_ms: Option<u64>,
}

/// Parses a `/predict` JSON body, appending the decoded rows to
/// `out_rows` (cleared first, capacity reused across requests).
///
/// # Errors
///
/// A [`JsonError`] describing the first problem found; `out_rows` content
/// is unspecified on error.
pub fn parse_predict_body(
    bytes: &[u8],
    max_rows: usize,
    out_rows: &mut Vec<Row>,
) -> Result<PredictBody, JsonError> {
    out_rows.clear();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    if p.next_byte() != Some(b'{') {
        return Err(JsonError::Shape);
    }
    p.pos += 1;
    let mut saw_rows = false;
    let mut deadline_ms = None;
    p.skip_ws();
    if p.next_byte() == Some(b'}') {
        return Err(JsonError::Shape);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        if p.next_byte() != Some(b':') {
            return Err(JsonError::Syntax);
        }
        p.pos += 1;
        p.skip_ws();
        match key.as_str() {
            "rows" => {
                saw_rows = true;
                p.parse_row_array(max_rows, out_rows)?;
            }
            "deadline_ms" => {
                deadline_ms = Some(p.parse_u64()?);
            }
            _ => p.skip_value(0)?,
        }
        p.skip_ws();
        match p.next_byte() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return Err(JsonError::Syntax),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::Syntax);
    }
    if !saw_rows {
        return Err(JsonError::Shape);
    }
    if out_rows.is_empty() {
        return Err(JsonError::EmptyRows);
    }
    Ok(PredictBody { deadline_ms })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn next_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.next_byte(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Parses a JSON string, resolving only the escapes we might see in
    /// keys; the value itself is discarded for unknown keys anyway.
    fn parse_string(&mut self) -> Result<String, JsonError> {
        if self.next_byte() != Some(b'"') {
            return Err(JsonError::Syntax);
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.next_byte() {
                None => return Err(JsonError::Syntax),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.next_byte() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            // \uXXXX — decoded permissively (lone
                            // surrogates map to the replacement char).
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(JsonError::Syntax);
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let s = std::str::from_utf8(hex).map_err(|_| JsonError::Syntax)?;
                            let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::Syntax)?;
                            out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::Syntax),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(JsonError::Syntax),
                Some(_) => {
                    // Copy a run of plain bytes, validating UTF-8 at the
                    // run boundary.
                    let start = self.pos;
                    while let Some(c) = self.next_byte() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::Syntax)?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, JsonError> {
        let start = self.pos;
        while matches!(self.next_byte(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            // A minus sign, fraction, or non-number lands here.
            return Err(JsonError::Range);
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError::Syntax)?;
        // A fractional part after the digits means a non-integer value.
        if matches!(self.next_byte(), Some(b'.' | b'e' | b'E')) {
            return Err(JsonError::Range);
        }
        s.parse().map_err(|_| JsonError::Range)
    }

    fn parse_row_array(&mut self, max_rows: usize, out: &mut Vec<Row>) -> Result<(), JsonError> {
        if self.next_byte() != Some(b'[') {
            return Err(JsonError::Shape);
        }
        self.pos += 1;
        self.skip_ws();
        if self.next_byte() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let v = self.parse_u64()?;
            let id = u32::try_from(v).map_err(|_| JsonError::Range)?;
            if out.len() >= max_rows {
                return Err(JsonError::TooManyRows);
            }
            out.push(Row(id));
            self.skip_ws();
            match self.next_byte() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(JsonError::Syntax),
            }
        }
    }

    /// Skips one JSON value of any type (for unknown keys), bounded by
    /// `MAX_DEPTH`.
    fn skip_value(&mut self, depth: usize) -> Result<(), JsonError> {
        if depth >= MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        self.skip_ws();
        match self.next_byte() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.next_byte() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.parse_string()?;
                    self.skip_ws();
                    if self.next_byte() != Some(b':') {
                        return Err(JsonError::Syntax);
                    }
                    self.pos += 1;
                    self.skip_value(depth + 1)?;
                    self.skip_ws();
                    match self.next_byte() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(JsonError::Syntax),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.next_byte() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_value(depth + 1)?;
                    self.skip_ws();
                    match self.next_byte() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(JsonError::Syntax),
                    }
                }
            }
            Some(b't') => self.expect_literal(b"true"),
            Some(b'f') => self.expect_literal(b"false"),
            Some(b'n') => self.expect_literal(b"null"),
            Some(b'-' | b'0'..=b'9') => {
                // Scan a number permissively; precision does not matter
                // for skipped values.
                self.pos += 1;
                while matches!(
                    self.next_byte(),
                    Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                ) {
                    self.pos += 1;
                }
                Ok(())
            }
            _ => Err(JsonError::Syntax),
        }
    }

    fn expect_literal(&mut self, lit: &[u8]) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError::Syntax)
        }
    }
}

/// Renders the success body: `{"epoch":E,"labels":[...]}`.
pub fn render_reply(epoch: u64, labels: &[u32], out: &mut Vec<u8>) {
    out.extend_from_slice(b"{\"epoch\":");
    push_u64(out, epoch);
    out.extend_from_slice(b",\"labels\":[");
    for (i, &l) in labels.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        push_u64(out, u64::from(l));
    }
    out.extend_from_slice(b"]}");
}

/// Renders an error body: `{"error":"...","code":N,"retryable":bool}`.
pub fn render_error(status: crate::wire::WireStatus, detail: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(b"{\"error\":\"");
    for c in detail.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            c if (c as u32) < 0x20 => out.extend_from_slice(b"?"),
            c => {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    out.extend_from_slice(b"\",\"code\":");
    push_u64(out, u64::from(status.code));
    out.extend_from_slice(if status.retry_after.is_some() {
        b",\"retryable\":true}"
    } else {
        b",\"retryable\":false}"
    });
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<(Vec<u32>, Option<u64>), JsonError> {
        let mut rows = Vec::new();
        parse_predict_body(s.as_bytes(), 1 << 20, &mut rows)
            .map(|b| (rows.iter().map(|r| r.0).collect(), b.deadline_ms))
    }

    #[test]
    fn happy_paths() {
        assert_eq!(parse(r#"{"rows":[1,2,3]}"#), Ok((vec![1, 2, 3], None)));
        assert_eq!(
            parse(r#" { "rows" : [ 0 ] , "deadline_ms" : 250 } "#),
            Ok((vec![0], Some(250)))
        );
        // Unknown keys of any JSON type are skipped.
        assert_eq!(
            parse(r#"{"tag":{"a":[1,{"b":null}]},"rows":[7],"x":"yA"}"#),
            Ok((vec![7], None))
        );
    }

    #[test]
    fn rejections_are_typed() {
        assert_eq!(parse(r#"{"rows":[]}"#), Err(JsonError::EmptyRows));
        assert_eq!(parse(r#"{"deadline_ms":5}"#), Err(JsonError::Shape));
        assert_eq!(parse(r#"[1,2]"#), Err(JsonError::Shape));
        assert_eq!(parse(r#"{"rows":[-1]}"#), Err(JsonError::Range));
        assert_eq!(parse(r#"{"rows":[1.5]}"#), Err(JsonError::Range));
        assert_eq!(parse(r#"{"rows":[4294967296]}"#), Err(JsonError::Range));
        assert_eq!(parse(r#"{"rows":[1],}"#), Err(JsonError::Syntax));
        assert_eq!(parse(r#"{"rows":[1]} trailing"#), Err(JsonError::Syntax));
        assert_eq!(parse(""), Err(JsonError::Shape));
        let deep = format!("{{\"x\":{}{}, \"rows\":[1]}}", "[".repeat(64), "]".repeat(64));
        assert_eq!(parse(&deep), Err(JsonError::TooDeep));
    }

    #[test]
    fn row_limit_enforced() {
        let mut rows = Vec::new();
        let err = parse_predict_body(br#"{"rows":[1,2,3]}"#, 2, &mut rows);
        assert_eq!(err, Err(JsonError::TooManyRows));
    }

    #[test]
    fn reply_and_error_render() {
        let mut out = Vec::new();
        render_reply(3, &[1, 0, 2], &mut out);
        assert_eq!(out, br#"{"epoch":3,"labels":[1,0,2]}"#);
        out.clear();
        render_error(crate::wire::WireStatus::overloaded(), "queue \"full\"", &mut out);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains(r#""code":429"#), "{s}");
        assert!(s.contains(r#""retryable":true"#), "{s}");
        assert!(s.contains(r#"queue \"full\""#), "{s}");
    }
}
