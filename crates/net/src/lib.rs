//! crossmine-net: the wire-protocol front end for the prediction
//! server.
//!
//! One TCP port, two protocols, zero external dependencies:
//!
//! * **HTTP/1.1** — `POST /predict` with a JSON batch body, keep-alive
//!   and pipelining supported, typed JSON error bodies.
//! * **Binary** — length-prefixed frames ([`frame`]) with batch decode
//!   straight into the relational [`Row`](crossmine_relational::Row)
//!   representation.
//!
//! The first byte of a connection picks the protocol ([`sniff`]). A
//! single nonblocking poll thread ([`listener`]) owns every socket;
//! per-connection protocol state is a pure state machine ([`conn`])
//! that is unit-tested without sockets. The serve crate plugs in as a
//! [`Backend`] and maps its error taxonomy onto [`WireStatus`] codes —
//! overload is a typed `429` answered from the admission check, never a
//! blocked accept loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod http;
pub mod json;
pub mod listener;
pub mod metrics;
pub mod sniff;
pub mod wire;

pub use conn::{Connection, NetLimits, Protocol, WireReject};
pub use listener::{Backend, NetConfig, NetListener};
pub use metrics::{NetCountersSnapshot, NetMetrics};
pub use wire::{BatchReply, WireStatus};
