//! Per-connection protocol state machine — pure bytes in, bytes out.
//!
//! A [`Connection`] owns everything about one client except the socket
//! and the backend: the read buffer, protocol sniffing, request parsing
//! (both protocols), the in-order pipeline of outstanding requests, and
//! the write buffer with partial-write continuation. The listener feeds
//! it bytes and a `submit` closure; the tests feed it bytes and
//! assertions. No I/O happens here, which is what makes the whole
//! lifecycle (sniff → parse → backpressure → reply → drain → close)
//! unit-testable without opening a socket.
//!
//! Pipelining invariant: responses are flushed strictly in request
//! order. A completed reply sits in its pipeline slot until every
//! earlier slot has completed and been flushed.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crossmine_obs::{Profiler, TraceCtx, Tracer, ROOT_SPAN};
use crossmine_relational::Row;

use crate::frame;
use crate::http::{self, HttpLimits};
use crate::json;
use crate::sniff::{sniff, Sniff};
use crate::wire::{BatchReply, WireStatus};

/// Parsing and buffering limits for one connection.
#[derive(Debug, Clone)]
pub struct NetLimits {
    /// HTTP header/body size caps.
    pub http: HttpLimits,
    /// Maximum binary frame payload size.
    pub max_frame_bytes: usize,
    /// Maximum rows per predict batch (either protocol).
    pub max_batch_rows: usize,
    /// Maximum pipelined requests in flight per connection; beyond this
    /// the connection stops reading (TCP backpressure) instead of
    /// buffering unboundedly.
    pub max_pipeline: usize,
}

impl Default for NetLimits {
    fn default() -> Self {
        NetLimits {
            http: HttpLimits::default(),
            max_frame_bytes: 1024 * 1024,
            max_batch_rows: 4096,
            max_pipeline: 64,
        }
    }
}

/// A rejected request: the status plus a human-readable detail that the
/// HTTP side embeds in the JSON error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReject {
    /// Protocol-neutral status.
    pub status: WireStatus,
    /// One-line diagnostic, safe to show clients.
    pub detail: String,
}

impl WireReject {
    /// Convenience constructor.
    pub fn new(status: WireStatus, detail: impl Into<String>) -> Self {
        WireReject { status, detail: detail.into() }
    }
}

/// How a request's reply must be framed back to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplyCtx {
    Http { keep_alive: bool },
    Binary { request_id: u64 },
}

enum SlotState {
    Waiting,
    Done(Result<BatchReply, WireReject>),
}

struct Slot {
    id: u64,
    ctx: ReplyCtx,
    state: SlotState,
    /// The request's trace context (noop for non-predict replies such as
    /// 404s and parse errors). Completed when the reply bytes drain.
    trace: TraceCtx,
    /// When the request's first byte arrived — the wire-latency origin.
    /// `None` for slots that never went through [`Connection::dispatch`].
    born: Option<Instant>,
}

/// Watches one encoded reply until its last byte is accepted by the
/// socket, then closes out the request's trace and wire latency.
struct FlushWatch {
    /// `enqueued_total` the moment this reply finished encoding — once
    /// `written_total` reaches it, every byte of the reply is on the wire.
    target: u64,
    trace: TraceCtx,
    born: Instant,
    encode_at: Instant,
}

/// Which protocol the connection settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Not enough bytes yet to sniff.
    Undecided,
    /// HTTP/1.1 (keep-alive, pipelining).
    Http,
    /// Length-prefixed binary frames.
    Binary,
}

/// The outcome the listener's `submit` closure reports for one parsed
/// predict request.
pub type SubmitOutcome = Result<(), WireReject>;

/// One client connection's protocol state (no socket inside).
pub struct Connection {
    proto: Protocol,
    rbuf: Vec<u8>,
    roff: usize,
    wbuf: Vec<u8>,
    woff: usize,
    scratch: Vec<Row>,
    pending: VecDeque<Slot>,
    next_slot: u64,
    /// Flush what is buffered, then close (half-broken stream, explicit
    /// `Connection: close`, or fatal parse error already answered).
    close_after_flush: bool,
    /// Drop immediately without writing (unknown protocol).
    dead: bool,
    last_activity: Instant,
    /// Cumulative (ok, error) replies encoded, for the listener's
    /// per-protocol counters.
    encoded_ok: u64,
    encoded_err: u64,
    /// Births one trace per predict request (noop tracer = zero cost).
    tracer: Tracer,
    /// Publishes `net.sniff` / `net.parse` frames while pumping, so wall
    /// samples of the poll thread attribute protocol work (noop = one
    /// branch per pump).
    profiler: Profiler,
    /// First-byte arrival of the request currently being accumulated;
    /// consumed by `dispatch` as the trace origin, re-armed on the next
    /// read that starts a fresh request.
    read_since: Option<Instant>,
    /// When protocol sniffing resolved (first request only).
    sniff_done: Option<Instant>,
    /// Cumulative reply bytes ever placed into the write buffer.
    enqueued_total: u64,
    /// Cumulative reply bytes ever accepted by the socket.
    written_total: u64,
    /// Encoded replies awaiting their final byte on the wire, in encode
    /// order (monotonic targets — front settles first).
    watches: VecDeque<FlushWatch>,
    /// Settled requests as `(trace_id, wire_us)` for the listener to
    /// drain into the `net.request_us` histogram and its exemplars.
    /// `trace_id` is 0 when tracing was off for the request.
    finished: Vec<(u64, u64)>,
}

impl Connection {
    /// A fresh connection, with `now` as its first activity timestamp.
    /// Tracing is off; the listener uses [`with_tracer`](Self::with_tracer).
    pub fn new(now: Instant) -> Self {
        Self::with_tracer(now, Tracer::noop())
    }

    /// A fresh connection whose predict requests are traced by `tracer`.
    pub fn with_tracer(now: Instant, tracer: Tracer) -> Self {
        Self::with_obs(now, tracer, Profiler::noop())
    }

    /// A fresh connection with both a tracer and a profiler; what the
    /// listener constructs so pump-time frames land in the wall sampler.
    pub fn with_obs(now: Instant, tracer: Tracer, profiler: Profiler) -> Self {
        Connection {
            proto: Protocol::Undecided,
            rbuf: Vec::new(),
            roff: 0,
            wbuf: Vec::new(),
            woff: 0,
            scratch: Vec::new(),
            pending: VecDeque::new(),
            next_slot: 0,
            close_after_flush: false,
            dead: false,
            last_activity: now,
            encoded_ok: 0,
            encoded_err: 0,
            tracer,
            profiler,
            read_since: None,
            sniff_done: None,
            enqueued_total: 0,
            written_total: 0,
            watches: VecDeque::new(),
            finished: Vec::new(),
        }
    }

    /// The peer half-closed its read side (EOF on read): finish the
    /// in-flight responses, flush, then close — never drop work already
    /// admitted.
    pub fn mark_peer_closed(&mut self) {
        self.close_after_flush = true;
    }

    /// Cumulative `(ok, error)` replies encoded onto the wire so far.
    pub fn encoded_counts(&self) -> (u64, u64) {
        (self.encoded_ok, self.encoded_err)
    }

    /// Which protocol the connection sniffed to (for metrics/tests).
    pub fn protocol(&self) -> Protocol {
        self.proto
    }

    /// Appends bytes read from the socket.
    pub fn push_bytes(&mut self, bytes: &[u8], now: Instant) {
        if self.read_since.is_none() && !bytes.is_empty() {
            self.read_since = Some(now);
        }
        self.rbuf.extend_from_slice(bytes);
        self.last_activity = now;
    }

    /// Whether the listener should keep polling this socket for reads.
    /// False once closing, or while the pipeline is full (backpressure:
    /// the kernel buffer fills and the client blocks, instead of this
    /// process buffering unboundedly).
    pub fn wants_read(&self, limits: &NetLimits) -> bool {
        !self.dead && !self.close_after_flush && self.pending.len() < limits.max_pipeline
    }

    /// Unwritten response bytes (empty when nothing to send).
    pub fn write_slice(&self) -> &[u8] {
        &self.wbuf[self.woff..]
    }

    /// Records `n` bytes accepted by the socket — partial-write
    /// continuation: the remainder stays queued for the next writable
    /// readiness.
    pub fn advance_write(&mut self, n: usize, now: Instant) {
        let advanced = (self.woff + n).min(self.wbuf.len()) - self.woff;
        self.written_total += advanced as u64;
        self.woff += advanced;
        if self.woff == self.wbuf.len() {
            self.wbuf.clear();
            self.woff = 0;
        } else if self.woff > 64 * 1024 {
            self.wbuf.drain(..self.woff);
            self.woff = 0;
        }
        self.last_activity = now;
        self.settle_watches(now);
    }

    /// Closes out every watched reply whose last byte the socket has now
    /// accepted: stamps the `net.write` span, completes the trace, and
    /// queues the wire latency for the listener.
    fn settle_watches(&mut self, now: Instant) {
        while matches!(self.watches.front(), Some(w) if w.target <= self.written_total) {
            let Some(w) = self.watches.pop_front() else { break };
            // The caller's `now` is its sweep timestamp, taken before this
            // reply was encoded within the same sweep — clamp so the
            // `net.write` span never ends before it starts.
            let end = now.max(w.encode_at);
            w.trace.add_span("net.write", ROOT_SPAN, w.encode_at, end);
            w.trace.complete();
            let wire_us = end.saturating_duration_since(w.born).as_micros();
            self.finished.push((w.trace.id().0, wire_us.min(u128::from(u64::MAX)) as u64));
        }
    }

    /// Moves settled `(trace_id, wire_us)` pairs into `out` (listener
    /// drains this every sweep; `trace_id` 0 means tracing was off).
    pub fn drain_finished(&mut self, out: &mut Vec<(u64, u64)>) {
        out.append(&mut self.finished);
    }

    /// True when the connection should be dropped now: fatal state, or
    /// it finished flushing everything after a close was requested.
    pub fn should_close(&self) -> bool {
        self.dead
            || (self.close_after_flush && self.pending.is_empty() && self.woff == self.wbuf.len())
    }

    /// True when nothing is buffered or in flight and the connection has
    /// been silent longer than `timeout`.
    pub fn is_idle(&self, now: Instant, timeout: Duration) -> bool {
        self.pending.is_empty()
            && self.woff == self.wbuf.len()
            && now.duration_since(self.last_activity) >= timeout
    }

    /// Outstanding pipelined requests (for tests and shed decisions).
    pub fn in_flight(&self) -> usize {
        self.pending.iter().filter(|s| matches!(s.state, SlotState::Waiting)).count()
    }

    /// Bytes read off the socket but not yet parsed. The listener checks
    /// this so a request that was fully buffered while the pipeline was
    /// at capacity still gets pumped once a slot frees — without it, a
    /// quiet client's final pipelined request would stall until its next
    /// write.
    pub fn buffered_input_len(&self) -> usize {
        self.rbuf.len() - self.roff
    }

    /// Parses as many complete requests as the pipeline allows, calling
    /// `submit(slot, rows, deadline, trace)` for each well-formed predict
    /// request. The closure returns `Ok(())` when the backend accepted
    /// the batch (the listener will later call [`complete`]) or a
    /// [`WireReject`] to answer immediately. The `trace` argument is the
    /// request's trace context (noop when tracing is off); backends clone
    /// it onto the work they enqueue so worker-side spans join the same
    /// tree. When `draining` is set, new predict requests are answered
    /// `503 Service Unavailable` without touching the backend.
    ///
    /// Malformed input is answered with a typed `400` (where the
    /// protocol still permits a response) and the connection is marked
    /// to close after flushing; bytes that are neither protocol kill the
    /// connection without a response.
    ///
    /// [`complete`]: Connection::complete
    pub fn pump<F>(&mut self, limits: &NetLimits, draining: bool, mut submit: F)
    where
        F: FnMut(u64, &[Row], Option<Duration>, &TraceCtx) -> SubmitOutcome,
    {
        loop {
            if self.dead || self.close_after_flush {
                break;
            }
            if self.pending.len() >= limits.max_pipeline {
                break;
            }
            self.compact_rbuf();
            let buf = &self.rbuf[self.roff..];
            if self.proto == Protocol::Undecided {
                let _sniff_frame = self.profiler.enter("net.sniff");
                match sniff(buf) {
                    Sniff::NeedMore => break,
                    Sniff::Http => self.proto = Protocol::Http,
                    Sniff::Binary => self.proto = Protocol::Binary,
                    Sniff::Unknown => {
                        self.dead = true;
                        break;
                    }
                }
                if self.tracer.is_enabled() {
                    self.sniff_done = Some(Instant::now());
                }
            }
            // Covers parse + dispatch (which runs the backend's submit
            // closure), so a wire request's admission shows up in the
            // profile as net.poll;net.parse;serve.admission.
            let _parse_frame = self.profiler.enter("net.parse");
            let made_progress = match self.proto {
                Protocol::Http => self.pump_http(limits, draining, &mut submit),
                Protocol::Binary => self.pump_binary(limits, draining, &mut submit),
                Protocol::Undecided => unreachable!("sniffed above"),
            };
            if !made_progress {
                break;
            }
        }
        self.flush_ready();
    }

    /// One HTTP request attempt; true if bytes were consumed.
    fn pump_http<F>(&mut self, limits: &NetLimits, draining: bool, submit: &mut F) -> bool
    where
        F: FnMut(u64, &[Row], Option<Duration>, &TraceCtx) -> SubmitOutcome,
    {
        let buf = &self.rbuf[self.roff..];
        let (req, consumed) = match http::parse_request(buf, &limits.http) {
            Ok(Some(pair)) => pair,
            Ok(None) => return false,
            Err(e) => {
                // Framing is broken; answer once and close.
                let slot = self.open_slot(ReplyCtx::Http { keep_alive: false });
                self.finish_slot(
                    slot,
                    Err(WireReject::new(WireStatus::bad_request(), e.to_string())),
                );
                self.close_after_flush = true;
                return false;
            }
        };
        self.roff += consumed;
        let keep_alive = req.keep_alive();
        if !keep_alive {
            // Last request on this connection; respond, flush, close.
            self.close_after_flush = true;
        }
        let ctx = ReplyCtx::Http { keep_alive };
        if req.path != "/predict" {
            let slot = self.open_slot(ctx);
            self.finish_slot(slot, Err(WireReject::new(WireStatus::not_found(), "unknown path")));
            return true;
        }
        if req.method != "POST" {
            let slot = self.open_slot(ctx);
            self.finish_slot(
                slot,
                Err(WireReject::new(WireStatus::method_not_allowed(), "use POST /predict")),
            );
            return true;
        }
        let body =
            match json::parse_predict_body(&req.body, limits.max_batch_rows, &mut self.scratch) {
                Ok(b) => b,
                Err(e) => {
                    // The request was well-framed, so keep-alive survives a
                    // semantically bad body.
                    let slot = self.open_slot(ctx);
                    self.finish_slot(
                        slot,
                        Err(WireReject::new(WireStatus::bad_request(), e.to_string())),
                    );
                    return true;
                }
            };
        // An explicit header overrides the body field.
        let deadline_ms = match header_deadline(&req) {
            Ok(h) => h.or(body.deadline_ms),
            Err(reject) => {
                let slot = self.open_slot(ctx);
                self.finish_slot(slot, Err(reject));
                return true;
            }
        };
        // `X-Request-Id` becomes the trace id so wire traces join client
        // logs; non-numeric or absent ids get a generated one.
        let id_hint = req.header("x-request-id").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        self.dispatch(ctx, id_hint, deadline_ms, draining, submit);
        true
    }

    /// One binary frame attempt; true if bytes were consumed.
    fn pump_binary<F>(&mut self, limits: &NetLimits, draining: bool, submit: &mut F) -> bool
    where
        F: FnMut(u64, &[Row], Option<Duration>, &TraceCtx) -> SubmitOutcome,
    {
        let buf = &self.rbuf[self.roff..];
        match frame::decode_request(
            buf,
            limits.max_frame_bytes,
            limits.max_batch_rows,
            &mut self.scratch,
        ) {
            Ok(Some((head, consumed))) => {
                self.roff += consumed;
                let ctx = ReplyCtx::Binary { request_id: head.request_id };
                // The frame's request id doubles as the trace id.
                self.dispatch(ctx, head.request_id, head.deadline_ms, draining, submit);
                true
            }
            Ok(None) => false,
            Err(e) => {
                // The stream cannot be re-synchronized after a bad
                // frame; answer with request id 0 and close.
                let slot = self.open_slot(ReplyCtx::Binary { request_id: 0 });
                self.finish_slot(
                    slot,
                    Err(WireReject::new(WireStatus::bad_request(), e.to_string())),
                );
                self.close_after_flush = true;
                false
            }
        }
    }

    /// Routes one parsed predict batch: drain-rejected, backend-rejected,
    /// or accepted into a waiting slot. `id_hint` (binary request id or
    /// parsed `X-Request-Id`) seeds the trace id; 0 generates one.
    fn dispatch<F>(
        &mut self,
        ctx: ReplyCtx,
        id_hint: u64,
        deadline_ms: Option<u64>,
        draining: bool,
        submit: &mut F,
    ) where
        F: FnMut(u64, &[Row], Option<Duration>, &TraceCtx) -> SubmitOutcome,
    {
        let t_parsed = Instant::now();
        // The wire-latency origin: first byte of this request off the
        // socket, or "now" for a request already fully buffered.
        let born = self.read_since.take().unwrap_or(t_parsed);
        let trace = self.tracer.start_at(id_hint, born);
        if trace.is_active() {
            // Sniffing happened once, on the connection's first request;
            // later keep-alive requests get a zero-length sniff span at
            // their origin so every trace shows the same chain.
            let sniff_end = self.sniff_done.map_or(born, |t| t.clamp(born, t_parsed));
            let proto = match self.proto {
                Protocol::Http => "http",
                Protocol::Binary => "binary",
                Protocol::Undecided => "undecided",
            };
            trace.add_span_with(
                "net.sniff",
                ROOT_SPAN,
                born,
                sniff_end,
                &[("proto", proto.into())],
            );
            trace.add_span_with(
                "net.parse",
                ROOT_SPAN,
                sniff_end,
                t_parsed,
                &[("rows", self.scratch.len().into())],
            );
        }
        let slot = self.open_slot_traced(ctx, trace.clone(), Some(born));
        if draining {
            trace.mark_error();
            self.finish_slot(
                slot,
                Err(WireReject::new(WireStatus::shutting_down(), "server is draining")),
            );
            return;
        }
        let deadline = deadline_ms.map(Duration::from_millis);
        match submit(slot, &self.scratch, deadline, &trace) {
            Ok(()) => {}
            Err(reject) => {
                trace.mark_error();
                self.finish_slot(slot, Err(reject));
            }
        }
    }

    /// Resolves a waiting slot with the backend's verdict. Unknown slot
    /// ids are ignored (the connection may have died and been replaced).
    pub fn complete(&mut self, slot: u64, result: Result<BatchReply, WireReject>) {
        if let Some(s) = self.pending.iter_mut().find(|s| s.id == slot) {
            if matches!(s.state, SlotState::Waiting) {
                s.state = SlotState::Done(result);
            }
        }
        self.flush_ready();
    }

    fn open_slot(&mut self, ctx: ReplyCtx) -> u64 {
        self.open_slot_traced(ctx, TraceCtx::noop(), None)
    }

    fn open_slot_traced(&mut self, ctx: ReplyCtx, trace: TraceCtx, born: Option<Instant>) -> u64 {
        let id = self.next_slot;
        self.next_slot += 1;
        self.pending.push_back(Slot { id, ctx, state: SlotState::Waiting, trace, born });
        id
    }

    fn finish_slot(&mut self, slot: u64, result: Result<BatchReply, WireReject>) {
        if let Some(s) = self.pending.iter_mut().find(|s| s.id == slot) {
            s.state = SlotState::Done(result);
        }
    }

    /// Encodes every head-of-line completed slot into the write buffer —
    /// this is what enforces pipelined response ordering. Dispatched
    /// slots gain a flush watch so their trace completes only when the
    /// reply's last byte is accepted by the socket.
    fn flush_ready(&mut self) {
        while matches!(self.pending.front(), Some(Slot { state: SlotState::Done(_), .. })) {
            let Some(slot) = self.pending.pop_front() else { break };
            if let SlotState::Done(result) = slot.state {
                if result.is_err() {
                    slot.trace.mark_error();
                }
                let encode_at = match slot.born {
                    Some(_) => Instant::now(),
                    None => self.last_activity,
                };
                self.encode_reply(slot.ctx, &result);
                if let Some(born) = slot.born {
                    self.watches.push_back(FlushWatch {
                        target: self.enqueued_total,
                        trace: slot.trace,
                        born,
                        encode_at,
                    });
                }
            }
        }
    }

    fn encode_reply(&mut self, ctx: ReplyCtx, result: &Result<BatchReply, WireReject>) {
        match result {
            Ok(_) => self.encoded_ok += 1,
            Err(_) => self.encoded_err += 1,
        }
        let wbuf_before = self.wbuf.len();
        match ctx {
            ReplyCtx::Http { keep_alive } => {
                let mut body = Vec::new();
                match result {
                    Ok(reply) => {
                        json::render_reply(reply.epoch, &reply.labels, &mut body);
                        http::write_response(
                            &mut self.wbuf,
                            200,
                            WireStatus::ok().reason(),
                            "application/json",
                            &[],
                            &body,
                            keep_alive,
                        );
                    }
                    Err(reject) => {
                        json::render_error(reject.status, &reject.detail, &mut body);
                        let retry = reject.status.retry_after_secs().map(|s| s.to_string());
                        let mut extra: Vec<(&str, &str)> = Vec::new();
                        if let Some(r) = retry.as_deref() {
                            extra.push(("Retry-After", r));
                        }
                        http::write_response(
                            &mut self.wbuf,
                            reject.status.code,
                            reject.status.reason(),
                            "application/json",
                            &extra,
                            &body,
                            keep_alive,
                        );
                    }
                }
            }
            ReplyCtx::Binary { request_id } => match result {
                Ok(reply) => {
                    frame::encode_reply(request_id, reply.epoch, &reply.labels, &mut self.wbuf)
                }
                Err(reject) => frame::encode_error(request_id, reject.status, &mut self.wbuf),
            },
        }
        self.enqueued_total += (self.wbuf.len() - wbuf_before) as u64;
    }

    /// Drops consumed bytes from the front of the read buffer once the
    /// dead prefix is large enough to be worth the move.
    fn compact_rbuf(&mut self) {
        if self.roff > 0 && (self.roff == self.rbuf.len() || self.roff > 16 * 1024) {
            self.rbuf.drain(..self.roff);
            self.roff = 0;
        }
    }
}

/// Parses the optional `x-deadline-ms` request header.
fn header_deadline(req: &http::HttpRequest) -> Result<Option<u64>, WireReject> {
    match req.header("x-deadline-ms") {
        None => Ok(None),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Ok(Some(ms)),
            Err(_) => Err(WireReject::new(
                WireStatus::bad_request(),
                "x-deadline-ms must be a non-negative integer",
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_response, encode_request};
    use crate::http::format_predict_request;

    fn now() -> Instant {
        Instant::now()
    }

    fn accept_all(
        replies: &mut Vec<(u64, Vec<Row>)>,
    ) -> impl FnMut(u64, &[Row], Option<Duration>, &TraceCtx) -> SubmitOutcome + '_ {
        |slot, rows, _deadline, _trace| {
            replies.push((slot, rows.to_vec()));
            Ok(())
        }
    }

    #[test]
    fn http_request_flows_to_submit_and_reply() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(&format_predict_request(&[1, 2, 3], Some(100), true), now());
        let mut seen = Vec::new();
        conn.pump(&limits, false, accept_all(&mut seen));
        assert_eq!(conn.protocol(), Protocol::Http);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, vec![Row(1), Row(2), Row(3)]);
        assert!(conn.write_slice().is_empty(), "no reply before completion");
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 4, labels: vec![0, 1, 0] }));
        let out = String::from_utf8_lossy(conn.write_slice()).to_string();
        assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
        assert!(out.contains("\"epoch\":4"), "{out}");
        assert!(out.contains("\"labels\":[0,1,0]"), "{out}");
        assert!(!conn.should_close(), "keep-alive survives");
    }

    #[test]
    fn pipelined_responses_flush_in_request_order() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        let mut wire = format_predict_request(&[1], None, true);
        wire.extend_from_slice(&format_predict_request(&[2], None, true));
        conn.push_bytes(&wire, now());
        let mut seen = Vec::new();
        conn.pump(&limits, false, accept_all(&mut seen));
        assert_eq!(seen.len(), 2);
        // Second request completes first: nothing may flush yet.
        conn.complete(seen[1].0, Ok(BatchReply { epoch: 1, labels: vec![7] }));
        assert!(conn.write_slice().is_empty(), "head-of-line blocks the later reply");
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![5] }));
        let out = String::from_utf8_lossy(conn.write_slice()).to_string();
        let first = out.find("\"labels\":[5]").expect("first reply present");
        let second = out.find("\"labels\":[7]").expect("second reply present");
        assert!(first < second, "replies in request order: {out}");
    }

    #[test]
    fn binary_request_roundtrip_with_partial_write() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        let mut wire = Vec::new();
        encode_request(99, Some(50), &[4, 5], &mut wire);
        // Feed the frame one byte at a time: incremental decode.
        let mut seen = Vec::new();
        for b in wire {
            conn.push_bytes(&[b], now());
            conn.pump(&limits, false, accept_all(&mut seen));
        }
        assert_eq!(conn.protocol(), Protocol::Binary);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, vec![Row(4), Row(5)]);
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 2, labels: vec![1, 0] }));
        // Drain the write buffer in 3-byte sips: partial-write continuation.
        let mut got = Vec::new();
        while !conn.write_slice().is_empty() {
            let n = conn.write_slice().len().min(3);
            got.extend_from_slice(&conn.write_slice()[..n]);
            conn.advance_write(n, now());
        }
        let (resp, _) = decode_response(&got, 1 << 20).expect("well-formed").expect("complete");
        assert_eq!(resp.request_id, 99);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.labels, vec![1, 0]);
    }

    #[test]
    fn unknown_protocol_dies_without_a_response() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(&[0x16, 0x03, 0x01], now()); // TLS ClientHello
        conn.pump(&limits, false, |_, _, _, _| panic!("must not submit"));
        assert!(conn.should_close());
        assert!(conn.write_slice().is_empty());
    }

    #[test]
    fn bad_binary_frame_answers_400_then_closes() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        let mut wire = Vec::new();
        encode_request(1, None, &[1], &mut wire);
        wire[5] = 200; // corrupt the version byte
        conn.push_bytes(&wire, now());
        conn.pump(&limits, false, |_, _, _, _| panic!("must not submit"));
        let (resp, _) =
            decode_response(conn.write_slice(), 1 << 20).expect("well-formed").expect("complete");
        assert_eq!(resp.status, 400);
        conn.advance_write(conn.write_slice().len(), now());
        assert!(conn.should_close());
    }

    #[test]
    fn http_overload_maps_to_429_with_retry_after() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(&format_predict_request(&[1], None, true), now());
        conn.pump(&limits, false, |_, _, _, _| {
            Err(WireReject::new(WireStatus::overloaded(), "queue full"))
        });
        let out = String::from_utf8_lossy(conn.write_slice()).to_string();
        assert!(out.starts_with("HTTP/1.1 429 Too Many Requests"), "{out}");
        assert!(out.contains("Retry-After: 1"), "{out}");
        assert!(out.contains("\"retryable\":true"), "{out}");
    }

    #[test]
    fn draining_rejects_new_work_with_503() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(&format_predict_request(&[1], None, true), now());
        conn.pump(&limits, true, |_, _, _, _| panic!("draining must not submit"));
        let out = String::from_utf8_lossy(conn.write_slice()).to_string();
        assert!(out.starts_with("HTTP/1.1 503 Service Unavailable"), "{out}");
        assert!(!out.contains("Retry-After"), "shutdown is not retryable against this instance");
    }

    #[test]
    fn pipeline_limit_applies_read_backpressure() {
        let limits = NetLimits { max_pipeline: 2, ..NetLimits::default() };
        let mut conn = Connection::new(now());
        let mut wire = Vec::new();
        for _ in 0..3 {
            wire.extend_from_slice(&format_predict_request(&[1], None, true));
        }
        conn.push_bytes(&wire, now());
        let mut seen = Vec::new();
        conn.pump(&limits, false, accept_all(&mut seen));
        assert_eq!(seen.len(), 2, "third request waits in the buffer");
        assert!(!conn.wants_read(&limits), "full pipeline stops reading");
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![0] }));
        assert!(conn.wants_read(&limits));
        let mut more = Vec::new();
        conn.pump(&limits, false, accept_all(&mut more));
        assert_eq!(more.len(), 1, "buffered request parses once a slot frees");
    }

    #[test]
    fn connection_close_header_flushes_then_closes() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(&format_predict_request(&[1], None, false), now());
        let mut seen = Vec::new();
        conn.pump(&limits, false, accept_all(&mut seen));
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![0] }));
        assert!(!conn.should_close(), "response still buffered");
        conn.advance_write(conn.write_slice().len(), now());
        assert!(conn.should_close());
    }

    #[test]
    fn idle_detection() {
        let limits = NetLimits::default();
        let t0 = now();
        let conn = Connection::new(t0);
        assert!(!conn.is_idle(t0, Duration::from_secs(5)));
        assert!(conn.is_idle(t0 + Duration::from_secs(6), Duration::from_secs(5)));
        let mut busy = Connection::new(t0);
        busy.push_bytes(&format_predict_request(&[1], None, true), t0);
        let mut seen = Vec::new();
        busy.pump(&limits, false, accept_all(&mut seen));
        assert!(
            !busy.is_idle(t0 + Duration::from_secs(6), Duration::from_secs(5)),
            "in-flight request is never idle"
        );
    }

    #[test]
    fn http_get_metrics_is_not_found_here() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(b"GET /metrics HTTP/1.1\r\n\r\n", now());
        conn.pump(&limits, false, |_, _, _, _| panic!("must not submit"));
        let out = String::from_utf8_lossy(conn.write_slice()).to_string();
        assert!(out.starts_with("HTTP/1.1 404 Not Found"), "{out}");
    }

    #[test]
    fn http_wrong_method_is_405() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(b"GET /predict HTTP/1.1\r\n\r\n", now());
        conn.pump(&limits, false, |_, _, _, _| panic!("must not submit"));
        let out = String::from_utf8_lossy(conn.write_slice()).to_string();
        assert!(out.starts_with("HTTP/1.1 405 Method Not Allowed"), "{out}");
    }

    #[test]
    fn header_deadline_overrides_body() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        let body = b"{\"rows\":[1],\"deadline_ms\":5000}";
        let req = format!(
            "POST /predict HTTP/1.1\r\nx-deadline-ms: 250\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.push_bytes(req.as_bytes(), now());
        conn.push_bytes(body, now());
        let mut deadlines = Vec::new();
        conn.pump(&limits, false, |_, _, d, _| {
            deadlines.push(d);
            Ok(())
        });
        assert_eq!(deadlines, vec![Some(Duration::from_millis(250))]);
    }

    /// A tracer that retains every completion, for deterministic tests.
    fn keep_all_tracer() -> Tracer {
        Tracer::with_config(crossmine_obs::TraceConfig {
            ring_capacity: 64,
            window: 64,
            keep_slowest: 64,
            slow_threshold: None,
        })
    }

    #[test]
    fn trace_born_on_wire_completes_when_bytes_drain() {
        use crossmine_obs::TraceId;
        let limits = NetLimits::default();
        let tracer = keep_all_tracer();
        let mut conn = Connection::with_tracer(now(), tracer.clone());
        let body = b"{\"rows\":[1,2]}";
        let req = format!(
            "POST /predict HTTP/1.1\r\nx-request-id: 77\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.push_bytes(req.as_bytes(), now());
        conn.push_bytes(body, now());
        let mut seen = Vec::new();
        let mut trace_ids = Vec::new();
        conn.pump(&limits, false, |slot, rows, _d, trace| {
            trace_ids.push(trace.id());
            seen.push((slot, rows.to_vec()));
            Ok(())
        });
        assert_eq!(trace_ids, vec![TraceId(77)], "X-Request-Id seeds the trace id");
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![0, 1] }));
        assert!(
            tracer.find(TraceId(77)).is_none(),
            "trace must not complete before the reply bytes hit the socket"
        );
        let n = conn.write_slice().len();
        conn.advance_write(n, now());
        let stored = tracer.find(TraceId(77)).expect("completed once the reply drained");
        let names: Vec<_> = stored.spans.iter().map(|s| s.name).collect();
        assert_eq!(names[0], "request", "implicit root first");
        assert!(names.contains(&"net.sniff"), "{names:?}");
        assert!(names.contains(&"net.parse"), "{names:?}");
        assert!(names.contains(&"net.write"), "{names:?}");
        assert!(!stored.error);
        let mut fin = Vec::new();
        conn.drain_finished(&mut fin);
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].0, 77, "wire latency is attributed to the trace");
    }

    #[test]
    fn partial_write_defers_trace_completion_until_last_byte() {
        use crossmine_obs::TraceId;
        let limits = NetLimits::default();
        let tracer = keep_all_tracer();
        let mut conn = Connection::with_tracer(now(), tracer.clone());
        let mut wire = Vec::new();
        encode_request(91, None, &[4], &mut wire);
        conn.push_bytes(&wire, now());
        let mut seen = Vec::new();
        conn.pump(&limits, false, accept_all(&mut seen));
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![1] }));
        // Drain all but the final byte: still incomplete.
        let n = conn.write_slice().len();
        conn.advance_write(n - 1, now());
        assert!(tracer.find(TraceId(91)).is_none(), "one byte still queued");
        conn.advance_write(1, now());
        assert!(tracer.find(TraceId(91)).is_some(), "last byte completes the trace");
    }

    #[test]
    fn rejected_request_trace_is_kept_as_error() {
        use crossmine_obs::TraceId;
        let limits = NetLimits::default();
        let tracer = keep_all_tracer();
        let mut conn = Connection::with_tracer(now(), tracer.clone());
        let body = b"{\"rows\":[1]}";
        let req = format!(
            "POST /predict HTTP/1.1\r\nx-request-id: 55\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.push_bytes(req.as_bytes(), now());
        conn.push_bytes(body, now());
        conn.pump(&limits, false, |_, _, _, _| {
            Err(WireReject::new(WireStatus::overloaded(), "queue full"))
        });
        let n = conn.write_slice().len();
        conn.advance_write(n, now());
        let stored = tracer.find(TraceId(55)).expect("shed trace retained");
        assert!(stored.error, "rejection marks the trace as an error");
    }

    #[test]
    fn second_keep_alive_request_gets_its_own_complete_trace() {
        use crossmine_obs::TraceId;
        let limits = NetLimits::default();
        let tracer = keep_all_tracer();
        let mut conn = Connection::with_tracer(now(), tracer.clone());
        for id in [101u64, 102] {
            let body = b"{\"rows\":[1]}";
            let req = format!(
                "POST /predict HTTP/1.1\r\nx-request-id: {id}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            conn.push_bytes(req.as_bytes(), now());
            conn.push_bytes(body, now());
            let mut seen = Vec::new();
            conn.pump(&limits, false, accept_all(&mut seen));
            conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![0] }));
            let n = conn.write_slice().len();
            conn.advance_write(n, now());
        }
        for id in [101u64, 102] {
            let stored = tracer.find(TraceId(id)).expect("both traces retained");
            let names: Vec<_> = stored.spans.iter().map(|s| s.name).collect();
            assert!(names.contains(&"net.sniff"), "trace {id} has the full chain: {names:?}");
            assert!(names.contains(&"net.parse"), "{names:?}");
            assert!(names.contains(&"net.write"), "{names:?}");
        }
    }

    #[test]
    fn noop_tracer_records_wire_latency_without_ids() {
        let limits = NetLimits::default();
        let mut conn = Connection::new(now());
        conn.push_bytes(&format_predict_request(&[1], None, true), now());
        let mut seen = Vec::new();
        conn.pump(&limits, false, accept_all(&mut seen));
        conn.complete(seen[0].0, Ok(BatchReply { epoch: 1, labels: vec![0] }));
        let n = conn.write_slice().len();
        conn.advance_write(n, now());
        let mut fin = Vec::new();
        conn.drain_finished(&mut fin);
        assert_eq!(fin.len(), 1, "wire latency flows even with tracing off");
        assert_eq!(fin[0].0, 0, "no trace id without a tracer");
    }
}
