//! The length-prefixed binary protocol: the low-overhead lane for
//! machine clients.
//!
//! Wire grammar (all integers little-endian; see DESIGN §3g):
//!
//! ```text
//! request  = 0xCE len:u32 payload            ; len = payload length
//! payload  = ver:u8(=1) request_id:u64 deadline_ms:u32 nrows:u32 row:u32 × nrows
//! response = 0xCF len:u32 rpayload
//! rpayload = ver:u8(=1) request_id:u64 status:u16 retry_after_s:u16
//!            epoch:u64 nlabels:u32 label:u32 × nlabels
//! ```
//!
//! `deadline_ms = 0` means "no deadline". `status = 200` means success;
//! any other value is a [`WireStatus`] code with `nlabels = 0`.
//! `retry_after_s = 0` means no retry hint.
//!
//! Decoding is incremental (`NeedMore` until the whole frame arrived) and
//! the row batch is decoded **straight from the read buffer into a
//! caller-owned scratch `Vec<Row>`** — one bounded copy, no intermediate
//! allocation, reused across requests so the steady state allocates
//! nothing.

use crossmine_relational::Row;

use crate::wire::WireStatus;

/// First byte of every binary request frame.
pub const REQ_MAGIC: u8 = 0xCE;
/// First byte of every binary response frame.
pub const RESP_MAGIC: u8 = 0xCF;
/// The one protocol version this build speaks.
pub const FRAME_VERSION: u8 = 1;

/// Fixed request-payload bytes before the row array.
const REQ_FIXED: usize = 1 + 8 + 4 + 4;
/// Fixed response-payload bytes before the label array.
const RESP_FIXED: usize = 1 + 8 + 2 + 2 + 8 + 4;

/// Why a frame was rejected. All variants map to a `400`-class error
/// frame (when the request id is known) followed by connection close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// First byte is not the expected magic.
    BadMagic,
    /// The version byte is not [`FRAME_VERSION`].
    BadVersion,
    /// The length prefix exceeds the configured limit.
    FrameTooLarge,
    /// The payload length disagrees with the row/label count.
    LengthMismatch,
    /// The row count is zero (empty batches are meaningless) or exceeds
    /// the batch limit.
    BadRowCount,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion => write!(f, "unsupported frame version"),
            FrameError::FrameTooLarge => write!(f, "frame exceeds size limit"),
            FrameError::LengthMismatch => write!(f, "frame length disagrees with row count"),
            FrameError::BadRowCount => write!(f, "row count is zero or over the batch limit"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded request frame's header fields (rows go to the scratch vec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHead {
    /// Client-chosen correlation id, echoed in the response.
    pub request_id: u64,
    /// Per-request deadline in milliseconds; `None` on the wire as 0.
    pub deadline_ms: Option<u64>,
}

/// Incrementally decodes one request frame from the front of `buf`,
/// appending the rows to `out_rows` (cleared first, capacity reused).
///
/// Returns `Ok(Some((head, consumed)))` for a complete frame and
/// `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// A typed [`FrameError`] as soon as the prefix is provably invalid —
/// oversized or malformed frames are rejected without buffering them.
pub fn decode_request(
    buf: &[u8],
    max_frame_bytes: usize,
    max_rows: usize,
    out_rows: &mut Vec<Row>,
) -> Result<Option<(RequestHead, usize)>, FrameError> {
    let Some((&magic, rest)) = buf.split_first() else {
        return Ok(None);
    };
    if magic != REQ_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if rest.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if len > max_frame_bytes {
        return Err(FrameError::FrameTooLarge);
    }
    if len < REQ_FIXED {
        return Err(FrameError::LengthMismatch);
    }
    let payload = &rest[4..];
    if payload.len() < len {
        return Ok(None);
    }
    let payload = &payload[..len];
    if payload[0] != FRAME_VERSION {
        return Err(FrameError::BadVersion);
    }
    let request_id = u64::from_le_bytes(payload[1..9].try_into().expect("fixed slice"));
    let deadline_ms = u32::from_le_bytes(payload[9..13].try_into().expect("fixed slice"));
    let nrows = u32::from_le_bytes(payload[13..17].try_into().expect("fixed slice")) as usize;
    if nrows == 0 || nrows > max_rows {
        return Err(FrameError::BadRowCount);
    }
    if len != REQ_FIXED + nrows * 4 {
        return Err(FrameError::LengthMismatch);
    }
    out_rows.clear();
    out_rows.reserve(nrows);
    for chunk in payload[REQ_FIXED..].chunks_exact(4) {
        out_rows.push(Row(u32::from_le_bytes(chunk.try_into().expect("fixed chunk"))));
    }
    let head = RequestHead {
        request_id,
        deadline_ms: (deadline_ms > 0).then_some(u64::from(deadline_ms)),
    };
    Ok(Some((head, 1 + 4 + len)))
}

/// Encodes one request frame (the client half, shared by `loadgen --net`
/// and the tests).
pub fn encode_request(request_id: u64, deadline_ms: Option<u64>, rows: &[u32], out: &mut Vec<u8>) {
    let len = REQ_FIXED + rows.len() * 4;
    out.reserve(1 + 4 + len);
    out.push(REQ_MAGIC);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(FRAME_VERSION);
    out.extend_from_slice(&request_id.to_le_bytes());
    let d = deadline_ms.map_or(0u32, |d| u32::try_from(d).unwrap_or(u32::MAX));
    out.extend_from_slice(&d.to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for &r in rows {
        out.extend_from_slice(&r.to_le_bytes());
    }
}

/// Encodes a success response frame.
pub fn encode_reply(request_id: u64, epoch: u64, labels: &[u32], out: &mut Vec<u8>) {
    let len = RESP_FIXED + labels.len() * 4;
    out.reserve(1 + 4 + len);
    out.push(RESP_MAGIC);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(FRAME_VERSION);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&200u16.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for &l in labels {
        out.extend_from_slice(&l.to_le_bytes());
    }
}

/// Encodes an error response frame carrying a [`WireStatus`].
pub fn encode_error(request_id: u64, status: WireStatus, out: &mut Vec<u8>) {
    out.reserve(1 + 4 + RESP_FIXED);
    out.push(RESP_MAGIC);
    out.extend_from_slice(&(RESP_FIXED as u32).to_le_bytes());
    out.push(FRAME_VERSION);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&status.code.to_le_bytes());
    let retry = status.retry_after_secs().map_or(0u16, |s| u16::try_from(s).unwrap_or(u16::MAX));
    out.extend_from_slice(&retry.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
}

/// A decoded response frame (the client half).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echoed correlation id.
    pub request_id: u64,
    /// `200` on success, else a [`WireStatus`] code.
    pub status: u16,
    /// Retry hint in seconds (0 = absent).
    pub retry_after_s: u16,
    /// Model epoch that scored the batch (0 on errors).
    pub epoch: u64,
    /// Predicted labels, empty on errors.
    pub labels: Vec<u32>,
}

/// Incrementally decodes one response frame from the front of `buf`;
/// `Ok(None)` means more bytes are needed.
///
/// # Errors
///
/// [`FrameError`] when the bytes cannot be a valid response frame.
pub fn decode_response(
    buf: &[u8],
    max_frame_bytes: usize,
) -> Result<Option<(ResponseFrame, usize)>, FrameError> {
    let Some((&magic, rest)) = buf.split_first() else {
        return Ok(None);
    };
    if magic != RESP_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if rest.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if len > max_frame_bytes {
        return Err(FrameError::FrameTooLarge);
    }
    if len < RESP_FIXED {
        return Err(FrameError::LengthMismatch);
    }
    let payload = &rest[4..];
    if payload.len() < len {
        return Ok(None);
    }
    let payload = &payload[..len];
    if payload[0] != FRAME_VERSION {
        return Err(FrameError::BadVersion);
    }
    let request_id = u64::from_le_bytes(payload[1..9].try_into().expect("fixed slice"));
    let status = u16::from_le_bytes(payload[9..11].try_into().expect("fixed slice"));
    let retry_after_s = u16::from_le_bytes(payload[11..13].try_into().expect("fixed slice"));
    let epoch = u64::from_le_bytes(payload[13..21].try_into().expect("fixed slice"));
    let nlabels = u32::from_le_bytes(payload[21..25].try_into().expect("fixed slice")) as usize;
    if len != RESP_FIXED + nlabels * 4 {
        return Err(FrameError::LengthMismatch);
    }
    let labels = payload[RESP_FIXED..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("fixed chunk")))
        .collect();
    Ok(Some((ResponseFrame { request_id, status, retry_after_s, epoch, labels }, 1 + 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_and_incrementality() {
        let mut wire = Vec::new();
        encode_request(7, Some(250), &[1, 2, 3], &mut wire);
        encode_request(8, None, &[9], &mut wire);
        let mut rows = Vec::new();
        // Incomplete prefixes decode to NeedMore, never an error.
        let first_len = 1 + 4 + REQ_FIXED + 3 * 4;
        for cut in 0..first_len {
            assert_eq!(
                decode_request(&wire[..cut], 1 << 20, 1 << 16, &mut rows).unwrap(),
                None,
                "cut {cut}"
            );
        }
        let (h1, c1) = decode_request(&wire, 1 << 20, 1 << 16, &mut rows).unwrap().unwrap();
        assert_eq!((h1.request_id, h1.deadline_ms), (7, Some(250)));
        assert_eq!(rows, vec![Row(1), Row(2), Row(3)]);
        let (h2, c2) = decode_request(&wire[c1..], 1 << 20, 1 << 16, &mut rows).unwrap().unwrap();
        assert_eq!((h2.request_id, h2.deadline_ms), (8, None));
        assert_eq!(rows, vec![Row(9)]);
        assert_eq!(c1 + c2, wire.len());
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        encode_reply(42, 3, &[0, 1, 0], &mut wire);
        encode_error(43, WireStatus::overloaded(), &mut wire);
        let (r1, c1) = decode_response(&wire, 1 << 20).unwrap().unwrap();
        assert_eq!(r1.request_id, 42);
        assert_eq!(r1.status, 200);
        assert_eq!(r1.epoch, 3);
        assert_eq!(r1.labels, vec![0, 1, 0]);
        let (r2, c2) = decode_response(&wire[c1..], 1 << 20).unwrap().unwrap();
        assert_eq!(r2.request_id, 43);
        assert_eq!(r2.status, 429);
        assert_eq!(r2.retry_after_s, 1, "retryable carries a retry hint");
        assert!(r2.labels.is_empty());
        assert_eq!(c1 + c2, wire.len());
    }

    #[test]
    fn typed_decode_errors() {
        let mut rows = Vec::new();
        assert_eq!(
            decode_request(&[0x00, 1, 2, 3, 4, 5], 1 << 20, 16, &mut rows),
            Err(FrameError::BadMagic)
        );
        // Oversized length prefix rejected before the payload arrives.
        let mut huge = vec![REQ_MAGIC];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&huge, 1 << 20, 16, &mut rows), Err(FrameError::FrameTooLarge));
        // Wrong version.
        let mut wire = Vec::new();
        encode_request(1, None, &[5], &mut wire);
        wire[5] = 99;
        assert_eq!(decode_request(&wire, 1 << 20, 16, &mut rows), Err(FrameError::BadVersion));
        // Row count over the limit.
        let mut wire = Vec::new();
        encode_request(1, None, &[1, 2, 3, 4], &mut wire);
        assert_eq!(decode_request(&wire, 1 << 20, 3, &mut rows), Err(FrameError::BadRowCount));
        // Zero rows.
        let mut wire = Vec::new();
        encode_request(1, None, &[], &mut wire);
        assert_eq!(decode_request(&wire, 1 << 20, 16, &mut rows), Err(FrameError::BadRowCount));
        // Length prefix disagreeing with nrows.
        let mut wire = Vec::new();
        encode_request(1, None, &[1, 2], &mut wire);
        let bad_n = 3u32.to_le_bytes();
        wire[18..22].copy_from_slice(&bad_n);
        assert_eq!(decode_request(&wire, 1 << 20, 16, &mut rows), Err(FrameError::LengthMismatch));
    }
}
