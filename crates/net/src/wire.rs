//! Typed wire statuses: the vocabulary both protocols answer with.
//!
//! A [`WireStatus`] is protocol-neutral: the HTTP side renders it as a
//! status line plus an optional `Retry-After` header, the binary side as a
//! status word plus a retry-after field in the response frame. The serve
//! integration layer maps its `ServeError` taxonomy onto these
//! constructors with the invariant that **a retry hint is present exactly
//! when the underlying error is retryable** — clients on either protocol
//! can branch on one bit instead of memorizing the taxonomy.

use std::time::Duration;

/// The default retry hint attached to transient rejections.
pub const DEFAULT_RETRY_AFTER: Duration = Duration::from_secs(1);

/// A protocol-neutral response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStatus {
    /// HTTP-style status code (also carried verbatim in binary frames;
    /// `200` means success).
    pub code: u16,
    /// When set, the client should retry after roughly this long. Present
    /// exactly for transient degradations.
    pub retry_after: Option<Duration>,
}

impl WireStatus {
    /// Success.
    pub fn ok() -> Self {
        WireStatus { code: 200, retry_after: None }
    }

    /// The request could not be parsed (malformed HTTP, bad JSON, bad
    /// frame, empty batch, over-limit sizes). Not retryable: resending the
    /// same bytes cannot succeed.
    pub fn bad_request() -> Self {
        WireStatus { code: 400, retry_after: None }
    }

    /// The path is not one this endpoint serves.
    pub fn not_found() -> Self {
        WireStatus { code: 404, retry_after: None }
    }

    /// The method is not allowed on this path (`/predict` is POST-only).
    pub fn method_not_allowed() -> Self {
        WireStatus { code: 405, retry_after: None }
    }

    /// Admission shed the request (queue full). Retryable with backoff.
    pub fn overloaded() -> Self {
        WireStatus { code: 429, retry_after: Some(DEFAULT_RETRY_AFTER) }
    }

    /// The batch failed for a server-internal reason (worker panic). The
    /// worker restarts, so a retry can succeed.
    pub fn internal_retryable() -> Self {
        WireStatus { code: 500, retry_after: Some(DEFAULT_RETRY_AFTER) }
    }

    /// The batch failed for a server-internal, non-transient reason.
    pub fn internal() -> Self {
        WireStatus { code: 500, retry_after: None }
    }

    /// The server is draining for shutdown. Not retryable against this
    /// instance.
    pub fn shutting_down() -> Self {
        WireStatus { code: 503, retry_after: None }
    }

    /// The request's deadline expired before scoring started. Retryable —
    /// a less-loaded moment can meet the same deadline.
    pub fn deadline_exceeded() -> Self {
        WireStatus { code: 504, retry_after: Some(DEFAULT_RETRY_AFTER) }
    }

    /// Whether this status is a success.
    pub fn is_ok(&self) -> bool {
        self.code == 200
    }

    /// The HTTP reason phrase for this status code.
    pub fn reason(&self) -> &'static str {
        match self.code {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// The `Retry-After` value in whole seconds (minimum 1), when present.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.retry_after.map(|d| d.as_secs().max(1))
    }
}

/// One scored batch, as the backend hands it back to the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReply {
    /// Epoch of the model snapshot that scored the batch.
    pub epoch: u64,
    /// One predicted class label per input row, in request order.
    pub labels: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_cover_the_emitted_codes() {
        for (s, want) in [
            (WireStatus::ok(), "OK"),
            (WireStatus::bad_request(), "Bad Request"),
            (WireStatus::not_found(), "Not Found"),
            (WireStatus::method_not_allowed(), "Method Not Allowed"),
            (WireStatus::overloaded(), "Too Many Requests"),
            (WireStatus::internal_retryable(), "Internal Server Error"),
            (WireStatus::shutting_down(), "Service Unavailable"),
            (WireStatus::deadline_exceeded(), "Gateway Timeout"),
        ] {
            assert_eq!(s.reason(), want);
        }
    }

    #[test]
    fn retry_after_rounds_up_to_one_second() {
        let s = WireStatus { code: 429, retry_after: Some(Duration::from_millis(50)) };
        assert_eq!(s.retry_after_secs(), Some(1));
        assert_eq!(WireStatus::shutting_down().retry_after_secs(), None);
    }
}
