//! The nonblocking listener: one poll thread, many sockets, no
//! external dependencies.
//!
//! All sockets run in nonblocking mode and a single thread sweeps them
//! in a readiness loop: accept burst → read+parse per connection →
//! backend completion poll → write burst → reaping. `WouldBlock` means
//! "not ready, move on"; when a full sweep makes no progress the thread
//! sleeps ~1 ms so an idle listener costs nothing measurable. The poll
//! thread never blocks on I/O, the backend, or a lock held across
//! requests — overload answers `429` from the admission check, it never
//! stalls `accept(2)`.
//!
//! Protocol work (sniffing, parsing, pipelining, response encoding)
//! lives in [`Connection`]; this module only moves bytes and tickets.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossmine_obs::{ObsHandle, Profiler, TraceCtx, TraceId, Tracer};
use crossmine_relational::Row;

use crate::conn::{Connection, NetLimits, Protocol, WireReject};
use crate::metrics::{
    NetCountersSnapshot, NetMetrics, STAGE_ACCEPT_US, STAGE_DECODE_US, STAGE_READ_US,
    STAGE_REQUEST_US, STAGE_WRITE_US,
};
use crate::wire::BatchReply;

/// What the wire front end plugs into: an admission-controlled
/// prediction queue. Implemented by the serve crate; the tests use
/// in-memory fakes. Both methods MUST be nonblocking — the poll thread
/// calls them inline.
pub trait Backend: Send + Sync + 'static {
    /// An in-flight batch the backend is still scoring.
    type Pending: Send;

    /// Admits one batch, or rejects it with a typed wire status
    /// (e.g. `429` when the queue is full). Must not block. `trace` is
    /// the request's trace context (noop when tracing is off); backends
    /// clone it onto the enqueued work so worker-side spans land in the
    /// same tree, and mark it on rejection so tail sampling keeps the
    /// trace.
    ///
    /// # Errors
    ///
    /// A [`WireReject`] carrying the status to answer with.
    fn submit(
        &self,
        rows: &[Row],
        deadline: Option<Duration>,
        trace: &TraceCtx,
    ) -> Result<Self::Pending, WireReject>;

    /// Polls an in-flight batch; `Some` when it finished (either way).
    /// Must not block.
    fn poll(&self, pending: &mut Self::Pending) -> Option<Result<BatchReply, WireReject>>;
}

/// Listener configuration; hangs off the serve crate's `ServerConfig`.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Connection-table cap; connections beyond it are accepted and
    /// immediately closed (shed) so the backlog cannot grow unboundedly.
    pub max_connections: usize,
    /// Idle connections (nothing buffered, nothing in flight) older than
    /// this are reaped.
    pub idle_timeout: Duration,
    /// During shutdown, how long to wait for in-flight responses to
    /// flush before force-closing.
    pub drain_timeout: Duration,
    /// Per-connection parsing and pipelining limits.
    pub limits: NetLimits,
    /// Births one trace per predict request. The default noop tracer
    /// keeps the wire path allocation-free; the serve crate installs its
    /// configured tracer here.
    pub tracer: Tracer,
    /// Publishes the poll thread's span stack (`net.poll` root with
    /// `net.sniff` / `net.parse` / `net.write` frames) into a wall
    /// sampler. The default noop profiler costs one branch per frame;
    /// the serve crate installs its configured profiler here.
    pub profiler: Profiler,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            limits: NetLimits::default(),
            tracer: Tracer::noop(),
            profiler: Profiler::noop(),
        }
    }
}

struct Control {
    /// New predict requests are answered `503`; in-flight work finishes.
    draining: AtomicBool,
    /// The poll thread should drain and exit.
    stopping: AtomicBool,
}

/// Handle to the running poll thread.
pub struct NetListener {
    addr: SocketAddr,
    control: Arc<Control>,
    thread: Option<thread::JoinHandle<()>>,
    metrics: Arc<NetMetrics>,
}

impl NetListener {
    /// Binds `config.addr` and starts the poll thread. The caller
    /// supplies the counters so it can keep exporting them (e.g. through
    /// a metrics endpoint) independent of the listener's lifetime.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the OS.
    pub fn start<B: Backend>(
        config: NetConfig,
        backend: Arc<B>,
        obs: ObsHandle,
        metrics: Arc<NetMetrics>,
    ) -> io::Result<NetListener> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let control = Arc::new(Control {
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
        });
        let thread = {
            let control = Arc::clone(&control);
            let metrics = Arc::clone(&metrics);
            thread::Builder::new()
                .name("crossmine-net".to_string())
                .spawn(move || poll_loop(listener, config, backend, obs, control, metrics))?
        };
        Ok(NetListener { addr, control, thread: Some(thread), metrics })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters (for tests and the serve metrics endpoint).
    pub fn metrics(&self) -> Arc<NetMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Enters drain mode: connections stay open and in-flight work
    /// finishes, but new predict requests are answered `503`.
    pub fn begin_drain(&self) {
        self.control.draining.store(true, Ordering::SeqCst);
    }

    /// Stops the poll thread: drains in-flight responses (bounded by
    /// `drain_timeout`), closes every socket, and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.control.draining.store(true, Ordering::SeqCst);
        self.control.stopping.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Whether the poll thread is still running (false after shutdown).
    pub fn is_running(&self) -> bool {
        self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }
}

impl Drop for NetListener {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One connection's socket-side state.
struct ConnEntry<B: Backend> {
    stream: TcpStream,
    conn: Connection,
    /// In-flight backend tickets, keyed by pipeline slot.
    pendings: Vec<(u64, B::Pending)>,
    /// Whether the sniffed protocol was already counted.
    proto_counted: bool,
    /// Last (ok, err) reply counts mirrored into the metrics.
    last_encoded: (u64, u64),
}

const READ_CHUNK: usize = 16 * 1024;
const IDLE_SLEEP: Duration = Duration::from_millis(1);
/// Sleep while backend work is in flight: long enough to not spin the
/// core, short enough that reply latency isn't dominated by the sweep
/// cadence (the backend resolves on its own worker threads).
const BUSY_SLEEP: Duration = Duration::from_micros(20);
const PUBLISH_EVERY: Duration = Duration::from_millis(100);

fn poll_loop<B: Backend>(
    listener: TcpListener,
    config: NetConfig,
    backend: Arc<B>,
    obs: ObsHandle,
    control: Arc<Control>,
    metrics: Arc<NetMetrics>,
) {
    // Root profile frame held for the poll thread's whole life: every
    // wall sample of this thread lands under `net.poll`, refined by the
    // sniff/parse/write frames pushed inside the sweep.
    let _poll_frame = config.profiler.enter("net.poll");
    let mut conns: Vec<Option<ConnEntry<B>>> = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK];
    let mut finished = Vec::new();
    let mut last_publish = Instant::now();
    let mut last_snapshot = NetCountersSnapshot::default();
    let mut drain_deadline: Option<Instant> = None;
    let mut backoff = BUSY_SLEEP;

    loop {
        let now = Instant::now();
        let stopping = control.stopping.load(Ordering::SeqCst);
        let draining = stopping || control.draining.load(Ordering::SeqCst);
        if stopping && drain_deadline.is_none() {
            drain_deadline = Some(now + config.drain_timeout);
        }
        let mut progress = false;

        // 1. Accept burst (skipped once stopping).
        if !stopping {
            progress |= accept_burst(&listener, &config, &mut conns, &metrics, &obs, now);
        }

        // 2. Read + parse per connection.
        for entry in conns.iter_mut().flatten() {
            progress |=
                service_reads(entry, &config, &backend, &metrics, &obs, &mut buf, draining, now);
        }

        // 3. Poll in-flight backend work.
        for entry in conns.iter_mut().flatten() {
            let mut i = 0;
            while i < entry.pendings.len() {
                if let Some(result) = backend.poll(&mut entry.pendings[i].1) {
                    let (slot, _) = entry.pendings.swap_remove(i);
                    entry.conn.complete(slot, result);
                    progress = true;
                } else {
                    i += 1;
                }
            }
        }

        // 4. Write burst. Reply counts mirror into the metrics *before*
        // the bytes go out: a client that has read a reply must observe
        // it in the counters, never a sweep later. Requests whose last
        // reply byte just drained feed the wire-latency histogram and
        // its exemplars in the same sweep.
        for entry in conns.iter_mut().flatten() {
            mirror_reply_counts(entry, &metrics);
            progress |= service_writes(entry, &metrics, &obs, &config.profiler, now);
            entry.conn.drain_finished(&mut finished);
            for (trace_id, wire_us) in finished.drain(..) {
                obs.record(STAGE_REQUEST_US, wire_us);
                metrics.request_exemplars.observe(wire_us, TraceId(trace_id));
            }
        }

        // 5. Reap finished and idle connections.
        for slot in conns.iter_mut() {
            let Some(entry) = slot.as_mut() else { continue };
            let idle = entry.conn.is_idle(now, config.idle_timeout);
            if entry.conn.should_close() || idle {
                if idle && !entry.conn.should_close() {
                    NetMetrics::inc(&metrics.idle_closed);
                }
                close_entry(slot, &metrics);
                progress = true;
            }
        }

        // 6. Periodic metrics publish.
        if now.duration_since(last_publish) >= PUBLISH_EVERY {
            metrics.publish(&obs, &mut last_snapshot);
            last_publish = now;
        }

        // 7. Exit once drained (or the drain deadline passed).
        if stopping {
            let flushed = conns.iter().flatten().all(|e| {
                e.pendings.is_empty() && e.conn.in_flight() == 0 && e.conn.write_slice().is_empty()
            });
            let expired = drain_deadline.is_some_and(|d| now >= d);
            if flushed || expired {
                for slot in conns.iter_mut() {
                    if slot.is_some() {
                        close_entry(slot, &metrics);
                    }
                }
                metrics.publish(&obs, &mut last_snapshot);
                return;
            }
        }

        if progress {
            backoff = BUSY_SLEEP;
            metrics.sweep_backoff_us.store(BUSY_SLEEP.as_micros() as u64, Ordering::Relaxed);
        } else {
            // Adaptive poll cadence: a sweep that moved nothing re-checks
            // quickly at first (a reply lands, or the next keep-alive
            // request arrives, microseconds later), doubling toward the
            // 1 ms idle tick so a quiet listener costs nothing measurable.
            // In-flight backend work pins the cadence at the fast end.
            let busy = conns.iter().flatten().any(|e| !e.pendings.is_empty());
            let wait = if busy { BUSY_SLEEP } else { backoff };
            metrics.sweep_backoff_us.store(wait.as_micros() as u64, Ordering::Relaxed);
            thread::sleep(wait);
            backoff = (backoff * 2).min(IDLE_SLEEP);
        }
    }
}

fn accept_burst<B: Backend>(
    listener: &TcpListener,
    config: &NetConfig,
    conns: &mut Vec<Option<ConnEntry<B>>>,
    metrics: &NetMetrics,
    obs: &ObsHandle,
    now: Instant,
) -> bool {
    let mut progress = false;
    loop {
        let started = Instant::now();
        match listener.accept() {
            Ok((stream, _)) => {
                progress = true;
                NetMetrics::inc(&metrics.accepted);
                let open = conns.iter().filter(|c| c.is_some()).count();
                if open >= config.max_connections {
                    // Shed: close immediately rather than queueing.
                    NetMetrics::inc(&metrics.accept_shed);
                    NetMetrics::inc(&metrics.closed);
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    NetMetrics::inc(&metrics.closed);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let entry = ConnEntry {
                    stream,
                    conn: Connection::with_obs(now, config.tracer.clone(), config.profiler.clone()),
                    pendings: Vec::new(),
                    proto_counted: false,
                    last_encoded: (0, 0),
                };
                obs.record(
                    STAGE_ACCEPT_US,
                    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                );
                match conns.iter_mut().position(|c| c.is_none()) {
                    Some(i) => conns[i] = Some(entry),
                    None => conns.push(Some(entry)),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    progress
}

#[allow(clippy::too_many_arguments)]
fn service_reads<B: Backend>(
    entry: &mut ConnEntry<B>,
    config: &NetConfig,
    backend: &Arc<B>,
    metrics: &NetMetrics,
    obs: &ObsHandle,
    buf: &mut [u8],
    draining: bool,
    now: Instant,
) -> bool {
    if !entry.conn.wants_read(&config.limits) {
        return false;
    }
    let started = Instant::now();
    let buffered_before = entry.conn.buffered_input_len();
    let mut total = 0usize;
    let mut peer_closed = false;
    let mut broken = false;
    loop {
        match entry.stream.read(buf) {
            Ok(0) => {
                peer_closed = true;
                break;
            }
            Ok(n) => {
                entry.conn.push_bytes(&buf[..n], now);
                total += n;
                if total >= READ_CHUNK * 4 {
                    break; // Cap the burst so one chatty peer cannot starve the sweep.
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                broken = true;
                break;
            }
        }
    }
    // Pump on new bytes, but also on leftover buffered bytes: a request
    // that arrived while the pipeline was full parses only here, after
    // backpressure lifted — the client won't send more to trigger it.
    if total > 0 || buffered_before > 0 {
        if total > 0 {
            NetMetrics::add(&metrics.bytes_read, total as u64);
            obs.record(
                STAGE_READ_US,
                started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            );
        }
        let decode_started = Instant::now();
        let proto = &mut entry.proto_counted;
        let conn = &mut entry.conn;
        let pendings = &mut entry.pendings;
        conn.pump(&config.limits, draining, |slot, rows, deadline, trace| {
            match backend.submit(rows, deadline, trace) {
                Ok(pending) => {
                    pendings.push((slot, pending));
                    Ok(())
                }
                Err(reject) => Err(reject),
            }
        });
        count_protocol_and_requests(conn, proto, metrics);
        obs.record(
            STAGE_DECODE_US,
            decode_started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
    }
    if peer_closed {
        entry.conn.mark_peer_closed();
    }
    if broken {
        // The read side is gone for good; stop waiting on anything.
        entry.conn.mark_peer_closed();
    }
    let consumed_buffered =
        (buffered_before + total).saturating_sub(entry.conn.buffered_input_len());
    total > 0 || peer_closed || broken || consumed_buffered > 0
}

fn count_protocol_and_requests(conn: &Connection, counted: &mut bool, metrics: &NetMetrics) {
    if !*counted {
        match conn.protocol() {
            Protocol::Http => {
                NetMetrics::inc(&metrics.http_conns);
                *counted = true;
            }
            Protocol::Binary => {
                NetMetrics::inc(&metrics.binary_conns);
                *counted = true;
            }
            Protocol::Undecided => {
                if conn.should_close() {
                    NetMetrics::inc(&metrics.unknown_conns);
                    *counted = true;
                }
            }
        }
    }
}

fn service_writes<B: Backend>(
    entry: &mut ConnEntry<B>,
    metrics: &NetMetrics,
    obs: &ObsHandle,
    profiler: &Profiler,
    now: Instant,
) -> bool {
    if entry.conn.write_slice().is_empty() {
        return false;
    }
    let _write_frame = profiler.enter("net.write");
    let started = Instant::now();
    let mut total = 0usize;
    loop {
        let pending = entry.conn.write_slice();
        if pending.is_empty() {
            break;
        }
        match entry.stream.write(pending) {
            Ok(0) => break,
            Ok(n) => {
                entry.conn.advance_write(n, now);
                total += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Peer vanished mid-write; nothing more to deliver.
                entry.conn.mark_peer_closed();
                let len = entry.conn.write_slice().len();
                entry.conn.advance_write(len, now);
                break;
            }
        }
    }
    if total > 0 {
        NetMetrics::add(&metrics.bytes_written, total as u64);
        obs.record(STAGE_WRITE_US, started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    total > 0
}

fn mirror_reply_counts<B: Backend>(entry: &mut ConnEntry<B>, metrics: &NetMetrics) {
    let (ok, err) = entry.conn.encoded_counts();
    let (last_ok, last_err) = entry.last_encoded;
    let new_ok = ok - last_ok;
    let new_err = err - last_err;
    if new_ok + new_err > 0 {
        match entry.conn.protocol() {
            Protocol::Http => NetMetrics::add(&metrics.http_requests, new_ok + new_err),
            Protocol::Binary => NetMetrics::add(&metrics.binary_requests, new_ok + new_err),
            Protocol::Undecided => {}
        }
        NetMetrics::add(&metrics.wire_errors, new_err);
        entry.last_encoded = (ok, err);
    }
}

fn close_entry<B: Backend>(slot: &mut Option<ConnEntry<B>>, metrics: &NetMetrics) {
    if let Some(entry) = slot.take() {
        NetMetrics::inc(&metrics.closed);
        let _ = entry.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;
    use crate::http::format_predict_request;
    use std::io::{BufRead, BufReader};
    use std::sync::Mutex;

    /// Scores batches instantly: label = row id % 2, epoch = 7.
    struct EchoBackend {
        submitted: Mutex<Vec<usize>>,
    }

    impl EchoBackend {
        fn new() -> Arc<Self> {
            Arc::new(EchoBackend { submitted: Mutex::new(Vec::new()) })
        }
    }

    impl Backend for EchoBackend {
        type Pending = BatchReply;

        fn submit(
            &self,
            rows: &[Row],
            _deadline: Option<Duration>,
            _trace: &TraceCtx,
        ) -> Result<Self::Pending, WireReject> {
            if let Ok(mut s) = self.submitted.lock() {
                s.push(rows.len());
            }
            Ok(BatchReply { epoch: 7, labels: rows.iter().map(|r| r.0 % 2).collect() })
        }

        fn poll(&self, pending: &mut Self::Pending) -> Option<Result<BatchReply, WireReject>> {
            Some(Ok(pending.clone()))
        }
    }

    /// Always sheds with 429.
    struct ShedBackend;

    impl Backend for ShedBackend {
        type Pending = ();

        fn submit(
            &self,
            _: &[Row],
            _: Option<Duration>,
            _: &TraceCtx,
        ) -> Result<Self::Pending, WireReject> {
            Err(WireReject::new(crate::wire::WireStatus::overloaded(), "queue full"))
        }

        fn poll(&self, _: &mut Self::Pending) -> Option<Result<BatchReply, WireReject>> {
            Some(Err(WireReject::new(crate::wire::WireStatus::overloaded(), "queue full")))
        }
    }

    fn start_with<B: Backend>(config: NetConfig, backend: Arc<B>) -> (NetListener, SocketAddr) {
        let listener =
            NetListener::start(config, backend, ObsHandle::noop(), Arc::default()).expect("bind");
        let addr = listener.local_addr();
        (listener, addr)
    }

    fn start_echo() -> (NetListener, SocketAddr) {
        start_with(NetConfig::default(), EchoBackend::new())
    }

    fn read_http_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let code: u16 =
            status_line.split(' ').nth(1).and_then(|c| c.parse().ok()).expect("status code");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (code, String::from_utf8_lossy(&body).to_string())
    }

    #[test]
    fn http_keep_alive_roundtrip_over_a_real_socket() {
        let (listener, addr) = start_echo();
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        for round in 0..3 {
            writer
                .write_all(&format_predict_request(&[round, round + 1], None, true))
                .expect("send");
            let (code, body) = read_http_response(&mut reader);
            assert_eq!(code, 200, "round {round}: {body}");
            assert!(body.contains("\"epoch\":7"), "{body}");
        }
        let m = listener.metrics();
        assert_eq!(NetMetrics::get(&m.http_requests), 3);
        assert_eq!(NetMetrics::get(&m.http_conns), 1);
        listener.shutdown();
    }

    #[test]
    fn binary_roundtrip_over_a_real_socket() {
        let (listener, addr) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut wire = Vec::new();
        frame::encode_request(11, Some(1000), &[2, 3, 4], &mut wire);
        stream.write_all(&wire).expect("send");
        let mut got = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match frame::decode_response(&got, 1 << 20).expect("well-formed") {
                Some((resp, _)) => {
                    assert_eq!(resp.request_id, 11);
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.labels, vec![0, 1, 0]);
                    break;
                }
                None => {
                    let n = stream.read(&mut chunk).expect("read");
                    assert!(n > 0, "server closed early");
                    got.extend_from_slice(&chunk[..n]);
                }
            }
        }
        listener.shutdown();
    }

    #[test]
    fn overload_answers_429_and_keeps_accepting() {
        let (listener, addr) = start_with(NetConfig::default(), Arc::new(ShedBackend));
        for _ in 0..2 {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            writer.write_all(&format_predict_request(&[1], None, true)).expect("send");
            let (code, body) = read_http_response(&mut reader);
            assert_eq!(code, 429, "{body}");
            assert!(body.contains("\"retryable\":true"), "{body}");
        }
        let m = listener.metrics();
        assert_eq!(NetMetrics::get(&m.wire_errors), 2);
        listener.shutdown();
    }

    #[test]
    fn drain_mode_answers_503_and_shutdown_joins() {
        let (listener, addr) = start_echo();
        listener.begin_drain();
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(&format_predict_request(&[1], None, true)).expect("send");
        let (code, _) = read_http_response(&mut reader);
        assert_eq!(code, 503);
        listener.shutdown();
    }

    #[test]
    fn max_connections_sheds_extras() {
        let config = NetConfig { max_connections: 1, ..NetConfig::default() };
        let (listener, addr) = start_with(config, EchoBackend::new());
        let keeper = TcpStream::connect(addr).expect("connect");
        keeper.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = keeper.try_clone().expect("clone");
        let mut reader = BufReader::new(keeper);
        // Prove the first connection is registered before racing a second.
        writer.write_all(&format_predict_request(&[1], None, true)).expect("send");
        let (code, _) = read_http_response(&mut reader);
        assert_eq!(code, 200);
        let extra = TcpStream::connect(addr).expect("connect");
        extra.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut extra = extra;
        // The shed socket is closed without a response: read returns 0.
        let mut tmp = [0u8; 64];
        let n = extra.read(&mut tmp).expect("read on shed conn");
        assert_eq!(n, 0, "shed connection closes cleanly");
        let m = listener.metrics();
        assert!(NetMetrics::get(&m.accept_shed) >= 1);
        listener.shutdown();
    }

    #[test]
    fn tracing_captures_wire_chain_over_a_real_socket() {
        use crossmine_obs::TraceConfig;
        let tracer = Tracer::with_config(TraceConfig {
            ring_capacity: 64,
            window: 64,
            keep_slowest: 64,
            slow_threshold: None,
        });
        let config = NetConfig { tracer: tracer.clone(), ..NetConfig::default() };
        let (listener, addr) = start_with(config, EchoBackend::new());
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let body = b"{\"rows\":[1,2,3]}";
        let req = format!(
            "POST /predict HTTP/1.1\r\nx-request-id: 4242\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        writer.write_all(req.as_bytes()).expect("send head");
        writer.write_all(body).expect("send body");
        let (code, _) = read_http_response(&mut reader);
        assert_eq!(code, 200);
        // Completion runs on the poll thread just after the reply bytes
        // were written; give it a moment.
        let deadline = Instant::now() + Duration::from_secs(5);
        let stored = loop {
            if let Some(t) = tracer.find(TraceId(4242)) {
                break t;
            }
            assert!(Instant::now() < deadline, "trace 4242 never completed");
            thread::sleep(Duration::from_millis(5));
        };
        let names: Vec<_> = stored.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"net.sniff"), "{names:?}");
        assert!(names.contains(&"net.parse"), "{names:?}");
        assert!(names.contains(&"net.write"), "{names:?}");
        // The wire-latency exemplar for this request resolves back to it.
        let m = listener.metrics();
        let found = m.request_exemplars.nonempty().iter().any(|(_, id)| *id == TraceId(4242));
        assert!(found, "request exemplar points at the trace");
        listener.shutdown();
    }

    #[test]
    fn garbage_first_byte_closes_without_response() {
        let (listener, addr) = start_echo();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        stream.write_all(&[0x16, 0x03, 0x01, 0x00]).expect("send");
        let mut tmp = [0u8; 64];
        let n = stream.read(&mut tmp).expect("read");
        assert_eq!(n, 0, "no bytes for unknown protocols");
        listener.shutdown();
    }
}
