//! Property: no byte sequence a peer can send — in any chunking — makes
//! the wire layer panic. Every parser (`sniff`, the binary frame codec,
//! the JSON body parser, the HTTP head parser) returns `Ok` or a typed
//! error, and a full [`Connection`] driven with arbitrary garbage ends
//! in exactly one of the states the listener handles: parsed requests,
//! a typed error response queued for flushing, or a clean close with
//! nothing to say. This is the fuzzing half of the chaos satellite; the
//! socket-level chaos leg lives in `crossmine-serve/tests/net_serve.rs`.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use crossmine_net::conn::SubmitOutcome;
use crossmine_net::frame::{decode_request, decode_response, encode_request};
use crossmine_net::http::{parse_request, HttpLimits};
use crossmine_net::json::parse_predict_body;
use crossmine_net::sniff::sniff;
use crossmine_net::{BatchReply, Connection, NetLimits, WireReject, WireStatus};
use crossmine_relational::Row;

/// Splits `bytes` into chunks whose sizes cycle through `cuts` — the
/// adversarial chunkings a slow or malicious peer produces.
fn chunkings<'a>(bytes: &'a [u8], cuts: &'a [usize]) -> Vec<&'a [u8]> {
    let mut out = Vec::new();
    let mut off = 0;
    let mut i = 0;
    while off < bytes.len() {
        let step = if cuts.is_empty() { bytes.len() } else { 1 + cuts[i % cuts.len()] % 7 };
        let end = (off + step).min(bytes.len());
        out.push(&bytes[off..end]);
        off = end;
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The protocol sniffer total over all byte prefixes.
    #[test]
    fn sniff_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = sniff(&bytes);
    }

    /// Binary request decoding: arbitrary bytes either need more input,
    /// decode, or fail typed — and never read past the buffer.
    #[test]
    fn decode_request_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut rows = Vec::new();
        let _ = decode_request(&bytes, 1024, 64, &mut rows);
        // Tiny limits must also hold: oversize rejection comes from the
        // length prefix alone, before any payload is trusted.
        let _ = decode_request(&bytes, 8, 1, &mut rows);
    }

    /// Same contract for the response direction (used by loadgen).
    #[test]
    fn decode_response_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_response(&bytes, 1024);
        let _ = decode_response(&bytes, 8);
    }

    /// The hand-rolled JSON body parser is total.
    #[test]
    fn parse_predict_body_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut rows = Vec::new();
        let _ = parse_predict_body(&bytes, 64, &mut rows);
    }

    /// The HTTP head parser is total, including under hostile limits.
    #[test]
    fn parse_http_request_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = parse_request(&bytes, &HttpLimits::default());
        let tiny = HttpLimits { max_header_bytes: 32, max_body_bytes: 4 };
        let _ = parse_request(&bytes, &tiny);
    }

    /// A valid binary request survives every chunking: feeding any split
    /// of the encoding yields `NeedMore` until the last byte, then the
    /// exact rows back.
    #[test]
    fn binary_request_roundtrips_under_any_chunking(
        rows in prop::collection::vec(any::<u32>(), 1..32),
        request_id in any::<u64>(),
        deadline_raw in 0u64..60_000,
        cuts in prop::collection::vec(0usize..7, 1..8),
    ) {
        // The shim has no Option strategy; 0 means "no deadline" here.
        let deadline_ms = if deadline_raw == 0 { None } else { Some(deadline_raw) };
        let mut wire = Vec::new();
        encode_request(request_id, deadline_ms, &rows, &mut wire);
        let mut buf = Vec::new();
        let mut decoded = Vec::new();
        let mut done = None;
        for chunk in chunkings(&wire, &cuts) {
            buf.extend_from_slice(chunk);
            match decode_request(&buf, 1 << 20, 4096, &mut decoded).expect("valid frame") {
                Some((head, consumed)) => {
                    done = Some((head, consumed));
                    break;
                }
                None => prop_assert!(buf.len() < wire.len(), "full frame must decode"),
            }
        }
        let (head, consumed) = done.expect("frame decodes once complete");
        prop_assert_eq!(head.request_id, request_id);
        prop_assert_eq!(head.deadline_ms, deadline_ms);
        prop_assert_eq!(consumed, wire.len());
        let got: Vec<u32> = decoded.iter().map(|r| r.0).collect();
        prop_assert_eq!(got, rows);
    }

    /// The full connection state machine fed arbitrary garbage in
    /// arbitrary chunks: never panics, and ends in a handled state —
    /// submitted requests, a typed response queued, or a silent close.
    #[test]
    fn connection_pump_is_total_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..1024),
        cuts in prop::collection::vec(0usize..7, 1..8),
        draining in any::<bool>(),
        reject in any::<bool>(),
    ) {
        let now = Instant::now();
        let limits = NetLimits::default();
        let mut conn = Connection::new(now);
        let mut submitted: Vec<u64> = Vec::new();
        for chunk in chunkings(&bytes, &cuts) {
            conn.push_bytes(chunk, now);
            conn.pump(&limits, draining, |slot, _rows: &[Row], _deadline, _trace| -> SubmitOutcome {
                if reject {
                    Err(WireReject::new(WireStatus::overloaded(), "full"))
                } else {
                    submitted.push(slot);
                    Ok(())
                }
            });
            // Drain the write side as a ready peer would.
            while !conn.write_slice().is_empty() {
                let n = conn.write_slice().len();
                conn.advance_write(n, now);
            }
            if conn.should_close() {
                break;
            }
        }
        // Whatever was submitted must be completable without panicking,
        // and completion must produce flushable bytes (the reply).
        for slot in submitted {
            conn.complete(slot, Ok(BatchReply { epoch: 1, labels: vec![0] }));
        }
        conn.pump(&limits, draining, |_, _, _, _| Ok(()));
        while !conn.write_slice().is_empty() {
            let n = conn.write_slice().len();
            conn.advance_write(n, now);
        }
        // Terminal invariant: nothing left in flight unless the peer
        // still owes bytes; the connection is either open-and-idle or
        // cleanly closable.
        let _ = conn.is_idle(now, Duration::from_secs(60));
        let _ = conn.should_close();
        let (ok, err) = conn.encoded_counts();
        prop_assert!(ok + err < 1_000_000); // counters are sane
    }
}
