//! Throwaway reviewer check: pipeline max_pipeline+1 requests and see if
//! the final one is ever answered.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use crossmine_net::http::format_predict_request;
use crossmine_net::{Backend, BatchReply, NetConfig, NetListener, NetMetrics, WireReject};
use crossmine_obs::{ObsHandle, TraceCtx};
use crossmine_relational::Row;

struct Echo;

impl Backend for Echo {
    type Pending = BatchReply;

    fn submit(
        &self,
        rows: &[Row],
        _deadline: Option<Duration>,
        _trace: &TraceCtx,
    ) -> Result<Self::Pending, WireReject> {
        Ok(BatchReply { epoch: 1, labels: rows.iter().map(|r| r.0 % 2).collect() })
    }

    fn poll(&self, pending: &mut Self::Pending) -> Option<Result<BatchReply, WireReject>> {
        Some(Ok(pending.clone()))
    }
}

#[test]
fn pipelining_past_window_still_answers_everything() {
    let config = NetConfig::default();
    let n = config.limits.max_pipeline + 1; // 65 with defaults
    let listener =
        NetListener::start(config, Arc::new(Echo), ObsHandle::noop(), Arc::<NetMetrics>::default())
            .expect("bind");
    let addr = listener.local_addr();
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(3))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut wire = Vec::new();
    for i in 0..n {
        wire.extend_from_slice(&format_predict_request(&[i as u32], None, true));
    }
    writer.write_all(&wire).expect("send");
    for i in 0..n {
        // Read one response: status line, headers, body.
        let mut status = String::new();
        reader.read_line(&mut status).unwrap_or_else(|e| panic!("response {i}/{n} stalled: {e}"));
        assert!(status.starts_with("HTTP/1.1 200"), "response {i}: {status}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
    }
    listener.shutdown();
}
