//! Offline stand-in for the `rand_distr` crate: the [`Normal`] and [`Exp`]
//! distributions this workspace's data generators use, over the local
//! `rand` shim.

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("Normal requires a finite std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms per sample, second half discarded to keep
        // the distribution stateless.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE); // avoid ln(0)
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// An exponential distribution; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ParamError("Exp requires a finite lambda > 0"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-2.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exp_mean_and_positivity() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }
}
