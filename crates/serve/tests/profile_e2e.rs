//! End-to-end tests of the continuous-profiling surface: a real
//! `PredictionServer` with `telemetry_addr` bound, probed over TCP.
//!
//! Pins the PR-8 contract extended to profiles: `/profile`,
//! `/profile/flamegraph`, and `/profile/heap` answer 404 when profiling
//! is off, and turning the profiler on changes nothing about the
//! Prometheus series set on `/metrics`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossmine_core::CrossMine;
use crossmine_obs::{ProfileConfig, Profiler};
use crossmine_relational::Row;
use crossmine_serve::{CompiledPlan, ModelRegistry, PredictionServer, ServerConfig};
use crossmine_synth::GenParams;

fn fixture() -> (Arc<crossmine_relational::Database>, CompiledPlan, Vec<Row>) {
    let db = crossmine_synth::generate(&GenParams {
        num_relations: 3,
        expected_tuples: 80,
        min_tuples: 30,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().expect("target set")).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).expect("fit");
    let plan = CompiledPlan::compile(&model, &db.schema).expect("compile");
    (Arc::new(db), plan, rows)
}

fn start_server(profiler: Profiler) -> (PredictionServer, Vec<Row>, SocketAddr) {
    let (db, plan, rows) = fixture();
    let registry = Arc::new(ModelRegistry::new(plan));
    let config = ServerConfig::builder()
        .profiler(profiler)
        .telemetry_addr("127.0.0.1:0".parse().expect("literal addr"))
        .build()
        .expect("valid config");
    let server = PredictionServer::start(db, registry, config).expect("start");
    let addr = server.telemetry_addr().expect("telemetry bound");
    (server, rows, addr)
}

fn http_get(addr: SocketAddr, path: &str) -> (u32, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u32 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// The series names of one exposition document, sorted and deduplicated —
/// sample values are load-dependent, the *set of series* is the contract.
fn series_names(body: &str) -> Vec<String> {
    let mut names: Vec<String> = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let metric = l.split(' ').next().expect("metric field");
            metric.split('{').next().expect("name before labels").to_string()
        })
        .collect();
    names.sort();
    names.dedup();
    names
}

#[test]
fn profile_routes_answer_404_when_profiling_is_off() {
    let (server, rows, addr) = start_server(Profiler::noop());
    for &row in rows.iter().take(5) {
        server.predict(row).expect("predict");
    }
    for path in ["/profile", "/profile/flamegraph", "/profile/heap"] {
        let (status, body) = http_get(addr, path);
        assert_eq!(status, 404, "{path} must 404 with profiling off");
        assert_eq!(body.trim(), "profiling disabled");
    }
    server.shutdown();
}

#[test]
fn metrics_series_set_is_identical_with_profiler_on_and_off() {
    let (server_off, rows_off, addr_off) = start_server(Profiler::noop());
    for &row in rows_off.iter().take(5) {
        server_off.predict(row).expect("predict");
    }
    let (status, body_off) = http_get(addr_off, "/metrics");
    assert_eq!(status, 200);
    server_off.shutdown();

    let (server_on, rows_on, addr_on) =
        start_server(Profiler::with_config(ProfileConfig { hz: 997, ..Default::default() }));
    for &row in rows_on.iter().take(5) {
        server_on.predict(row).expect("predict");
    }
    let (status, body_on) = http_get(addr_on, "/metrics");
    assert_eq!(status, 200);
    server_on.shutdown();

    assert_eq!(
        series_names(&body_off),
        series_names(&body_on),
        "an enabled profiler must not add, remove, or rename /metrics series"
    );
}

#[test]
fn profile_routes_serve_collapsed_stacks_flamegraph_and_heap() {
    let profiler = Profiler::with_config(ProfileConfig { hz: 1997, ..Default::default() });
    let (server, rows, addr) = start_server(profiler.clone());

    // Drive enough traffic that the wall sampler catches the workers in
    // their scoring region; force extra sweeps so the test never races
    // the sampling cadence.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        for &row in rows.iter().take(32) {
            server.predict(row).expect("predict");
            profiler.sample_now();
        }
        let collapsed = profiler.collapsed();
        if collapsed.contains("serve.worker;serve.batch;serve.eval") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sampler never observed the serve.worker;serve.batch;serve.eval chain:\n{collapsed}"
        );
    }

    let (status, collapsed) = http_get(addr, "/profile");
    assert_eq!(status, 200);
    assert!(
        collapsed.contains("serve.worker;serve.batch;serve.eval"),
        "folded stacks must carry the worker eval chain:\n{collapsed}"
    );
    for line in collapsed.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line is `stack count`");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().is_ok(), "bad count in folded line: {line}");
    }

    let (status, svg) = http_get(addr, "/profile/flamegraph");
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"), "flamegraph must be a self-contained SVG");
    assert!(svg.trim_end().ends_with("</svg>"));
    assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count(), "unbalanced SVG groups");
    assert!(svg.contains("serve.eval"), "flamegraph must carry the eval frame");

    let (status, heap) = http_get(addr, "/profile/heap");
    assert_eq!(status, 200);
    assert!(heap.contains("# heap:"), "{heap}");
    assert!(heap.contains("# locks:"), "{heap}");
    // The admission path timed every queue-lock acquisition.
    assert!(heap.contains("serve.queue"), "queue lock wait series missing:\n{heap}");

    server.shutdown();
}

#[test]
fn registry_swap_contention_is_attributed_when_profiling() {
    let profiler = Profiler::with_config(ProfileConfig { hz: 97, ..Default::default() });
    let (server, rows, addr) = start_server(profiler);
    let (_, plan, _) = fixture();
    server.registry().install(plan);
    for &row in rows.iter().take(3) {
        server.predict(row).expect("predict");
    }
    let (status, heap) = http_get(addr, "/profile/heap");
    assert_eq!(status, 200);
    let swap_line = heap
        .lines()
        .find(|l| l.ends_with("registry.swap"))
        .unwrap_or_else(|| panic!("no registry.swap lock series:\n{heap}"));
    let count: u64 = swap_line.split(' ').next().expect("count field").parse().expect("number");
    assert!(count >= 1, "the install must have been timed: {swap_line}");
    server.shutdown();
}
