//! Disk-resident serving: compiled-plan prediction over a [`DiskDatabase`]
//! must agree exactly with in-memory prediction, and the buffer pool must
//! report a healthy (non-zero) hit rate through its `Display` stats.

use crossmine_core::classifier::CrossMine;
use crossmine_relational::Row;
use crossmine_serve::{predict_disk, CompiledPlan};
use crossmine_storage::DiskDatabase;
use crossmine_synth::{generate, GenParams};

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("crossmine-serve-disk-{tag}-{}", std::process::id()))
}

#[test]
fn disk_prediction_matches_memory_and_reports_hits() {
    let db = generate(&GenParams {
        num_relations: 5,
        expected_tuples: 120,
        min_tuples: 40,
        seed: 23,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).unwrap();
    assert!(model.num_clauses() >= 1);
    let expected = model.predict(&db, &rows).unwrap();
    let plan = CompiledPlan::compile(&model, &db.schema).unwrap();

    let path = tmp("parity");
    // 8 frames: small enough to evict, large enough to re-hit hot pages.
    let mut disk = DiskDatabase::spill(&db, &path, 8).unwrap();
    let got = predict_disk(&plan, &mut disk, &rows).unwrap();
    assert_eq!(got, expected, "disk-resident prediction must equal in-memory prediction");

    let stats = disk.stats();
    assert!(stats.hits > 0, "serving against disk must re-hit buffered pages");
    assert!(stats.hit_rate() > 0.0);
    let rendered = format!("{stats}");
    assert!(rendered.contains("hits="), "stats Display: {rendered}");
    assert!(rendered.contains("hit_rate="), "stats Display: {rendered}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_prediction_small_batches_and_tiny_pool() {
    let db = generate(&GenParams {
        num_relations: 4,
        expected_tuples: 80,
        min_tuples: 25,
        seed: 7,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).unwrap();
    let expected = model.predict(&db, &rows).unwrap();
    let plan = CompiledPlan::compile(&model, &db.schema).unwrap();

    let path = tmp("tiny");
    // A pathologically small pool forces constant eviction; results must
    // not change, and per-chunk prediction must agree with the full batch.
    let mut disk = DiskDatabase::spill(&db, &path, 2).unwrap();
    let mut got = Vec::new();
    for c in rows.chunks(7) {
        got.extend(predict_disk(&plan, &mut disk, c).unwrap());
    }
    assert_eq!(got, expected);
    assert!(disk.resident_pages() <= 2);
    assert!(disk.stats().evictions > 0, "the tiny pool must have evicted");
    std::fs::remove_file(&path).ok();
}
