//! Admission-control contract tests: the server never blocks a submitter,
//! sheds typed `Overloaded` errors when full, expires queued deadlines,
//! closes admission on shutdown while draining everything it accepted, and
//! rejects nonsense configurations up front.
//!
//! Worker stalls are induced with [`ChaosConfig`] (stall on every batch) so
//! the queue deterministically backs up without racing on real load.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_relational::{ClassLabel, Database, Row};
use crossmine_serve::{
    ChaosConfig, CompiledPlan, ModelRegistry, PredictionHandle, PredictionServer, ServeError,
    ServeRequest, ServerConfig,
};
use crossmine_synth::{generate, GenParams};

struct Fixture {
    db: Arc<Database>,
    plan: CompiledPlan,
    rows: Vec<Row>,
    expected: Vec<ClassLabel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = generate(&GenParams {
            num_relations: 4,
            expected_tuples: 60,
            min_tuples: 20,
            seed: 11,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model: CrossMineModel = CrossMine::default().fit(&db, &rows).unwrap();
        let expected = model.predict(&db, &rows).unwrap();
        let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
        Fixture { db: Arc::new(db), plan, rows, expected }
    })
}

/// A chaos config that stalls every batch for `ms` — no panics, no
/// oversizing — so workers are predictably slow.
fn stall_all(ms: u64) -> ChaosConfig {
    ChaosConfig { stall_every: 1, stall_for: Duration::from_millis(ms), ..ChaosConfig::off() }
}

fn start(f: &Fixture, config: ServerConfig) -> PredictionServer {
    let registry = Arc::new(ModelRegistry::new(f.plan.clone()));
    PredictionServer::start(Arc::clone(&f.db), registry, config).unwrap()
}

/// One-row submission through the unified [`ServeRequest`] surface.
fn submit_one(server: &PredictionServer, row: Row) -> Result<PredictionHandle, ServeError> {
    server.serve(ServeRequest::row(row)).map(|mut handles| handles.pop().expect("one handle"))
}

#[test]
fn invalid_configs_are_rejected_up_front() {
    for (broken, needle) in [
        (ServerConfig::builder().workers(0).build(), "workers"),
        (ServerConfig::builder().max_batch(0).build(), "max_batch"),
        (ServerConfig::builder().queue_capacity(0).build(), "queue_capacity"),
        (ServerConfig::builder().workers(100_000).build(), "workers"),
        (ServerConfig::builder().shards(0).build(), "shard.shards"),
        (ServerConfig::builder().shards(1_000).build(), "shard.shards"),
    ] {
        let err = broken.unwrap_err();
        let ServeError::InvalidConfig(reason) = &err else {
            panic!("expected InvalidConfig, got {err:?}");
        };
        assert!(reason.contains(needle), "{reason} should name {needle}");
        assert!(!err.is_retryable(), "a config error cannot be retried away");
    }
}

#[test]
fn multi_shard_config_is_rejected_by_a_single_server() {
    let f = fixture();
    let registry = Arc::new(ModelRegistry::new(f.plan.clone()));
    let config = ServerConfig::builder().shards(2).build().unwrap();
    let err = PredictionServer::start(Arc::clone(&f.db), registry, config).unwrap_err();
    let ServeError::InvalidConfig(reason) = &err else {
        panic!("expected InvalidConfig, got {err:?}");
    };
    assert!(reason.contains("ShardRouter"), "{reason} should point at ShardRouter");
}

#[test]
fn full_queue_sheds_with_typed_overloaded_and_submit_never_blocks() {
    let f = fixture();
    let server = start(
        f,
        ServerConfig::builder()
            .workers(1)
            .max_batch(1)
            .max_wait(Duration::from_micros(50))
            .queue_capacity(2)
            .chaos(stall_all(20))
            .build()
            .unwrap(),
    );

    // Flood far past capacity without ever waiting. With the single worker
    // stalled 20 ms per one-row batch, the 2-slot queue must fill.
    let mut admitted = Vec::new();
    let mut sheds = 0usize;
    for k in 0..200 {
        match submit_one(&server, f.rows[k % f.rows.len()]) {
            Ok(h) => admitted.push(h),
            Err(ServeError::Overloaded { queue_depth, capacity }) => {
                assert_eq!(capacity, 2);
                assert!(queue_depth >= capacity, "shed while not full: {queue_depth}");
                sheds += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(sheds > 0, "200 instant submits against a stalled 2-slot queue must shed");
    assert!(!admitted.is_empty(), "some requests must also be admitted");

    // Drain guarantee: every admitted request is answered — correctly.
    let n_admitted = admitted.len();
    for h in admitted {
        let p = h.wait().expect("admitted requests are scored");
        let i = f.rows.iter().position(|&r| r == p.row).unwrap();
        assert_eq!(p.label, f.expected[i]);
    }
    let report = server.shutdown();
    assert_eq!(report.requests, n_admitted as u64);
    assert_eq!(report.shed, sheds as u64);
    assert_eq!(report.errors, 0);
}

#[test]
fn queued_past_deadline_is_answered_with_deadline_exceeded() {
    let f = fixture();
    let server = start(
        f,
        ServerConfig::builder()
            .workers(1)
            .max_batch(1)
            .max_wait(Duration::from_micros(50))
            .queue_capacity(64)
            .chaos(stall_all(10))
            .build()
            .unwrap(),
    );

    // Occupy the worker (its batch stalls 10 ms), then queue requests that
    // allow only 1 ms: they must expire before the worker reaches them.
    let occupier = submit_one(&server, f.rows[0]).unwrap();
    let tight: Vec<_> = (0..5)
        .map(|k| {
            let req =
                ServeRequest::row(f.rows[k % f.rows.len()]).deadline(Duration::from_millis(1));
            server.serve(req).unwrap().pop().expect("one handle")
        })
        .collect();

    occupier.wait().expect("the undeadlined occupier is scored");
    let mut expired = 0;
    for h in tight {
        match h.wait() {
            Err(ServeError::DeadlineExceeded { waited }) => {
                assert!(waited >= Duration::from_millis(1), "expired early after {waited:?}");
                expired += 1;
            }
            Ok(_) => {} // collected before its deadline — legal, just fast
            Err(e) => panic!("unexpected answer: {e}"),
        }
    }
    assert!(expired > 0, "a 1 ms deadline behind a 10 ms stall must expire");
    let report = server.shutdown();
    assert_eq!(report.deadline_expired, expired);
    assert_eq!(report.requests, 6, "expiry answers requests, it does not un-admit them");
}

#[test]
fn begin_shutdown_closes_admission_but_drains_admitted_requests() {
    let f = fixture();
    let server = start(
        f,
        ServerConfig::builder()
            .workers(2)
            .max_batch(8)
            .queue_capacity(64)
            .chaos(stall_all(2))
            .build()
            .unwrap(),
    );

    // A multi-row ServeRequest is all-or-nothing: one call, 20 handles.
    let rows: Vec<Row> = (0..20).map(|k| f.rows[k % f.rows.len()]).collect();
    let handles = server.serve(ServeRequest::new(rows)).unwrap();
    assert_eq!(handles.len(), 20, "one handle per row, in input order");
    server.begin_shutdown();

    // Admission is closed immediately...
    let err = submit_one(&server, f.rows[0]).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    assert!(!err.is_retryable());

    // ...but everything admitted before is still scored and answered.
    for h in handles {
        let p = h.wait().expect("admitted before shutdown, must be answered");
        let i = f.rows.iter().position(|&r| r == p.row).unwrap();
        assert_eq!(p.label, f.expected[i]);
    }
    let report = server.shutdown();
    assert_eq!(report.requests, 20);
    assert_eq!(report.errors, 0);
}

#[test]
fn dropped_handles_do_not_wedge_the_server() {
    let f = fixture();
    let server = start(f, ServerConfig::builder().workers(1).build().unwrap());
    // The caller walks away; the request is still scored, the undeliverable
    // reply is counted, and the server keeps serving.
    drop(submit_one(&server, f.rows[0]).unwrap());
    let p = server.predict(f.rows[1]).unwrap();
    assert_eq!(p.label, f.expected[1]);
    let report = server.shutdown();
    assert_eq!(report.requests, 2);
    assert_eq!(report.errors, 1, "exactly the abandoned reply");
}

/// The deprecated pre-`ServeRequest` aliases stay thin wrappers over the
/// same admission path: still correct, still drained, still counted.
#[test]
#[allow(deprecated)]
fn deprecated_submit_aliases_still_work() {
    let f = fixture();
    let server = start(f, ServerConfig::default());
    let h1 = server.submit(f.rows[0]).unwrap();
    let h2 = server.submit_with_deadline(f.rows[1], Duration::from_secs(5)).unwrap();
    let p3 = server.predict_within(f.rows[2], Duration::from_secs(5)).unwrap();
    assert_eq!(h1.wait().unwrap().label, f.expected[0]);
    assert_eq!(h2.wait().unwrap().label, f.expected[1]);
    assert_eq!(p3.label, f.expected[2]);
    let report = server.shutdown();
    assert_eq!(report.requests, 3);
    assert_eq!(report.errors, 0);
}
