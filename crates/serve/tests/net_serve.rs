//! End-to-end wire-protocol serving: a real `PredictionServer` with the
//! `crossmine-net` front end enabled, driven over real TCP sockets in
//! both protocols, plus the chaos net leg — stalled clients, half-closed
//! sockets, and mid-frame disconnects must degrade the connection in
//! question, never the server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_net::frame;
use crossmine_net::http::format_predict_request;
use crossmine_relational::{ClassLabel, Database, Row};
use crossmine_serve::{
    ChaosConfig, CompiledPlan, ModelRegistry, NetConfig, PredictionServer, ServerConfig,
};
use crossmine_synth::{generate, GenParams};

struct Fixture {
    db: Arc<Database>,
    plan: CompiledPlan,
    rows: Vec<Row>,
    expected: Vec<ClassLabel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = generate(&GenParams {
            num_relations: 3,
            expected_tuples: 60,
            min_tuples: 20,
            seed: 47,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model: CrossMineModel = CrossMine::default().fit(&db, &rows).unwrap();
        let expected = model.predict(&db, &rows).unwrap();
        let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
        Fixture { db: Arc::new(db), plan, rows, expected }
    })
}

fn start_server(config: ServerConfig) -> PredictionServer {
    let f = fixture();
    let registry = Arc::new(ModelRegistry::new(f.plan.clone()));
    PredictionServer::start(Arc::clone(&f.db), registry, config).expect("valid config")
}

fn net_config() -> ServerConfig {
    ServerConfig::builder().net(NetConfig::default()).build().expect("valid config")
}

fn connect(server: &PredictionServer) -> TcpStream {
    let addr = server.net_addr().expect("net front end configured");
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream
}

fn read_http_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 =
        status_line.split(' ').nth(1).and_then(|c| c.parse().ok()).expect("status code");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().expect("length");
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (code, headers, String::from_utf8_lossy(&body).to_string())
}

/// Extracts `"labels":[...]` from a 200 predict body.
fn parse_labels(body: &str) -> Vec<u32> {
    let start = body.find("\"labels\":[").expect("labels field") + "\"labels\":[".len();
    let end = body[start..].find(']').expect("closing bracket") + start;
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("label"))
        .collect()
}

#[test]
fn http_predictions_match_the_model_over_a_real_socket() {
    let f = fixture();
    let server = start_server(net_config());
    let stream = connect(&server);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    // Keep-alive: several batches over one connection.
    for chunk in f.rows.chunks(8).take(4) {
        let ids: Vec<u32> = chunk.iter().map(|r| r.0).collect();
        writer.write_all(&format_predict_request(&ids, None, true)).expect("send");
        let (code, _, body) = read_http_response(&mut reader);
        assert_eq!(code, 200, "{body}");
        let labels = parse_labels(&body);
        let want: Vec<u32> = chunk
            .iter()
            .map(|r| {
                let i = f.rows.iter().position(|x| x == r).unwrap();
                f.expected[i].0
            })
            .collect();
        assert_eq!(labels, want, "wire labels must match CrossMineModel::predict");
    }
    let report = server.shutdown();
    assert_eq!(report.errors, 0);
}

#[test]
fn binary_predictions_match_the_model_over_a_real_socket() {
    let f = fixture();
    let server = start_server(net_config());
    let mut stream = connect(&server);
    let ids: Vec<u32> = f.rows.iter().take(8).map(|r| r.0).collect();
    let mut wire = Vec::new();
    frame::encode_request(1234, None, &ids, &mut wire);
    stream.write_all(&wire).expect("send");
    let mut got = Vec::new();
    let mut chunk = [0u8; 4096];
    let resp = loop {
        if let Some((resp, _)) = frame::decode_response(&got, 1 << 20).expect("well-formed") {
            break resp;
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed before replying");
        got.extend_from_slice(&chunk[..n]);
    };
    assert_eq!(resp.request_id, 1234);
    assert_eq!(resp.status, 200);
    let want: Vec<u32> = f.expected.iter().take(8).map(|l| l.0).collect();
    assert_eq!(resp.labels, want);
    server.shutdown();
}

#[test]
fn telemetry_exports_crossmine_net_series() {
    let server = start_server(
        ServerConfig::builder()
            .net(NetConfig::default())
            .telemetry_addr("127.0.0.1:0".parse().unwrap())
            .build()
            .expect("valid config"),
    );
    // Drive one request through the wire so the counters are nonzero.
    let stream = connect(&server);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&format_predict_request(&[fixture().rows[0].0], None, true)).expect("send");
    let (code, _, _) = read_http_response(&mut reader);
    assert_eq!(code, 200);

    let taddr = server.telemetry_addr().expect("telemetry configured");
    let mut tstream = TcpStream::connect(taddr).expect("connect telemetry");
    tstream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    tstream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").expect("send");
    let mut doc = String::new();
    tstream.read_to_string(&mut doc).expect("read");
    for series in [
        "crossmine_net_accepted_total",
        "crossmine_net_http_conns_total",
        "crossmine_net_http_requests_total",
        "crossmine_net_open_conns",
    ] {
        assert!(doc.contains(series), "missing {series} in:\n{doc}");
    }
    assert!(doc.contains("crossmine_net_http_requests_total 1"), "one request was served:\n{doc}");
    server.shutdown();
}

#[test]
fn overload_is_a_typed_429_and_accept_never_blocks() {
    // A stalling worker and a 2-slot queue: wire requests pile up and the
    // listener must answer 429 from the admission check while continuing
    // to accept fresh connections.
    let server = start_server(
        ServerConfig::builder()
            .workers(1)
            .queue_capacity(2)
            .chaos(ChaosConfig {
                stall_every: 1,
                stall_for: Duration::from_millis(30),
                ..Default::default()
            })
            .net(NetConfig::default())
            .build()
            .expect("valid config"),
    );
    let f = fixture();
    // Fire a burst of concurrent connections WITHOUT reading responses,
    // so requests pile into the 2-slot queue while the worker stalls.
    let mut streams = Vec::new();
    for _ in 0..30 {
        let stream = connect(&server);
        let mut writer = stream.try_clone().expect("clone");
        writer
            .write_all(&format_predict_request(&[f.rows[0].0, f.rows[1].0], None, false))
            .expect("send even under overload");
        streams.push(stream);
    }
    let mut saw_429 = false;
    let mut saw_retry_after = false;
    let mut answered = 0usize;
    for stream in streams {
        let mut reader = BufReader::new(stream);
        let (code, headers, body) = read_http_response(&mut reader);
        answered += 1;
        match code {
            200 => {}
            429 => {
                saw_429 = true;
                saw_retry_after |= headers.iter().any(|(n, _)| n == "retry-after");
                assert!(body.contains("\"retryable\":true"), "{body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(answered, 30, "every connection was accepted and answered");
    assert!(saw_429, "the queue never filled — chaos stall not effective");
    assert!(saw_retry_after, "429 must carry Retry-After");
    server.shutdown();
}

/// The chaos net leg: hostile connection patterns. Each must cost at most
/// its own connection; a well-behaved request afterwards still succeeds.
#[test]
fn net_chaos_stalled_half_closed_and_midframe_disconnects() {
    let f = fixture();
    let server = start_server(
        ServerConfig::builder()
            .net(NetConfig { idle_timeout: Duration::from_millis(200), ..NetConfig::default() })
            .build()
            .expect("valid config"),
    );

    // 1. Stalled client: opens a connection, sends half an HTTP request,
    //    then goes silent. (Held open; reaped by the idle timeout later.)
    let mut stalled = connect(&server);
    stalled.write_all(b"POST /predict HTTP/1.1\r\nContent-").expect("send partial");

    // 2. Mid-frame disconnect: half a binary frame, then a hard drop.
    let mut midframe = connect(&server);
    let mut wire = Vec::new();
    frame::encode_request(9, None, &[f.rows[0].0], &mut wire);
    midframe.write_all(&wire[..wire.len() / 2]).expect("send half frame");
    drop(midframe);

    // 3. Half-closed socket: send a full request, shut down the write
    //    side, and still expect the full response on the read side.
    let half = connect(&server);
    let mut writer = half.try_clone().expect("clone");
    writer.write_all(&format_predict_request(&[f.rows[0].0], None, false)).expect("send");
    half.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(half);
    let (code, _, _) = read_http_response(&mut reader);
    assert_eq!(code, 200, "half-closed clients still get their response");

    // 4. Garbage protocol: closed cleanly without a response.
    let mut garbage = connect(&server);
    garbage.write_all(&[0x01, 0x02, 0x03]).expect("send garbage");
    let mut tmp = [0u8; 16];
    assert_eq!(garbage.read(&mut tmp).expect("read"), 0);

    // After all of that, a well-formed request on a fresh connection
    // works and returns the right label.
    let stream = connect(&server);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&format_predict_request(&[f.rows[0].0], None, true)).expect("send");
    let (code, _, body) = read_http_response(&mut reader);
    assert_eq!(code, 200, "{body}");
    assert_eq!(parse_labels(&body), vec![f.expected[0].0]);

    // The stalled connection is eventually reaped by the idle timeout:
    // its read side sees EOF instead of hanging forever.
    stalled.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let n = stalled.read(&mut tmp).expect("stalled conn read");
    assert_eq!(n, 0, "stalled connection must be reaped, not leaked");

    let report = server.shutdown();
    assert_eq!(report.errors, 0, "hostile connections must not lose admitted work");
}

#[test]
fn shutdown_finishes_in_flight_wire_requests() {
    let f = fixture();
    let server = start_server(net_config());
    let stream = connect(&server);
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer.write_all(&format_predict_request(&[f.rows[0].0], None, true)).expect("send");
    // Shut down with the request possibly still in flight: the drain must
    // deliver the response before the socket dies.
    let handle = std::thread::spawn(move || {
        let (code, _, _) = read_http_response(&mut reader);
        code
    });
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();
    let code = handle.join().expect("reader thread");
    assert_eq!(code, 200, "in-flight request answered through the drain");
}
