//! End-to-end request tracing: a real `PredictionServer` with the wire
//! front end and telemetry endpoint bound, probed over actual TCP. The
//! acceptance contract of the tracing subsystem lives here:
//!
//! * one `POST /predict` with an `X-Request-Id` yields **one** stored
//!   trace whose span tree is the full causal chain — conn-sniff →
//!   parse → admission-wait → batch → eval → reply-write — with every
//!   parent link intact;
//! * the p99 serve-latency bucket's exemplar resolves through
//!   `GET /trace` to a stored trace carrying that `TraceId`;
//! * with tracing off, `/trace` answers 404 and `/metrics` exposes the
//!   exact same metric families as with tracing on.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_relational::{Database, Row};
use crossmine_serve::{
    CompiledPlan, ModelRegistry, NetConfig, PredictionServer, ServerConfig, StoredTrace,
    TraceConfig, TraceId, Tracer,
};
use crossmine_synth::{generate, GenParams};

struct Fixture {
    db: Arc<Database>,
    plan: CompiledPlan,
    rows: Vec<Row>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = generate(&GenParams {
            num_relations: 3,
            expected_tuples: 60,
            min_tuples: 20,
            seed: 53,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model: CrossMineModel = CrossMine::default().fit(&db, &rows).unwrap();
        let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
        Fixture { db: Arc::new(db), plan, rows }
    })
}

/// A tracer that keeps every completed trace: ring and window far larger
/// than anything a test produces, so sampling decisions are all "keep".
fn keep_all_tracer() -> Tracer {
    Tracer::with_config(TraceConfig {
        ring_capacity: 1024,
        window: 1024,
        keep_slowest: 1024,
        ..TraceConfig::default()
    })
}

fn start_server(config: ServerConfig) -> PredictionServer {
    let f = fixture();
    let registry = Arc::new(ModelRegistry::new(f.plan.clone()));
    PredictionServer::start(Arc::clone(&f.db), registry, config).expect("valid config")
}

/// One raw HTTP exchange over a fresh connection: returns (status, body).
fn http_roundtrip(addr: SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(request).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let text = String::from_utf8_lossy(&response).to_string();
    let status: u16 =
        text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn predict_request(row: u32, request_id: u64) -> Vec<u8> {
    let body = format!("{{\"rows\":[{row}]}}");
    format!(
        "POST /predict HTTP/1.1\r\nContent-Type: application/json\r\n\
         X-Request-Id: {request_id}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    http_roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

/// The wire path completes a trace when the reply's last byte is accepted
/// by the socket — a hair after the client reads the response. Poll the
/// ring briefly instead of racing the poll thread.
fn find_trace(tracer: &Tracer, id: TraceId) -> StoredTrace {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(t) = tracer.find(id) {
            return t;
        }
        assert!(Instant::now() < deadline, "trace {id:?} never completed into the ring");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn wire_request_yields_the_full_causal_chain_as_one_tree() {
    let f = fixture();
    let tracer = keep_all_tracer();
    let server = start_server(
        ServerConfig::builder()
            .net(NetConfig::default())
            .telemetry_addr("127.0.0.1:0".parse().expect("literal addr"))
            .tracer(tracer.clone())
            .build()
            .expect("valid config"),
    );
    let net_addr = server.net_addr().expect("net bound");

    let (code, body) = http_roundtrip(net_addr, &predict_request(f.rows[0].0, 4242));
    assert_eq!(code, 200, "{body}");

    // The trace reuses the client's X-Request-Id and holds the whole
    // causal chain, wire to worker and back.
    let trace = find_trace(&tracer, TraceId(4242));
    assert!(!trace.error, "a scored request is not an error trace");
    let span = |name: &str| trace.spans.iter().find(|s| s.name == name).map(|s| (s.id, s.parent));
    let stages =
        ["net.sniff", "net.parse", "serve.queue_wait", "serve.batch", "serve.eval", "net.write"];
    for stage in stages {
        assert!(span(stage).is_some(), "stage {stage} missing from {:?}", trace.spans);
    }
    // Parent links: eval nests under this trace's batch span; every other
    // stage hangs off the root request span — one connected tree.
    let (batch_id, batch_parent) = span("serve.batch").expect("batch span");
    let (_, eval_parent) = span("serve.eval").expect("eval span");
    assert_eq!(eval_parent, batch_id, "serve.eval must nest under serve.batch");
    let root = crossmine_obs::ROOT_SPAN;
    for stage in ["net.sniff", "net.parse", "serve.queue_wait", "net.write"] {
        let (_, parent) = span(stage).expect("stage span");
        assert_eq!(parent, root, "{stage} must hang off the root request span");
    }
    assert_eq!(batch_parent, root);
    // Causal order: each stage starts no earlier than the previous.
    let start = |name: &str| trace.spans.iter().find(|s| s.name == name).expect("span").start_ns;
    for pair in stages.windows(2) {
        assert!(
            start(pair[0]) <= start(pair[1]),
            "{} starts after {} in {:?}",
            pair[0],
            pair[1],
            trace.spans
        );
    }

    // The same trace is retrievable over HTTP, in both renderings.
    let telemetry = server.telemetry_addr().expect("telemetry bound");
    let (code, jsonl) = http_get(telemetry, "/trace");
    assert_eq!(code, 200);
    assert!(jsonl.contains("\"trace_id\":4242"), "{jsonl}");
    assert!(jsonl.contains("\"name\":\"serve.eval\""), "{jsonl}");
    let (code, chrome) = http_get(telemetry, "/trace/chrome");
    assert_eq!(code, 200);
    assert!(chrome.trim_start().starts_with('['), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    server.shutdown();
}

#[test]
fn p99_exemplar_resolves_to_a_stored_trace() {
    let f = fixture();
    let tracer = keep_all_tracer();
    let server = start_server(
        ServerConfig::builder()
            .net(NetConfig::default())
            .telemetry_addr("127.0.0.1:0".parse().expect("literal addr"))
            .tracer(tracer.clone())
            .build()
            .expect("valid config"),
    );
    let net_addr = server.net_addr().expect("net bound");
    for (i, &row) in f.rows.iter().take(8).enumerate() {
        let (code, body) = http_roundtrip(net_addr, &predict_request(row.0, 9000 + i as u64));
        assert_eq!(code, 200, "{body}");
    }
    let telemetry = server.telemetry_addr().expect("telemetry bound");
    let (code, exemplars) = http_get(telemetry, "/trace/exemplars");
    assert_eq!(code, 200);
    assert!(exemplars.contains("\"serve_latency_us\":["), "{exemplars}");
    // The highest-bucket serve-latency exemplar IS the p99 bucket's for
    // this workload (the p99 estimate lands in the slowest populated
    // bucket). It must resolve to a stored trace with that TraceId.
    let serve_section = exemplars
        .split("\"serve_latency_us\":[")
        .nth(1)
        .and_then(|s| s.split(']').next())
        .expect("serve exemplar section");
    let last_id: u64 = serve_section
        .rsplit("\"trace_id\":")
        .next()
        .and_then(|s| s.trim_end_matches(['}', ',']).parse().ok())
        .expect("at least one serve exemplar");
    assert!((9000..9008).contains(&last_id), "exemplar id {last_id} not from this run");
    let resolved = find_trace(&tracer, TraceId(last_id));
    assert_eq!(resolved.id, TraceId(last_id));
    assert!(resolved.spans.iter().any(|s| s.name == "serve.eval"), "{resolved:?}");
    // And it is present in the /trace JSONL dump under the same id.
    let (code, jsonl) = http_get(telemetry, "/trace");
    assert_eq!(code, 200);
    assert!(jsonl.contains(&format!("\"trace_id\":{last_id}")), "{jsonl}");
    server.shutdown();
}

#[test]
fn in_process_submissions_are_traced_and_completed_by_workers() {
    let f = fixture();
    let tracer = keep_all_tracer();
    let server =
        start_server(ServerConfig::builder().tracer(tracer.clone()).build().expect("valid config"));
    server.predict(f.rows[0]).expect("predict");
    // In-process traces complete in the worker right after the reply is
    // sent — no socket involved, but still poll: the send happens before
    // complete() only from the worker's perspective.
    let deadline = Instant::now() + Duration::from_secs(5);
    let trace = loop {
        if let Some(t) = tracer
            .recent(16)
            .into_iter()
            .find(|t| !t.error && t.spans.iter().any(|s| s.name == "serve.eval"))
        {
            break t;
        }
        assert!(Instant::now() < deadline, "in-process trace never completed");
        std::thread::sleep(Duration::from_millis(2));
    };
    for stage in ["serve.queue_wait", "serve.batch", "serve.eval"] {
        assert!(trace.spans.iter().any(|s| s.name == stage), "{stage} missing: {trace:?}");
    }
    assert!(
        !trace.spans.iter().any(|s| s.name.starts_with("net.")),
        "in-process trace must have no wire spans: {trace:?}"
    );

    // A zero deadline expires at batch collection: tail sampling must keep
    // the trace as an error even though it was fast.
    let req = crossmine_serve::ServeRequest::row(f.rows[0]).deadline(Duration::ZERO);
    let err = server
        .serve(req)
        .and_then(|mut handles| handles.pop().expect("one handle").wait())
        .expect_err("zero deadline must expire");
    assert!(matches!(err, crossmine_serve::ServeError::DeadlineExceeded { .. }), "{err:?}");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if tracer
            .recent(16)
            .iter()
            .any(|t| t.error && t.spans.iter().any(|s| s.name == "serve.queue_wait"))
        {
            break;
        }
        assert!(Instant::now() < deadline, "expired-deadline trace never kept");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
}

#[test]
fn scrape_surface_is_identical_with_tracing_on_and_off() {
    let f = fixture();
    // Two identical servers, the only difference being the tracer.
    let families = |tracer: Tracer| {
        let server = start_server(
            ServerConfig::builder()
                .net(NetConfig::default())
                .telemetry_addr("127.0.0.1:0".parse().expect("literal addr"))
                .obs(crossmine_serve::ObsHandle::enabled())
                .tracer(tracer)
                .build()
                .expect("valid config"),
        );
        let net_addr = server.net_addr().expect("net bound");
        let (code, _) = http_roundtrip(net_addr, &predict_request(f.rows[0].0, 7));
        assert_eq!(code, 200);
        let telemetry = server.telemetry_addr().expect("telemetry bound");
        let (code, metrics) = http_get(telemetry, "/metrics");
        assert_eq!(code, 200);
        let mut fams: Vec<String> =
            metrics.lines().filter(|l| l.starts_with("# TYPE ")).map(|l| l.to_string()).collect();
        fams.sort();
        (server, fams)
    };
    let (off_server, off) = families(Tracer::noop());
    let (on_server, on) = families(keep_all_tracer());
    assert_eq!(off, on, "tracing must not add or remove metric families");

    // /trace is 404 with tracing off, 200 with it on.
    let off_telemetry = off_server.telemetry_addr().expect("bound");
    let on_telemetry = on_server.telemetry_addr().expect("bound");
    for path in ["/trace", "/trace/chrome", "/trace/exemplars"] {
        let (code, body) = http_get(off_telemetry, path);
        assert_eq!((code, body.trim()), (404, "tracing disabled"), "{path}");
        let (code, _) = http_get(on_telemetry, path);
        assert_eq!(code, 200, "{path}");
    }
    off_server.shutdown();
    on_server.shutdown();
}
