//! End-to-end tests of the live telemetry endpoint: a real
//! `PredictionServer` with `telemetry_addr` bound to a loopback port,
//! probed over actual TCP exactly the way `curl` or a Prometheus scraper
//! would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crossmine_core::CrossMine;
use crossmine_obs::ObsHandle;
use crossmine_relational::Row;
use crossmine_serve::{CompiledPlan, ModelRegistry, PredictionServer, ServerConfig};
use crossmine_synth::GenParams;

struct Fixture {
    db: Arc<crossmine_relational::Database>,
    plan: CompiledPlan,
    rows: Vec<Row>,
}

fn fixture() -> Fixture {
    let db = crossmine_synth::generate(&GenParams {
        num_relations: 3,
        expected_tuples: 80,
        min_tuples: 30,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().expect("target set")).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).expect("fit");
    let plan = CompiledPlan::compile(&model, &db.schema).expect("compile");
    Fixture { db: Arc::new(db), plan, rows }
}

fn start_server(obs: ObsHandle) -> (PredictionServer, Vec<Row>, SocketAddr) {
    let f = fixture();
    let registry = Arc::new(ModelRegistry::new(f.plan));
    let config = ServerConfig::builder()
        .obs(obs)
        .telemetry_addr("127.0.0.1:0".parse().expect("literal addr"))
        .build()
        .expect("valid config");
    let server = PredictionServer::start(f.db, registry, config).expect("start");
    let addr = server.telemetry_addr().expect("telemetry bound");
    (server, f.rows, addr)
}

/// A one-shot HTTP GET, the way `curl` does it: returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u32, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u32 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    let (server, rows, addr) = start_server(ObsHandle::enabled());
    for &row in rows.iter().take(20) {
        server.predict(row).expect("predict");
    }
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    // Counters from the serve aggregate, prefixed and suffixed per
    // Prometheus conventions.
    assert!(body.contains("# TYPE crossmine_serve_requests_total counter"), "{body}");
    assert!(body.contains("crossmine_serve_requests_total 20"), "{body}");
    assert!(body.contains("# TYPE crossmine_serve_latency_us histogram"), "{body}");
    // Every histogram ends in +Inf and carries _sum/_count.
    assert!(body.contains("crossmine_serve_latency_us_bucket{le=\"+Inf\"} 20"), "{body}");
    assert!(body.contains("crossmine_serve_latency_us_count 20"), "{body}");
    assert!(body.contains("crossmine_serve_uptime_seconds"), "{body}");
    assert!(body.contains("crossmine_buildinfo{"), "{body}");
    // The obs registry rides along when the handle is enabled: the workers
    // record per-batch spans under serve.evaluate_batch.
    assert!(body.contains("crossmine_serve_evaluate_batch_ns"), "{body}");

    // Exposition-format sanity: every non-comment line is `name[{labels}] value`.
    for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let value = line.rsplit(' ').next().expect("value field");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value in line: {line}"
        );
    }
    server.shutdown();
}

#[test]
fn healthz_flips_to_shutting_down_during_drain() {
    let (server, rows, addr) = start_server(ObsHandle::noop());
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (200, "serving"));

    for &row in rows.iter().take(5) {
        server.predict(row).expect("predict");
    }
    server.begin_shutdown();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (503, "shutting-down"));
    // The endpoint stays up through the drain; only `shutdown` (or drop)
    // takes it down.
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    server.shutdown();
    assert!(TcpStream::connect(addr).is_err(), "endpoint must stop after shutdown");
}

#[test]
fn healthz_reports_degraded_after_deadline_expiry_then_recovers() {
    let (server, rows, addr) = start_server(ObsHandle::noop());
    // Baseline probe: establishes the degradation watermark.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (200, "serving"));

    // A zero deadline is already expired when a worker collects it: a
    // deterministic degradation event.
    let req = crossmine_serve::ServeRequest::row(rows[0]).deadline(Duration::ZERO);
    let err = server
        .serve(req)
        .and_then(|mut handles| handles.pop().expect("one handle").wait())
        .expect_err("zero deadline must expire");
    assert!(matches!(err, crossmine_serve::ServeError::DeadlineExceeded { .. }), "{err:?}");

    // Degraded once (events since last probe), then back to serving.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (200, "degraded"));
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (200, "serving"));
    server.shutdown();
}

#[test]
fn buildinfo_reports_version_and_unknown_routes_get_404() {
    let (server, _rows, addr) = start_server(ObsHandle::noop());
    let (status, body) = http_get(addr, "/buildinfo");
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))), "{body}");
    assert!(body.contains("\"git_sha\":"), "{body}");
    assert!(body.contains("\"model_epoch\":0"), "{body}");

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn telemetry_disabled_by_default() {
    let f = fixture();
    let registry = Arc::new(ModelRegistry::new(f.plan));
    let server = PredictionServer::start(f.db, registry, ServerConfig::default()).expect("start");
    assert_eq!(server.telemetry_addr(), None);
    server.shutdown();
}
