//! Sharded-serving contract: a [`ShardRouter`] over N shared-nothing
//! shards answers byte-identically to a single [`PredictionServer`] —
//! labels, epochs, and provenance — for every shard count; shard hints
//! pin placement; deltas broadcast; rolling installs swap shard-by-shard
//! with zero downtime and zero dropped requests even under chaos; and the
//! router's wire/telemetry front ends speak for all shards at once.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_net::http::format_predict_request;
use crossmine_relational::{AttrId, ClassLabel, Database, DeltaBatch, Row, Value};
use crossmine_serve::{
    ChaosConfig, CompiledPlan, ModelRegistry, PredictionServer, ServeError, ServeRequest,
    ServerConfig, ShardRouter,
};
use crossmine_synth::{generate, GenParams};

struct Fixture {
    db: Arc<Database>,
    plan: CompiledPlan,
    plan_b: CompiledPlan,
    expected_b: Vec<ClassLabel>,
    rows: Vec<Row>,
    expected: Vec<ClassLabel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = generate(&GenParams {
            num_relations: 4,
            expected_tuples: 80,
            min_tuples: 30,
            seed: 59,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model: CrossMineModel = CrossMine::default().fit(&db, &rows).unwrap();
        let expected = model.predict(&db, &rows).unwrap();
        let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
        // Model B: clauseless — every row answers the default label, so a
        // swap is observable on every single reply.
        let model_b = CrossMineModel {
            clauses: Vec::new(),
            default_label: model.default_label,
            classes: model.classes.clone(),
        };
        let expected_b = model_b.predict(&db, &rows).unwrap();
        let plan_b = CompiledPlan::compile(&model_b, &db.schema).unwrap();
        Fixture { db: Arc::new(db), plan, plan_b, expected_b, rows, expected }
    })
}

fn start_router(f: &Fixture, config: ServerConfig) -> ShardRouter {
    ShardRouter::start(Arc::clone(&f.db), &f.plan, config).expect("router starts")
}

fn shards_config(n: usize) -> ServerConfig {
    ServerConfig::builder().shards(n).build().expect("valid")
}

#[test]
fn sharded_labels_match_a_single_server_for_every_shard_count() {
    let f = fixture();
    for shards in [1usize, 2, 4] {
        let router = start_router(f, shards_config(shards));
        assert_eq!(router.num_shards(), shards);
        // One batched request over every row: handles come back in
        // request order no matter how rows scattered.
        let handles = router.serve(ServeRequest::new(f.rows.clone())).expect("admit all");
        assert_eq!(handles.len(), f.rows.len());
        for (i, h) in handles.into_iter().enumerate() {
            let p = h.wait().expect("answered");
            assert_eq!(p.row, f.rows[i], "order preserved across shards");
            assert_eq!(p.label, f.expected[i], "row {} under {shards} shards", f.rows[i].0);
            assert_eq!(p.epoch, 0);
        }
        let stats = router.shutdown();
        assert_eq!(stats.shards.len(), shards);
        assert_eq!(stats.total_requests(), f.rows.len() as u64);
        assert_eq!(stats.total_errors(), 0);
        if shards > 1 {
            let busy = stats.shards.iter().filter(|s| s.snapshot.requests > 0).count();
            assert!(busy > 1, "routing must actually spread rows over shards");
        }
    }
}

#[test]
fn explain_batch_provenance_is_identical_to_a_single_server() {
    let f = fixture();
    let registry = Arc::new(ModelRegistry::new(f.plan.clone()));
    let single = PredictionServer::start(Arc::clone(&f.db), registry, ServerConfig::default())
        .expect("start");
    let router = start_router(f, shards_config(3));

    let want = single.explain_batch(&f.rows).expect("single explain");
    let got = router.explain_batch(&f.rows).expect("sharded explain");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.explanation.row, w.explanation.row);
        assert_eq!(g.explanation.label, w.explanation.label);
        assert_eq!(g.explanation.default_used, w.explanation.default_used);
        assert_eq!(g.epoch, w.epoch);
        assert_eq!(g.explanation.fired.len(), w.explanation.fired.len());
        for (gf, wf) in g.explanation.fired.iter().zip(&w.explanation.fired) {
            assert_eq!(gf.clause_index, wf.clause_index);
            assert_eq!(gf.label, wf.label);
        }
    }
    router.shutdown();
    single.shutdown();
}

#[test]
fn shard_hint_pins_the_request_and_out_of_range_is_rejected() {
    let f = fixture();
    let router = start_router(f, shards_config(4));

    // Pin every row to shard 2 regardless of the hash.
    let handles =
        router.serve(ServeRequest::new(f.rows.clone()).shard_hint(2)).expect("hinted admission");
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait().expect("answered").label, f.expected[i]);
    }
    let stats = router.stats();
    for s in &stats.shards {
        let want = if s.shard == 2 { f.rows.len() as u64 } else { 0 };
        assert_eq!(s.snapshot.requests, want, "shard {} saw off-hint traffic", s.shard);
    }

    let err = router.serve(ServeRequest::row(f.rows[0]).shard_hint(4)).unwrap_err();
    let ServeError::InvalidConfig(reason) = &err else {
        panic!("expected InvalidConfig, got {err:?}");
    };
    assert!(reason.contains("shard_hint"), "{reason}");
    router.shutdown();
}

#[test]
fn rolling_install_swaps_shard_by_shard_with_zero_downtime() {
    let f = fixture();
    let router = start_router(f, shards_config(4));

    // Before: everyone serves epoch 0. predict() keeps working at every
    // instant of the roll; each reply is wholly consistent with the model
    // its epoch names.
    assert_eq!(router.epochs(), vec![0, 0, 0, 0]);
    let check = |p: &crossmine_serve::Prediction, i: usize| match p.epoch {
        0 => assert_eq!(p.label, f.expected[i], "epoch-0 reply must match model A"),
        1 => assert_eq!(p.label, f.expected_b[i], "epoch-1 reply must match model B"),
        e => panic!("impossible epoch {e}"),
    };

    std::thread::scope(|scope| {
        let roller = scope.spawn(|| router.rolling_install(&f.plan_b));
        for _pass in 0..4 {
            for (i, &row) in f.rows.iter().enumerate() {
                check(&router.predict(row).expect("served throughout the roll"), i);
            }
        }
        let epochs = roller.join().expect("roller");
        assert_eq!(epochs, vec![1, 1, 1, 1]);
    });
    assert_eq!(router.epochs(), vec![1, 1, 1, 1]);

    // After the roll: every reply is model B at epoch 1.
    for (i, &row) in f.rows.iter().enumerate() {
        let p = router.predict(row).expect("post-roll predict");
        assert_eq!((p.epoch, p.label), (1, f.expected_b[i]));
    }
    let stats = router.shutdown();
    assert_eq!(stats.total_errors(), 0, "nothing dropped during the roll");
    assert_eq!((stats.min_epoch(), stats.max_epoch()), (1, 1));
}

#[test]
fn rolling_install_under_chaos_drops_nothing() {
    let f = fixture();
    let config = ServerConfig::builder()
        .shards(2)
        .workers(2)
        .max_batch(8)
        .queue_capacity(4)
        .chaos(ChaosConfig::standard())
        .build()
        .expect("valid");
    let router = start_router(f, config);
    let answered = AtomicU64::new(0);
    let total = (2 * f.rows.len()) as u64;

    std::thread::scope(|scope| {
        for c in 0..2 {
            let router = &router;
            let answered = &answered;
            scope.spawn(move || {
                for (k, &row) in f.rows.iter().enumerate() {
                    // Retry every retryable degradation, like a real client.
                    'req: for attempt in 0..1000 {
                        let submitted = router
                            .serve(ServeRequest::row(row))
                            .map(|mut h| h.pop().expect("one handle"));
                        match submitted.and_then(|h| h.wait()) {
                            Ok(p) => {
                                match p.epoch {
                                    0 => assert_eq!(p.label, f.expected[k]),
                                    1 => assert_eq!(p.label, f.expected_b[k]),
                                    e => panic!("impossible epoch {e}"),
                                }
                                answered.fetch_add(1, Ordering::Relaxed);
                                break 'req;
                            }
                            Err(e) if e.is_retryable() => {
                                std::thread::sleep(Duration::from_micros(50 * (attempt + 1)));
                            }
                            Err(e) => panic!("non-retryable under chaos: {e}"),
                        }
                    }
                    // Roll mid-stream from one of the clients.
                    if c == 0 && k == f.rows.len() / 2 {
                        router.rolling_install(&f.plan_b);
                    }
                }
            });
        }
    });
    assert_eq!(answered.load(Ordering::Relaxed), total, "every request answered");
    let stats = router.shutdown();
    assert_eq!(stats.min_epoch(), 1, "the roll completed on every shard");
    assert!(stats.total_requests() >= total, "retries only add to the count");
}

#[test]
fn deltas_broadcast_to_every_shard() {
    // fig2 is small enough to reason about; the synth fixture's delta
    // story is covered by overlay_serving.rs. Here: every shard must see
    // the delta, whichever shard a row routes to.
    let base = crossmine_relational::fixtures::fig2_loan_account();
    let rows: Vec<Row> = base.relation(base.target().unwrap()).iter_rows().collect();
    let model = CrossMine::default().fit(&base, &rows).unwrap();
    let plan = CompiledPlan::compile(&model, &base.schema).unwrap();
    let loan = base.schema.rel_id("Loan").unwrap();
    let account = base.schema.rel_id("Account").unwrap();

    let mut batch = DeltaBatch::new();
    batch.insert(account, vec![Value::Key(500), Value::Cat(0), Value::Num(990101.0)]);
    batch.insert_labeled(
        loan,
        vec![Value::Key(6), Value::Key(500), Value::Num(800.0), Value::Num(12.0), Value::Num(70.0)],
        ClassLabel::POS,
    );
    batch.update(loan, Row(0), AttrId(2), Value::Num(1500.0));

    let mut merged = base.clone();
    merged.apply_delta(&batch).unwrap();
    let merged_rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();
    let registry = Arc::new(ModelRegistry::new(plan.clone()));
    let merged_server =
        PredictionServer::start(Arc::new(merged), registry, ServerConfig::default()).unwrap();

    let router =
        ShardRouter::start(Arc::new(base), &plan, shards_config(3)).expect("router starts");
    let stats = router.apply_delta(&batch).expect("broadcast accepted");
    assert_eq!(stats.inserted_rows, 2);

    for &row in &merged_rows {
        assert_eq!(
            router.predict(row).expect("sharded overlay predict").label,
            merged_server.predict(row).expect("merged predict").label,
            "row {} (routed to shard {})",
            row.0,
            router.shard_of(row)
        );
    }

    // A bad follow-up is rejected in lockstep and installs nowhere.
    let mut bad = DeltaBatch::new();
    bad.update(loan, Row(0), AttrId(0), Value::Key(77)); // key column
    let err = router.apply_delta(&bad).unwrap_err();
    assert!(matches!(err, ServeError::InvalidDelta(_)), "{err:?}");
    for &row in &merged_rows {
        assert_eq!(
            router.predict(row).unwrap().label,
            merged_server.predict(row).unwrap().label,
            "rejected batch must change nothing"
        );
    }
    merged_server.shutdown();
    router.shutdown();
}

#[test]
fn wire_front_end_routes_across_shards_on_one_port() {
    let f = fixture();
    let config = ServerConfig::builder()
        .shards(4)
        .net(crossmine_serve::NetConfig::default())
        .build()
        .expect("valid");
    let router = start_router(f, config);
    let addr = router.net_addr().expect("net bound");
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    for chunk in f.rows.chunks(16).take(3) {
        let ids: Vec<u32> = chunk.iter().map(|r| r.0).collect();
        writer.write_all(&format_predict_request(&ids, None, true)).expect("send");
        let (code, body) = read_http_response(&mut reader);
        assert_eq!(code, 200, "{body}");
        let labels = parse_labels(&body);
        let want: Vec<u32> = chunk
            .iter()
            .map(|r| f.expected[f.rows.iter().position(|x| x == r).unwrap()].0)
            .collect();
        assert_eq!(labels, want, "wire labels must match across shard scatter");
    }
    let stats = router.shutdown();
    assert!(
        stats.shards.iter().filter(|s| s.snapshot.requests > 0).count() > 1,
        "a 48-row wire workload must touch multiple shards"
    );
}

#[test]
fn telemetry_renders_per_shard_series_and_aggregates() {
    let f = fixture();
    let config = ServerConfig::builder()
        .shards(2)
        .telemetry_addr("127.0.0.1:0".parse().unwrap())
        .build()
        .expect("valid");
    let router = start_router(f, config);
    for &row in f.rows.iter().take(20) {
        router.predict(row).expect("predict");
    }
    router.rolling_install(&f.plan_b);

    let addr = router.telemetry_addr().expect("telemetry bound");
    let metrics = http_get(addr, "/metrics");
    // Aggregate serve series sum over shards...
    assert!(metrics.contains("crossmine_serve_requests_total 20"), "{metrics}");
    assert!(metrics.contains("crossmine_serve_latency_us_count 20"), "{metrics}");
    // ...plus per-shard series and the shard-count gauge.
    assert!(metrics.contains("crossmine_shard_count 2"), "{metrics}");
    for k in 0..2 {
        assert!(metrics.contains(&format!("crossmine_shard_{k}_requests_total")), "{metrics}");
        assert!(metrics.contains(&format!("crossmine_shard_{k}_model_epoch 1")), "{metrics}");
        assert!(metrics.contains(&format!("crossmine_shard_{k}_model_swaps_total 1")), "{metrics}");
    }
    // Aggregate epoch reports the oldest shard (all rolled: 1), and the
    // buildinfo page carries the shard count.
    assert!(metrics.contains("crossmine_serve_model_epoch 1"), "{metrics}");
    let buildinfo = http_get(addr, "/buildinfo");
    assert!(buildinfo.contains("\"shards\":2"), "{buildinfo}");
    router.shutdown();
}

#[test]
fn traced_requests_carry_the_shard_id_on_their_batch_span() {
    use crossmine_serve::{TraceConfig, Tracer};
    let f = fixture();
    let tracer = Tracer::with_config(TraceConfig {
        ring_capacity: 1024,
        window: 1024,
        keep_slowest: 1024,
        ..TraceConfig::default()
    });
    let config = ServerConfig::builder().shards(3).tracer(tracer.clone()).build().expect("valid");
    let router = start_router(f, config);

    let row = f.rows[0];
    let want_shard = router.shard_of(row) as u64;
    let ctx = tracer.start(4242);
    let handles = router.serve(ServeRequest::row(row).trace(ctx.clone())).expect("admit");
    for h in handles {
        h.wait().expect("answered");
    }
    let _ = ctx.complete();

    let trace = tracer.find(crossmine_serve::TraceId(4242)).expect("trace retained");
    let batch = trace.spans.iter().find(|s| s.name == "serve.batch").expect("batch span");
    let shard_attr = batch.attrs.iter().find(|(k, _)| *k == "shard").expect("shard attr stamped");
    assert_eq!(shard_attr.1, crossmine_obs::FieldValue::U64(want_shard));
    let rendered = trace.render_jsonl();
    assert!(rendered.contains(&format!("\"shard\":{want_shard}")), "{rendered}");
    router.shutdown();
}

fn read_http_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let code: u16 =
        status_line.split(' ').nth(1).and_then(|c| c.parse().ok()).expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (code, String::from_utf8_lossy(&body).to_string())
}

/// Extracts `"labels":[...]` from a 200 predict body.
fn parse_labels(body: &str) -> Vec<u32> {
    let start = body.find("\"labels\":[").expect("labels field") + "\"labels\":[".len();
    let end = body[start..].find(']').expect("closing bracket") + start;
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("label"))
        .collect()
}

/// One blocking HTTP GET, returning the body of a 200 response.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200"), "{path}: {response}");
    response.split("\r\n\r\n").nth(1).unwrap_or("").to_string()
}
