//! Server-level delta/overlay contract: `PredictionServer::apply_delta`
//! answers exactly as a server over the materialized merge would — labels,
//! epochs, and full provenance — without recompiling or copying the base;
//! invalid batches are rejected atomically as typed [`ServeError`]s; and a
//! property sweep pins base + overlay to the materialized merge for
//! arbitrary valid delta batches.

use std::sync::Arc;

use proptest::prelude::*;

use crossmine_core::CrossMine;
use crossmine_relational::fixtures::fig2_loan_account;
use crossmine_relational::{
    AttrId, ClassLabel, Database, DeltaBatch, DeltaOverlay, RelId, Row, Value,
};
use crossmine_serve::{
    evaluate_batch, evaluate_batch_overlay, CompiledPlan, ModelRegistry, OverlayScratch,
    PredictionServer, ServeError, ServeScratch, ServerConfig,
};

fn plan_for(db: &Database) -> CompiledPlan {
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
    let model = CrossMine::default().fit(db, &rows).unwrap();
    CompiledPlan::compile(&model, &db.schema).unwrap()
}

fn start_server(db: Arc<Database>, plan: &CompiledPlan) -> PredictionServer {
    let registry = Arc::new(ModelRegistry::new(plan.clone()));
    PredictionServer::start(db, registry, ServerConfig::default()).expect("start")
}

/// The exemplar mutation: a fresh account, a loan referencing it (the
/// same-batch FK case), a loan referencing a base account, one patched
/// amount.
fn fig2_delta(db: &Database) -> DeltaBatch {
    let loan = db.schema.rel_id("Loan").unwrap();
    let account = db.schema.rel_id("Account").unwrap();
    let mut batch = DeltaBatch::new();
    batch.insert(account, vec![Value::Key(500), Value::Cat(0), Value::Num(990101.0)]);
    batch.insert_labeled(
        loan,
        vec![Value::Key(6), Value::Key(500), Value::Num(800.0), Value::Num(12.0), Value::Num(70.0)],
        ClassLabel::POS,
    );
    batch.insert_labeled(
        loan,
        vec![
            Value::Key(7),
            Value::Key(45),
            Value::Num(9500.0),
            Value::Num(24.0),
            Value::Num(480.0),
        ],
        ClassLabel::NEG,
    );
    batch.update(loan, Row(0), AttrId(2), Value::Num(1500.0));
    batch
}

#[test]
fn served_overlay_matches_a_server_over_the_materialized_merge() {
    let base = fig2_loan_account();
    let plan = plan_for(&base);
    let batch = fig2_delta(&base);

    let mut merged = base.clone();
    merged.apply_delta(&batch).unwrap();
    let rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();

    let overlay_server = start_server(Arc::new(base), &plan);
    assert!(!overlay_server.has_overlay());
    let stats = overlay_server.apply_delta(&batch).expect("valid delta");
    assert_eq!((stats.inserted_rows, stats.updated_cells, stats.ops), (3, 1, 4));
    assert!(overlay_server.has_overlay());

    let merged_server = start_server(Arc::new(merged), &plan);
    for &row in &rows {
        let got = overlay_server.predict(row).expect("overlay predict");
        let want = merged_server.predict(row).expect("merged predict");
        assert_eq!(got.label, want.label, "row {}", row.0);
        assert_eq!(got.epoch, want.epoch);
    }
    merged_server.shutdown();
    let report = overlay_server.shutdown();
    assert_eq!(report.requests, rows.len() as u64);
    assert_eq!(report.errors, 0);
}

#[test]
fn overlay_rows_are_visible_to_predict_explained_with_full_provenance() {
    let base = fig2_loan_account();
    let plan = plan_for(&base);
    let batch = fig2_delta(&base);

    let mut merged = base.clone();
    merged.apply_delta(&batch).unwrap();
    let rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();
    assert!(rows.len() > 5, "the delta appends target rows past the base");

    let overlay_server = start_server(Arc::new(base), &plan);
    overlay_server.apply_delta(&batch).expect("valid delta");
    let merged_server = start_server(Arc::new(merged), &plan);

    let got = overlay_server.explain_batch(&rows).expect("overlay explain");
    let want = merged_server.explain_batch(&rows).expect("merged explain");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.explanation.row, w.explanation.row);
        assert_eq!(g.explanation.label, w.explanation.label);
        assert_eq!(g.explanation.default_used, w.explanation.default_used);
        assert_eq!(g.epoch, w.epoch);
        assert_eq!(g.explanation.fired.len(), w.explanation.fired.len());
        for (gf, wf) in g.explanation.fired.iter().zip(&w.explanation.fired) {
            assert_eq!(gf.clause_index, wf.clause_index);
            assert_eq!(gf.label, wf.label);
        }
    }
    // The delta-appended target rows specifically (not just base rows).
    for &row in &rows[5..] {
        let e = overlay_server.predict_explained(row).expect("appended row explained");
        assert_eq!(e.explanation.row, row);
    }
    merged_server.shutdown();
    overlay_server.shutdown();
}

#[test]
fn dangling_fk_is_a_typed_invalid_delta_and_leaves_the_overlay_unchanged() {
    let base = fig2_loan_account();
    let plan = plan_for(&base);
    let loan = base.schema.rel_id("Loan").unwrap();
    let expected = {
        let rows: Vec<Row> = (0..base.num_targets() as u32).map(Row).collect();
        let mut scratch = ServeScratch::new();
        evaluate_batch(&plan, &base, &rows, &mut scratch)
    };
    let server = start_server(Arc::new(base), &plan);

    let mut bad = DeltaBatch::new();
    bad.insert_labeled(
        loan,
        vec![
            Value::Key(6),
            Value::Key(9999), // no such account
            Value::Num(1.0),
            Value::Num(1.0),
            Value::Num(1.0),
        ],
        ClassLabel::POS,
    );
    let err = server.apply_delta(&bad).expect_err("dangling FK must be rejected");
    let ServeError::InvalidDelta(reason) = &err else {
        panic!("expected InvalidDelta, got {err:?}");
    };
    assert!(reason.contains("9999"), "the reason names the dangling key: {reason}");
    assert!(!err.is_retryable(), "resubmitting the same bad batch cannot help");
    assert!(!server.has_overlay(), "a rejected batch installs nothing");

    // The server still answers exactly as before the rejected batch.
    for (i, label) in expected.iter().enumerate() {
        assert_eq!(server.predict(Row(i as u32)).unwrap().label, *label);
    }
    server.shutdown();
}

#[test]
fn deltas_accumulate_and_later_batches_see_earlier_inserts() {
    let base = fig2_loan_account();
    let plan = plan_for(&base);
    let loan = base.schema.rel_id("Loan").unwrap();
    let account = base.schema.rel_id("Account").unwrap();

    let mut merged = base.clone();
    let server = start_server(Arc::new(base), &plan);

    let mut first = DeltaBatch::new();
    first.insert(account, vec![Value::Key(700), Value::Cat(1), Value::Num(980214.0)]);
    server.apply_delta(&first).expect("first batch valid");
    merged.apply_delta(&first).unwrap();

    // The second batch references the account the FIRST batch inserted:
    // validation must run against base + accumulated history.
    let mut second = DeltaBatch::new();
    second.insert_labeled(
        loan,
        vec![
            Value::Key(8),
            Value::Key(700),
            Value::Num(3000.0),
            Value::Num(36.0),
            Value::Num(95.0),
        ],
        ClassLabel::NEG,
    );
    let stats = server.apply_delta(&second).expect("cross-batch FK resolves");
    assert_eq!(stats.ops, 2, "stats cover the accumulated history");
    merged.apply_delta(&second).unwrap();

    let rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();
    let merged_server = start_server(Arc::new(merged), &plan);
    for &row in &rows {
        assert_eq!(
            server.predict(row).unwrap().label,
            merged_server.predict(row).unwrap().label,
            "row {}",
            row.0
        );
    }
    merged_server.shutdown();
    server.shutdown();
}

#[test]
fn apply_delta_is_refused_during_shutdown() {
    let base = fig2_loan_account();
    let plan = plan_for(&base);
    let server = start_server(Arc::new(base.clone()), &plan);
    server.begin_shutdown();
    let err = server.apply_delta(&fig2_delta(&base)).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
    server.shutdown();
}

/// Generator for arbitrary *valid* delta batches against the fig2 base:
/// any number of fresh accounts, loans referencing base or same-batch
/// accounts, and numeric cell patches on base rows.
fn arb_fig2_delta() -> impl Strategy<Value = Vec<(u8, u64, i64)>> {
    // Encoded ops: (kind, selector, value) decoded in `decode_delta`.
    // Keeping the strategy on plain tuples keeps shrinking effective.
    prop::collection::vec((0u8..4, 0u64..4000, -1000i64..1000), 0..12)
}

fn decode_delta(base: &Database, ops: &[(u8, u64, i64)]) -> DeltaBatch {
    let loan = base.schema.rel_id("Loan").unwrap();
    let account = base.schema.rel_id("Account").unwrap();
    let base_accounts = [124u64, 108, 45, 67];
    let mut batch = DeltaBatch::new();
    let mut new_accounts: Vec<u64> = Vec::new();
    let mut next_account = 1000u64;
    let mut next_loan = 100u64;
    for &(kind, sel, c) in ops {
        let (a, b) = (sel % 4, sel / 4);
        match kind {
            // A fresh account (key space disjoint from the base).
            0 => {
                batch.insert(
                    account,
                    vec![
                        Value::Key(next_account),
                        Value::Cat((a % 2) as u32),
                        Value::Num(c as f64),
                    ],
                );
                new_accounts.push(next_account);
                next_account += 1;
            }
            // A loan on a base account or (when any exist) a same-batch one.
            1 => {
                let fk = if b % 2 == 0 || new_accounts.is_empty() {
                    base_accounts[(a as usize) % base_accounts.len()]
                } else {
                    new_accounts[(b as usize) % new_accounts.len()]
                };
                let label = if c >= 0 { ClassLabel::POS } else { ClassLabel::NEG };
                batch.insert_labeled(
                    loan,
                    vec![
                        Value::Key(next_loan),
                        Value::Key(fk),
                        Value::Num((b as f64) * 37.0),
                        Value::Num(12.0 + (a as f64)),
                        Value::Num(c as f64),
                    ],
                    label,
                );
                next_loan += 1;
            }
            // Patch a numeric loan cell (attrs 2..=4 are Numerical).
            2 => {
                batch.update(
                    loan,
                    Row((b % 5) as u32),
                    AttrId(2 + (a % 3) as usize),
                    Value::Num(c as f64),
                );
            }
            // Patch the numeric account date (attr 2).
            _ => {
                batch.update(account, Row((b % 4) as u32), AttrId(2), Value::Num(c as f64));
            }
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For ANY valid delta batch, evaluating base + overlay is
    /// byte-identical to evaluating the materialized merge — over every
    /// target row, base and appended alike.
    #[test]
    fn overlay_eval_matches_materialized_merge(ops in arb_fig2_delta()) {
        let base = fig2_loan_account();
        let plan = plan_for(&base);
        let batch = decode_delta(&base, &ops);

        let overlay = DeltaOverlay::build(&base, &batch).expect("generated batches are valid");
        let mut merged = base.clone();
        merged.apply_delta(&batch).expect("same validation, same verdict");
        let rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();

        let mut mscratch = ServeScratch::new();
        let want = evaluate_batch(&plan, &merged, &rows, &mut mscratch);
        let mut oscratch = OverlayScratch::new();
        let got = evaluate_batch_overlay(&plan, &base, &overlay, &rows, &mut oscratch);
        prop_assert_eq!(got, want);
    }

    /// Overlay/merge agreement also holds under RelId-level accounting:
    /// the overlay reports exactly the rows/cells the merge added.
    #[test]
    fn overlay_stats_match_the_merge_growth(ops in arb_fig2_delta()) {
        let base = fig2_loan_account();
        let batch = decode_delta(&base, &ops);
        let overlay = DeltaOverlay::build(&base, &batch).expect("valid");
        let mut merged = base.clone();
        merged.apply_delta(&batch).expect("valid");
        let grown: usize = (0..merged.schema.num_relations())
            .map(|r| {
                let rel = RelId(r);
                merged.relation(rel).len() - base.relation(rel).len()
            })
            .sum();
        prop_assert_eq!(overlay.inserted_rows(), grown);
    }
}
