//! Regression guard for the serve metrics report format.
//!
//! The log₂ histogram moved from `crossmine-serve` into `crossmine-obs`;
//! these tests pin that the move changed nothing observable: the
//! re-exported types are the obs types, the bucket math is bit-identical,
//! and `MetricsSnapshot`'s `Display` output is **byte-for-byte** pinned
//! (the only change since the move is the `degraded` line added with
//! admission control).

use std::sync::atomic::Ordering;

use crossmine_serve::metrics::{bucket_of, bucket_upper_bound, NUM_BUCKETS};
use crossmine_serve::{Histogram, ServeMetrics};

#[test]
fn histogram_reexport_is_the_obs_type() {
    // A serve Histogram must be accepted wherever the obs type is wanted
    // (and vice versa) — proof the re-export is the same type, not a copy.
    fn takes_obs(h: &crossmine_obs::metrics::Histogram) -> u64 {
        h.count()
    }
    let h: Histogram = Histogram::new();
    h.record(7);
    assert_eq!(takes_obs(&h), 1);
    assert_eq!(NUM_BUCKETS, crossmine_obs::metrics::NUM_BUCKETS);
    for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
        assert_eq!(bucket_of(v), crossmine_obs::metrics::bucket_of(v));
    }
    for b in 0..NUM_BUCKETS {
        assert_eq!(bucket_upper_bound(b), crossmine_obs::metrics::bucket_upper_bound(b));
    }
}

#[test]
fn snapshot_display_is_byte_compatible() {
    let m = ServeMetrics::new();
    m.requests.fetch_add(3, Ordering::Relaxed);
    m.batches.fetch_add(2, Ordering::Relaxed);
    for v in [80u64, 120, 2000] {
        m.latency_us.record(v);
    }
    m.batch_size.record(1);
    m.batch_size.record(2);
    m.queue_depth.record(5);
    m.shed.fetch_add(2, Ordering::Relaxed);
    m.deadline_expired.fetch_add(1, Ordering::Relaxed);
    m.worker_restarts.fetch_add(1, Ordering::Relaxed);
    let snap = m.snapshot(4);

    // Hand-derived from the bucket math: 80 → bucket [64,127] (bound 127),
    // 120 → same bucket, 2000 → bucket [1024,2047] (bound 2047). p50 of 3
    // samples is rank 2 → 127; p95/p99 are rank 3 → 2047; max is exact.
    // Batch sizes 1 and 2 land in buckets with bounds 1 and 3.
    let expected = "requests: 3  errors: 0  batches: 2\n\
                    degraded shed: 2  deadline_expired: 1  worker_restarts: 1\n\
                    latency  p50: 127us  p95: 2047us  p99: 2047us  max: 2000us\n\
                    batch    mean: 1.5  max: 2  queue depth max: 5  swaps: 4\n\
                    batch-size histogram (<=bound: count): <=1: 1 <=3: 1";
    assert_eq!(snap.to_string(), expected);
}

#[test]
fn empty_snapshot_display_is_byte_compatible() {
    let snap = ServeMetrics::new().snapshot(0);
    let expected = "requests: 0  errors: 0  batches: 0\n\
                    degraded shed: 0  deadline_expired: 0  worker_restarts: 0\n\
                    latency  p50: 0us  p95: 0us  p99: 0us  max: 0us\n\
                    batch    mean: 0.0  max: 0  queue depth max: 0  swaps: 0\n\
                    batch-size histogram (<=bound: count):";
    assert_eq!(snap.to_string(), expected);
}
