//! The chaos suite: 20 iterations of the full fault mix — worker stalls,
//! injected scoring panics, oversized batches, mid-batch registry swaps,
//! tight deadlines, and a queue small enough to shed — against concurrent
//! retrying clients. The server must degrade (typed errors, counted) but
//! never crash, deadlock, or answer wrong: every request is eventually
//! answered with the label `CrossMineModel::predict` would give, and every
//! degradation is visible in the metrics and the obs `ServeReport`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_obs::{ObsHandle, ServeReport};
use crossmine_relational::{ClassLabel, Database, Row};
use crossmine_serve::{
    ChaosConfig, CompiledPlan, ModelRegistry, PredictionServer, ServeRequest, ServerConfig,
};
use crossmine_synth::{generate, GenParams};

const ITERATIONS: usize = 20;
const CLIENTS: usize = 3;
const REQUESTS_PER_CLIENT: usize = 40;

struct Fixture {
    db: Arc<Database>,
    plan: CompiledPlan,
    rows: Vec<Row>,
    expected: Vec<ClassLabel>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        // Injected panics fire by the hundreds across the suite; keep the
        // default hook's printout for real panics only.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().downcast_ref::<&str>().is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                default_hook(info);
            }
        }));
        let db = generate(&GenParams {
            num_relations: 4,
            expected_tuples: 70,
            min_tuples: 25,
            seed: 31,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model: CrossMineModel = CrossMine::default().fit(&db, &rows).unwrap();
        let expected = model.predict(&db, &rows).unwrap();
        let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
        Fixture { db: Arc::new(db), plan, rows, expected }
    })
}

/// One request under chaos, the way a well-behaved client drives it: every
/// fourth request carries a tight deadline on its first attempt, and every
/// retryable degradation is retried with growing backoff.
fn chaos_request(server: &PredictionServer, row: Row, k: usize) -> Result<ClassLabel, String> {
    for attempt in 0..500 {
        let req = if attempt == 0 && k.is_multiple_of(4) {
            ServeRequest::row(row).deadline(Duration::from_micros(300))
        } else {
            ServeRequest::row(row)
        };
        let submitted = server.serve(req).map(|mut handles| handles.pop().expect("one handle"));
        match submitted.and_then(|h| h.wait()) {
            Ok(p) => return Ok(p.label),
            Err(e) if e.is_retryable() => {
                std::thread::sleep(Duration::from_micros(50 * (attempt as u64 + 1)));
            }
            Err(e) => return Err(format!("non-retryable error: {e}")),
        }
    }
    Err("request starved past the retry budget".into())
}

/// Runs one full chaos iteration and returns the final metrics snapshot.
/// Panics (failing the test) on any wrong answer or lost request.
fn run_iteration(f: &'static Fixture, obs: ObsHandle) -> crossmine_serve::MetricsSnapshot {
    let registry = Arc::new(ModelRegistry::new(f.plan.clone()));
    let server = PredictionServer::start(
        Arc::clone(&f.db),
        Arc::clone(&registry),
        ServerConfig::builder()
            .workers(2)
            .max_batch(8)
            .max_wait(Duration::from_micros(100))
            .queue_capacity(2)
            .obs(obs)
            .chaos(ChaosConfig::standard())
            .build()
            .unwrap(),
    )
    .unwrap();

    let answered = AtomicU64::new(0);
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            let answered = &answered;
            scope.spawn(move || {
                for k in 0..REQUESTS_PER_CLIENT {
                    let i = (c * REQUESTS_PER_CLIENT + k) % f.rows.len();
                    let label = chaos_request(server, f.rows[i], k)
                        .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
                    assert_eq!(label, f.expected[i], "wrong answer for row {i} under chaos");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The fourth chaos dimension: swap the registry mid-batch, over and
        // over, until the clients are done.
        let registry = &registry;
        let answered = &answered;
        scope.spawn(move || {
            while answered.load(Ordering::Relaxed) < total {
                registry.install(f.plan.clone());
                std::thread::sleep(Duration::from_micros(500));
            }
        });
    });
    assert_eq!(answered.load(Ordering::Relaxed), total, "no request may be lost");
    server.shutdown()
}

#[test]
fn twenty_chaos_iterations_degrade_but_never_crash() {
    let f = fixture();
    let mut restarts = 0u64;
    let mut sheds = 0u64;
    let mut expiries = 0u64;
    for _ in 0..ITERATIONS {
        let report = run_iteration(f, ObsHandle::noop());
        restarts += report.worker_restarts;
        sheds += report.shed;
        expiries += report.deadline_expired;
    }
    // The mix must actually have injected faults — an inert harness passing
    // trivially would be a bug in the test, not a healthy server.
    assert!(restarts > 0, "standard chaos must inject at least one worker panic in 20 runs");
    assert!(sheds + expiries + restarts > 0, "degradations must be observable across the suite");
}

#[test]
fn degradations_are_visible_in_the_obs_serve_report() {
    let f = fixture();
    let obs = ObsHandle::enabled();
    let report = run_iteration(f, obs.clone());
    // The snapshot and the obs registry must agree on what happened.
    let rendered = ServeReport::from_handle(&obs).to_string();
    if report.worker_restarts > 0 {
        assert!(rendered.contains("serve.worker_restarts"), "missing restarts:\n{rendered}");
    }
    if report.shed > 0 {
        assert!(rendered.contains("serve.requests_shed"), "missing sheds:\n{rendered}");
    }
    if report.deadline_expired > 0 {
        assert!(rendered.contains("serve.deadline_exceeded"), "missing expiries:\n{rendered}");
    }
    // With the standard mix and a 2-slot queue at least one of the three
    // always fires; the usual outcome is all three.
    assert!(
        report.worker_restarts + report.shed + report.deadline_expired > 0,
        "iteration was inert: {report}"
    );
}
