//! The serving correctness bar: compiled-plan evaluation is byte-identical
//! to [`CrossMineModel::predict`] — under any batch size, any worker count,
//! and a model hot-swap injected mid-stream.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_relational::{ClassLabel, Database, Row};
use crossmine_serve::{
    evaluate_batch, evaluate_batch_traced, CompiledPlan, ModelRegistry, PredictionHandle,
    PredictionServer, ServeError, ServeRequest, ServeScratch, ServerConfig,
};
use crossmine_synth::{generate, GenParams};

struct Fixture {
    db: Arc<Database>,
    model: CrossMineModel,
    rows: Vec<Row>,
    expected: Vec<ClassLabel>,
}

/// One-row submission through the unified [`ServeRequest`] surface.
fn submit_one(server: &PredictionServer, row: Row) -> Result<PredictionHandle, ServeError> {
    server.serve(ServeRequest::row(row)).map(|mut handles| handles.pop().expect("one handle"))
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = generate(&GenParams {
            num_relations: 5,
            expected_tuples: 120,
            min_tuples: 40,
            seed: 23,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = CrossMine::default().fit(&db, &rows).unwrap();
        assert!(model.num_clauses() >= 1, "fixture model must have learned something");
        let expected = model.predict(&db, &rows).unwrap();
        Fixture { db: Arc::new(db), model, rows, expected }
    })
}

/// A second model with visibly different predictions: no clauses, default
/// label flipped to a minority class. Compiles trivially and predicts a
/// constant — unmistakable from the fixture model's output.
fn alternate_model(f: &Fixture) -> CrossMineModel {
    let alt_default = f
        .model
        .classes
        .iter()
        .copied()
        .find(|&c| c != f.model.default_label)
        .expect("fixture has at least two classes");
    CrossMineModel {
        clauses: Vec::new(),
        default_label: alt_default,
        classes: f.model.classes.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked batched evaluation over an arbitrary (deduplicated) row
    /// subset equals full-batch `predict` element-for-element, for batch
    /// sizes 1, 7, 64, and the full subset. Per-row independence of the
    /// prediction procedure is exactly what this pins down.
    #[test]
    fn batched_evaluation_matches_predict(
        picks in prop::collection::vec(0usize..120, 1..80),
        size_sel in 0usize..4,
    ) {
        let f = fixture();
        let mut idx = picks.clone();
        idx.retain(|&i| i < f.rows.len());
        idx.sort_unstable();
        idx.dedup();
        prop_assume!(!idx.is_empty());
        let rows: Vec<Row> = idx.iter().map(|&i| f.rows[i]).collect();
        let expected = f.model.predict(&f.db, &rows).unwrap();

        let plan = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
        let chunk = [1usize, 7, 64, rows.len()][size_sel].min(rows.len());
        let mut scratch = ServeScratch::new();
        let mut got = Vec::with_capacity(rows.len());
        for c in rows.chunks(chunk) {
            got.extend(evaluate_batch(&plan, &f.db, c, &mut scratch));
        }
        prop_assert_eq!(&got, &expected, "chunk size {}", chunk);
    }

    /// Provenance never changes the answer: `evaluate_batch_traced`'s label
    /// equals `evaluate_batch`'s for every row of an arbitrary subset, the
    /// winner fire carries the predicted label, and a non-default
    /// prediction always names at least one fired clause.
    #[test]
    fn traced_evaluation_matches_plain(picks in prop::collection::vec(0usize..120, 1..60)) {
        let f = fixture();
        let rows: Vec<Row> =
            picks.iter().filter(|&&i| i < f.rows.len()).map(|&i| f.rows[i]).collect();
        prop_assume!(!rows.is_empty());
        let plan = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
        let mut scratch = ServeScratch::new();
        let plain = evaluate_batch(&plan, &f.db, &rows, &mut scratch);
        let traced = evaluate_batch_traced(&plan, &f.db, &rows, &mut scratch);
        prop_assert_eq!(traced.len(), plain.len());
        for (exp, &label) in traced.iter().zip(&plain) {
            prop_assert_eq!(exp.label, label, "row {}", exp.row.0);
            if exp.default_used {
                prop_assert!(exp.fired.is_empty());
                prop_assert_eq!(exp.label, plan.default_label);
            } else {
                let win = exp.winning().expect("non-default prediction names a fired clause");
                prop_assert_eq!(win.label, exp.label);
                prop_assert_eq!(
                    win.literals.len(),
                    plan.clauses[win.clause_index].literals.len()
                );
            }
        }
    }
}

/// The server's out-of-band provenance path agrees with its queued batch
/// path for every row, and survives a hot swap with the right epoch.
#[test]
fn server_predict_explained_matches_predict() {
    let f = fixture();
    let plan = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
    let registry = Arc::new(ModelRegistry::new(plan));
    let server =
        PredictionServer::start(Arc::clone(&f.db), Arc::clone(&registry), ServerConfig::default())
            .unwrap();
    for (i, &row) in f.rows.iter().enumerate() {
        let plain = server.predict(row).expect("predict");
        let explained = server.predict_explained(row).expect("predict_explained");
        assert_eq!(explained.explanation.label, plain.label, "row {}", row.0);
        assert_eq!(explained.explanation.row, row);
        assert_eq!(explained.epoch, plain.epoch);
        assert_eq!(plain.label, f.expected[i]);
    }

    // After a swap, explanations come from the new model and say so.
    let model_b = alternate_model(f);
    let plan_b = CompiledPlan::compile(&model_b, &f.db.schema).unwrap();
    registry.install(plan_b);
    let explained = server.predict_explained(f.rows[0]).expect("post-swap explain");
    assert_eq!(explained.epoch, 1);
    assert!(explained.explanation.default_used, "model B has no clauses");
    assert_eq!(explained.explanation.label, model_b.default_label);

    server.begin_shutdown();
    assert!(matches!(server.predict_explained(f.rows[0]), Err(ServeError::ShuttingDown)));
}

/// A row appearing several times in ONE batch (concurrent clients asking
/// about the same entity get micro-batched together) must get its true
/// per-row label at every occurrence — not the default-label fallback that
/// `predict`'s last-occurrence-wins slot map would hand earlier duplicates.
#[test]
fn duplicate_rows_in_a_batch_all_get_their_true_label() {
    let f = fixture();
    let plan = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
    let mut scratch = ServeScratch::new();
    // Every row singly, to have the per-row ground truth.
    let singles = evaluate_batch(&plan, &f.db, &f.rows, &mut scratch);
    assert_eq!(singles, f.expected);
    // Each row three times, interleaved, in one batch.
    let tripled: Vec<Row> = (0..3).flat_map(|_| f.rows.iter().copied()).collect();
    let got = evaluate_batch(&plan, &f.db, &tripled, &mut scratch);
    for (k, (&row_label, got_label)) in
        std::iter::repeat_n(f.expected.iter(), 3).flatten().zip(&got).enumerate()
    {
        assert_eq!(row_label, *got_label, "occurrence {k} diverged");
    }
}

/// The server end-to-end: every worker-count × batch-config combination
/// returns exactly `predict`'s labels, with zero errors and no lost
/// requests.
#[test]
fn server_matches_predict_across_workers_and_batch_sizes() {
    let f = fixture();
    let plan = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
    for workers in [1usize, 4] {
        for max_batch in [1usize, 7, 64, f.rows.len()] {
            let registry = Arc::new(ModelRegistry::new(plan.clone()));
            let server = PredictionServer::start(
                Arc::clone(&f.db),
                registry,
                ServerConfig::builder()
                    .workers(workers)
                    .max_batch(max_batch)
                    .max_wait(Duration::from_micros(100))
                    .queue_capacity(256)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            // Submit everything first (exercises batching), then collect.
            let receivers: Vec<_> =
                f.rows.iter().map(|&r| submit_one(&server, r).expect("capacity fits")).collect();
            for (i, rx) in receivers.into_iter().enumerate() {
                let p = rx.wait().expect("reply delivered");
                assert_eq!(p.row, f.rows[i]);
                assert_eq!(
                    p.label, f.expected[i],
                    "row {} under workers={workers} max_batch={max_batch}",
                    f.rows[i].0
                );
                assert_eq!(p.epoch, 0, "no swap installed");
            }
            let report = server.shutdown();
            assert_eq!(report.requests, f.rows.len() as u64);
            assert_eq!(report.errors, 0);
            assert!(report.batches >= 1);
            assert!(report.max_batch as usize <= max_batch);
        }
    }
}

/// Hot swap injected mid-stream: requests scored before the install carry
/// epoch 0 and the old model's labels; requests submitted after it carry
/// epoch 1 and the new model's labels. Nothing is dropped or torn.
#[test]
fn hot_swap_mid_stream_is_epoch_consistent() {
    let f = fixture();
    let plan_a = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
    let model_b = alternate_model(f);
    let plan_b = CompiledPlan::compile(&model_b, &f.db.schema).unwrap();
    let expected_b = model_b.predict(&f.db, &f.rows).unwrap();

    for workers in [1usize, 4] {
        let registry = Arc::new(ModelRegistry::new(plan_a.clone()));
        let server = PredictionServer::start(
            Arc::clone(&f.db),
            Arc::clone(&registry),
            ServerConfig::builder()
                .workers(workers)
                .max_batch(8)
                .max_wait(Duration::from_micros(50))
                .queue_capacity(64)
                .build()
                .unwrap(),
        )
        .unwrap();
        let half = f.rows.len() / 2;

        // Phase 1: settle the first half fully under the old model.
        for (i, &row) in f.rows[..half].iter().enumerate() {
            let p = server.predict(row).expect("scored");
            assert_eq!(p.epoch, 0);
            assert_eq!(p.label, f.expected[i], "pre-swap row {}", row.0);
        }

        // Swap. Install's Release store happens-before every subsequent
        // submit, so phase-2 batches must snapshot the new model.
        let epoch = registry.install(plan_b.clone());
        assert_eq!(epoch, 1);

        for (i, &row) in f.rows[half..].iter().enumerate() {
            let p = server.predict(row).expect("scored");
            assert_eq!(p.epoch, 1, "post-swap request scored under the old model");
            assert_eq!(p.label, expected_b[half + i], "post-swap row {}", row.0);
        }

        let report = server.shutdown();
        assert_eq!(report.requests, f.rows.len() as u64);
        assert_eq!(report.errors, 0);
        assert_eq!(report.swaps, 1);
    }
}

/// Swap racing in-flight traffic: a writer thread installs the new model
/// while the main thread streams every row through the server. Each reply
/// must be *wholly* consistent with the model its epoch names — the
/// no-torn-reads guarantee.
#[test]
fn concurrent_swap_never_tears_a_batch() {
    let f = fixture();
    let plan_a = CompiledPlan::compile(&f.model, &f.db.schema).unwrap();
    let model_b = alternate_model(f);
    let plan_b = CompiledPlan::compile(&model_b, &f.db.schema).unwrap();
    let expected_b = model_b.predict(&f.db, &f.rows).unwrap();

    let registry = Arc::new(ModelRegistry::new(plan_a.clone()));
    let server = PredictionServer::start(
        Arc::clone(&f.db),
        Arc::clone(&registry),
        ServerConfig::builder()
            .workers(4)
            .max_batch(8)
            .max_wait(Duration::from_micros(50))
            .queue_capacity(32)
            .build()
            .unwrap(),
    )
    .unwrap();

    let swapper = {
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            registry.install(plan_b)
        })
    };

    // Stream several passes over all rows while the swap lands.
    let mut checked_old = 0u32;
    let mut checked_new = 0u32;
    for _pass in 0..6 {
        // The queue (capacity 32) is smaller than one pass (120 rows), so
        // admission control sheds under this submit-all pattern; spin-retry
        // like a real client until every row is admitted.
        let receivers: Vec<_> = f
            .rows
            .iter()
            .map(|&r| loop {
                match submit_one(&server, r) {
                    Ok(h) => break h,
                    Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let p = rx.wait().expect("reply delivered");
            match p.epoch {
                0 => {
                    assert_eq!(p.label, f.expected[i], "epoch-0 reply must match model A");
                    checked_old += 1;
                }
                1 => {
                    assert_eq!(p.label, expected_b[i], "epoch-1 reply must match model B");
                    checked_new += 1;
                }
                e => panic!("impossible epoch {e}"),
            }
        }
    }
    assert_eq!(swapper.join().expect("swapper thread"), 1);
    assert!(checked_new > 0, "swap must have landed within the stream");
    let report = server.shutdown();
    assert_eq!(report.errors, 0);
    assert_eq!(report.swaps, 1);
    assert_eq!(u64::from(checked_old + checked_new), report.requests);
}
