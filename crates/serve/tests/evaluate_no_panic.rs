//! Property: `CompiledPlan::compile` → `evaluate_batch` never panics and
//! always returns one label per input row — for arbitrary in-range row
//! multisets (any order, any duplication, including the empty batch), any
//! chunking, and both a learned model and the degenerate clauseless one.
//! This is the no-panic half of the serving contract; the server's
//! `catch_unwind` is the backstop for bugs this property would catch first.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use crossmine_core::classifier::{CrossMine, CrossMineModel};
use crossmine_relational::{Database, Row};
use crossmine_serve::{evaluate_batch, CompiledPlan, ServeScratch};
use crossmine_synth::{generate, GenParams};

struct Fixture {
    db: Arc<Database>,
    learned: CompiledPlan,
    clauseless: CompiledPlan,
    num_rows: usize,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = generate(&GenParams {
            num_relations: 5,
            expected_tuples: 90,
            min_tuples: 30,
            seed: 77,
            ..Default::default()
        });
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model: CrossMineModel = CrossMine::default().fit(&db, &rows).unwrap();
        let learned = CompiledPlan::compile(&model, &db.schema).unwrap();
        let degenerate = CrossMineModel {
            clauses: Vec::new(),
            default_label: model.default_label,
            classes: model.classes.clone(),
        };
        let clauseless = CompiledPlan::compile(&degenerate, &db.schema).unwrap();
        Fixture { db: Arc::new(db), learned, clauseless, num_rows: rows.len() }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compile_then_evaluate_batch_never_panics(
        picks in prop::collection::vec(0usize..1000, 0..150),
        chunk_sel in 0usize..4,
        degenerate in any::<bool>(),
        reuse_scratch in any::<bool>(),
    ) {
        let f = fixture();
        // Arbitrary multiset of valid rows: duplicates and any order are
        // exactly what concurrent micro-batching produces.
        let rows: Vec<Row> = picks.iter().map(|&p| Row((p % f.num_rows) as u32)).collect();
        let plan = if degenerate { &f.clauseless } else { &f.learned };

        let chunk = [1usize, 3, 17, usize::MAX][chunk_sel].min(rows.len().max(1));
        let mut scratch = ServeScratch::new();
        let mut labels = Vec::with_capacity(rows.len());
        if rows.is_empty() {
            // The empty batch is legal and must yield the empty answer.
            labels.extend(evaluate_batch(plan, &f.db, &rows, &mut scratch));
        }
        for c in rows.chunks(chunk) {
            if !reuse_scratch {
                scratch = ServeScratch::new();
            }
            labels.extend(evaluate_batch(plan, &f.db, c, &mut scratch));
        }
        prop_assert_eq!(labels.len(), rows.len(), "one label per row, always");
        if degenerate {
            // A clauseless plan can only ever answer the default label.
            for l in &labels {
                prop_assert_eq!(*l, f.clauseless.default_label);
            }
        }
    }
}
