//! Serving-side observability: an enabled handle on [`ServerConfig`] must
//! surface per-batch spans, row counters, and queue-wait latencies without
//! changing a single prediction.

use std::sync::Arc;

use crossmine_core::CrossMine;
use crossmine_relational::Row;
use crossmine_serve::{
    CompiledPlan, ModelRegistry, ObsHandle, PredictionServer, ServeReport, ServerConfig,
};
use crossmine_synth::{generate, GenParams};

#[test]
fn enabled_handle_traces_serving_and_changes_no_prediction() {
    let db = generate(&GenParams {
        num_relations: 4,
        expected_tuples: 120,
        min_tuples: 40,
        seed: 9,
        ..Default::default()
    });
    let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
    let model = CrossMine::default().fit(&db, &rows).unwrap();
    let expected = model.predict(&db, &rows).unwrap();

    let obs = ObsHandle::enabled();
    let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
    let registry = Arc::new(ModelRegistry::new(plan));
    let config = ServerConfig::builder().workers(2).obs(obs.clone()).build().unwrap();
    let server = PredictionServer::start(Arc::new(db), registry, config).unwrap();
    for (i, &row) in rows.iter().enumerate() {
        assert_eq!(
            server.predict(row).unwrap().label,
            expected[i],
            "obs must not change predictions"
        );
    }
    let report = server.shutdown();
    assert_eq!(report.errors, 0);

    let registry = obs.registry().unwrap();
    let spans = registry.span_snapshots();
    let batch_span =
        spans.iter().find(|s| s.name == "serve.evaluate_batch").expect("per-batch span recorded");
    assert_eq!(batch_span.count, report.batches, "one span per scored batch");

    let counters = registry.counter_values();
    let get = |name: &str| counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    assert_eq!(get("serve.rows_scored"), Some(rows.len() as u64));
    assert!(get("serve.clauses_evaluated").unwrap_or(0) > 0);

    // Every admitted request sat in the queue exactly once before scoring.
    let hists = registry.histogram_snapshots();
    let wait = hists
        .iter()
        .find(|h| h.name == "serve.queue_wait_us")
        .expect("queue-wait histogram recorded");
    assert_eq!(wait.count, report.requests);

    let text = ServeReport::from_handle(&obs).to_string();
    assert!(text.contains("crossmine-obs report: serve"), "{text}");
    assert!(text.contains("serve.evaluate_batch"), "{text}");
    assert!(text.contains("serve.queue_wait_us"), "{text}");
}
