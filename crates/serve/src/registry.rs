//! Lock-free model hot-swap.
//!
//! A [`ModelRegistry`] holds the currently-served [`CompiledPlan`] behind an
//! epoch-stamped atomic pointer. Readers ([`ModelRegistry::snapshot`]) are
//! **wait-free**: one `Acquire` pointer load plus one `Arc` clone, no lock,
//! no retry loop. Writers ([`ModelRegistry::install`]) serialize on a
//! mutex-guarded history and publish with a `Release` store, so a snapshot
//! taken after an install observes the complete new plan — a batch is
//! always scored under exactly one model; torn reads are impossible because
//! the pointer swap is the *only* shared mutation.
//!
//! Old plan nodes are retained in the history until the registry drops (the
//! classic safe alternative to hazard pointers when swaps are rare: memory
//! is bounded by the number of installs, and every node is only a pointer,
//! an epoch, and one `Arc`).

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crossmine_obs::LockTimer;

use crate::plan::CompiledPlan;

struct Node {
    plan: Arc<CompiledPlan>,
    epoch: u64,
}

/// A consistent view of the registry at one instant: the plan and the epoch
/// it was installed at. Responses carry the epoch so callers can tell which
/// model scored them across a hot swap.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The plan current when the snapshot was taken.
    pub plan: Arc<CompiledPlan>,
    /// Install epoch of that plan (0 for the initial model).
    pub epoch: u64,
}

/// Epoch-stamped, hot-swappable holder of the served model.
pub struct ModelRegistry {
    head: AtomicPtr<Node>,
    /// Every node ever installed, oldest first. Owns the allocations the
    /// atomic pointer aliases; freed only on drop, so readers never race a
    /// deallocation.
    history: Mutex<Vec<*mut Node>>,
    swaps: AtomicU64,
    /// Times history-mutex acquisitions in [`install`](Self::install) into
    /// the profiler's `registry.swap` wait histogram. Set at most once, by
    /// the first profiler-enabled server using this registry; empty (the
    /// common case) costs one branch per install.
    swap_timer: OnceLock<LockTimer>,
}

// SAFETY: the raw pointers in `history` (and `head`) point to heap nodes
// that are never mutated after publication and never freed before `Drop`
// takes `&mut self`; all shared access is the immutable deref in
// `snapshot`. `Arc<CompiledPlan>` is itself Send + Sync.
unsafe impl Send for ModelRegistry {}
unsafe impl Sync for ModelRegistry {}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ModelRegistry")
            .field("epoch", &snap.epoch)
            .field("clauses", &snap.plan.num_clauses())
            .field("swaps", &self.swap_count())
            .finish()
    }
}

impl ModelRegistry {
    /// A registry serving `initial` at epoch 0.
    pub fn new(initial: CompiledPlan) -> Self {
        let node = Box::into_raw(Box::new(Node { plan: Arc::new(initial), epoch: 0 }));
        ModelRegistry {
            head: AtomicPtr::new(node),
            history: Mutex::new(vec![node]),
            swaps: AtomicU64::new(0),
            swap_timer: OnceLock::new(),
        }
    }

    /// Wires contention attribution for the swap path; first set wins.
    pub(crate) fn set_lock_timer(&self, timer: LockTimer) {
        let _ = self.swap_timer.set(timer);
    }

    /// Wait-free read of the current model: `Acquire` load + `Arc` clone.
    pub fn snapshot(&self) -> ModelSnapshot {
        let p = self.head.load(Ordering::Acquire);
        // SAFETY: `p` came from `Box::into_raw` in `new`/`install`, is
        // retained by `history` until drop, and nodes are immutable after
        // publication.
        let node = unsafe { &*p };
        ModelSnapshot { plan: Arc::clone(&node.plan), epoch: node.epoch }
    }

    /// Atomically replaces the served model, returning the new epoch.
    /// Concurrent snapshots observe either the old or the new plan in full;
    /// in-flight batches that already took a snapshot finish under the old
    /// one (their `Arc` keeps it alive), so no request is dropped or torn.
    pub fn install(&self, plan: CompiledPlan) -> u64 {
        let acquire = || self.history.lock().expect("registry history poisoned");
        let mut history = match self.swap_timer.get() {
            Some(t) => t.time(acquire),
            None => acquire(),
        };
        let epoch = history.len() as u64;
        let node = Box::into_raw(Box::new(Node { plan: Arc::new(plan), epoch }));
        // Publish before extending the history: a reader that loads the new
        // pointer must see the fully-initialised node (Release pairs with
        // the Acquire load in `snapshot`).
        self.head.store(node, Ordering::Release);
        history.push(node);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// Number of [`install`](Self::install) calls after construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Epoch of the currently-served model.
    pub fn current_epoch(&self) -> u64 {
        self.snapshot().epoch
    }
}

impl Drop for ModelRegistry {
    fn drop(&mut self) {
        let history = self.history.get_mut().expect("registry history poisoned");
        for &p in history.iter() {
            // SAFETY: each pointer was created by `Box::into_raw`, appears
            // exactly once in the history, and no reader can exist — drop
            // takes `&mut self`.
            drop(unsafe { Box::from_raw(p) });
        }
        history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_core::classifier::CrossMineModel;
    use crossmine_relational::{AttrType, Attribute, ClassLabel, DatabaseSchema, RelationSchema};

    fn plan_with_default(label: ClassLabel) -> CompiledPlan {
        let mut s = DatabaseSchema::new();
        let mut t = RelationSchema::new("T");
        t.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        let tid = s.add_relation(t).unwrap();
        s.set_target(tid);
        let model = CrossMineModel {
            clauses: Vec::new(),
            default_label: label,
            classes: vec![ClassLabel::NEG, ClassLabel::POS],
        };
        CompiledPlan::compile(&model, &s).unwrap()
    }

    #[test]
    fn snapshot_tracks_installs_with_dense_epochs() {
        let reg = ModelRegistry::new(plan_with_default(ClassLabel::NEG));
        let s0 = reg.snapshot();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.plan.default_label, ClassLabel::NEG);
        assert_eq!(reg.swap_count(), 0);

        assert_eq!(reg.install(plan_with_default(ClassLabel::POS)), 1);
        assert_eq!(reg.install(plan_with_default(ClassLabel::NEG)), 2);
        assert_eq!(reg.current_epoch(), 2);
        assert_eq!(reg.swap_count(), 2);
        // The pre-swap snapshot still serves the old plan untouched.
        assert_eq!(s0.plan.default_label, ClassLabel::NEG);
        assert_eq!(s0.epoch, 0);
    }

    #[test]
    fn concurrent_readers_only_see_whole_epochs() {
        let reg = std::sync::Arc::new(ModelRegistry::new(plan_with_default(ClassLabel::NEG)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let s = reg.snapshot();
                        // Epoch parity encodes the default label in this
                        // test: mismatch would be a torn read.
                        let want = if s.epoch.is_multiple_of(2) {
                            ClassLabel::NEG
                        } else {
                            ClassLabel::POS
                        };
                        assert_eq!(s.plan.default_label, want, "torn snapshot at {}", s.epoch);
                    }
                })
            })
            .collect();
        for e in 1..=50u64 {
            let label = if e.is_multiple_of(2) { ClassLabel::NEG } else { ClassLabel::POS };
            assert_eq!(reg.install(plan_with_default(label)), e);
        }
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(reg.swap_count(), 50);
    }
}
