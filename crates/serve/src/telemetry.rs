//! The live telemetry surface: a minimal HTTP/1.1 endpoint exposing the
//! server's metrics, health, and build metadata to anything that can
//! speak `curl` — Prometheus scrapers first among them.
//!
//! Off by default: [`ServerConfig::telemetry_addr`] is `None`, no thread
//! is spawned, and the request path pays nothing. When an address is
//! configured, [`PredictionServer::start`] binds a
//! [`std::net::TcpListener`] and spawns **one** telemetry thread that
//! serves three routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the serve aggregate
//!   ([`ServeMetrics`] counters, latency/batch/queue histograms with
//!   cumulative `le` buckets, quantile gauges), the model registry's swap
//!   count, `serve_uptime_seconds`, `crossmine_buildinfo`, and — when the
//!   server runs with an enabled [`ObsHandle`] — every metric of the obs
//!   registry.
//! * `GET /healthz` — the admission state machine, one word:
//!   `serving` (200), `degraded` (200; degradation events — sheds,
//!   deadline expiries, worker restarts — occurred since the previous
//!   health probe), or `shutting-down` (503; `begin_shutdown` has closed
//!   admission and the queue is draining).
//! * `GET /buildinfo` — JSON build + process metadata: version, git SHA,
//!   uptime, current model epoch, swap count.
//!
//! The thread polls a nonblocking accept loop (5 ms idle sleep — scrape
//! endpoints are latency-insensitive) and exits when the owning
//! [`PredictionServer`] is shut down or dropped. It intentionally keeps
//! serving *during* the drain phase so an external prober watching
//! `/healthz` observes the `shutting-down` state instead of a vanished
//! endpoint.
//!
//! [`ServerConfig::telemetry_addr`]: crate::server::ServerConfig::telemetry_addr
//! [`PredictionServer`]: crate::server::PredictionServer
//! [`PredictionServer::start`]: crate::server::PredictionServer::start
//! [`ObsHandle`]: crossmine_obs::ObsHandle

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossmine_net::http::{parse_request, write_response, HttpLimits};
use crossmine_net::NetMetrics;
use crossmine_obs::{process_stats, ObsHandle, Profiler, PromWriter, Tracer};

use crate::metrics::{bucket_upper_bound, ServeMetrics, NUM_BUCKETS};
use crate::registry::ModelRegistry;

/// Most traces one `/trace` (or `/trace/chrome`) response renders. The
/// ring is bounded anyway ([`crossmine_obs::TraceConfig::ring_capacity`],
/// default 256); this just caps the response body independently of how
/// large an operator configured the ring.
const TRACE_RENDER_LIMIT: usize = 256;

/// Compile-time build metadata exposed through `/buildinfo` and the
/// `crossmine_buildinfo` info metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION`).
    pub version: &'static str,
    /// Git commit SHA, when the build set `CROSSMINE_GIT_SHA`; otherwise
    /// `"unknown"`.
    pub git_sha: &'static str,
}

impl BuildInfo {
    /// The metadata baked into this binary.
    pub fn current() -> Self {
        BuildInfo {
            version: env!("CARGO_PKG_VERSION"),
            git_sha: option_env!("CROSSMINE_GIT_SHA").unwrap_or("unknown"),
        }
    }
}

impl std::fmt::Display for BuildInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "crossmine {} ({})", self.version, self.git_sha)
    }
}

/// The admission state machine as `/healthz` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Admission open, no recent degradation events.
    Serving,
    /// Admission open, but degradation events (sheds, deadline expiries,
    /// worker restarts) occurred since the previous health probe.
    Degraded,
    /// `begin_shutdown` has closed admission; the queue is draining.
    ShuttingDown,
}

impl HealthState {
    /// The one-word body `/healthz` answers with.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Serving => "serving",
            HealthState::Degraded => "degraded",
            HealthState::ShuttingDown => "shutting-down",
        }
    }

    /// The HTTP status `/healthz` answers with: a draining server is not
    /// ready for new work (503); a degraded one still is (200).
    pub fn http_status(self) -> u32 {
        match self {
            HealthState::Serving | HealthState::Degraded => 200,
            HealthState::ShuttingDown => 503,
        }
    }
}

/// Everything the telemetry thread reads; shared with the owning server.
pub(crate) struct TelemetryShared {
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) obs: ObsHandle,
    /// Set by `begin_shutdown`; flips `/healthz` to `shutting-down`.
    pub(crate) admission_closed: Arc<AtomicBool>,
    /// Server start time, for `serve_uptime_seconds`.
    pub(crate) started: Instant,
    /// Set by the owning server to stop the accept loop.
    pub(crate) stop: AtomicBool,
    /// Wire-front-end counters, when [`ServerConfig::net`] is configured;
    /// rendered as `crossmine_net_*`.
    ///
    /// [`ServerConfig::net`]: crate::server::ServerConfig::net
    pub(crate) net_metrics: Option<Arc<NetMetrics>>,
    /// The server's tracer; backs `GET /trace` (JSONL), `/trace/chrome`
    /// (Chrome trace-event JSON), and `/trace/exemplars`. A no-op tracer
    /// makes those routes answer 404 and leaves `/metrics` byte-identical
    /// to the tracing-free surface.
    pub(crate) tracer: Tracer,
    /// The server's profiler; backs `GET /profile` (collapsed stacks),
    /// `/profile/flamegraph` (SVG), and `/profile/heap`. A no-op profiler
    /// makes those routes answer 404 and leaves `/metrics` byte-identical
    /// to the profiling-free surface.
    pub(crate) profiler: Profiler,
    /// Per-shard sources when this endpoint fronts a
    /// [`ShardRouter`](crate::shard::ShardRouter). Empty for a standalone
    /// server (the single-server fields above are authoritative then);
    /// non-empty, the `serve_*` series become cross-shard aggregates and
    /// per-shard `crossmine_shard_<k>_*` series ride alongside.
    pub(crate) shards: Vec<ShardTelemetry>,
}

/// One shard's metric sources, for the router-owned telemetry endpoint.
pub(crate) struct ShardTelemetry {
    pub(crate) shard: u32,
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) registry: Arc<ModelRegistry>,
}

impl TelemetryShared {
    /// Sums `f` over the metric sources: the one server, or every shard.
    fn counter_sum(&self, f: impl Fn(&ServeMetrics) -> u64) -> u64 {
        if self.shards.is_empty() {
            f(&self.metrics)
        } else {
            self.shards.iter().map(|s| f(&s.metrics)).sum()
        }
    }

    /// The served model epoch: the shard minimum when sharded (the oldest
    /// model still answering — it lags the newest mid-roll), the single
    /// registry's epoch otherwise.
    fn model_epoch(&self) -> u64 {
        if self.shards.is_empty() {
            self.registry.current_epoch()
        } else {
            self.shards.iter().map(|s| s.registry.current_epoch()).min().unwrap_or(0)
        }
    }

    /// Total hot swaps across all registry slots.
    fn model_swaps(&self) -> u64 {
        if self.shards.is_empty() {
            self.registry.swap_count()
        } else {
            self.shards.iter().map(|s| s.registry.swap_count()).sum()
        }
    }

    fn degradations(&self) -> u64 {
        self.counter_sum(|m| {
            m.shed.load(Ordering::Relaxed)
                + m.deadline_expired.load(Ordering::Relaxed)
                + m.worker_restarts.load(Ordering::Relaxed)
        })
    }

    /// The current health state, given the degradation count observed at
    /// the previous probe.
    fn health(&self, prev_degradations: u64) -> HealthState {
        if self.admission_closed.load(Ordering::Acquire) {
            HealthState::ShuttingDown
        } else if self.degradations() > prev_degradations {
            HealthState::Degraded
        } else {
            HealthState::Serving
        }
    }

    fn uptime_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Renders the full `/metrics` document. Fronting a single server,
    /// the `serve_*` series read that server's aggregate (byte-identical
    /// to the pre-shard surface); fronting a [`ShardRouter`]
    /// (`self.shards` non-empty) they become cross-shard sums (histograms
    /// merged bucket-wise) and per-shard `crossmine_shard_<k>_*` series
    /// follow.
    ///
    /// [`ShardRouter`]: crate::shard::ShardRouter
    pub(crate) fn render_metrics(&self) -> String {
        let mut w = PromWriter::new();
        w.write_counter(
            "serve.requests",
            "requests admitted",
            self.counter_sum(|m| m.requests.load(Ordering::Relaxed)),
        );
        w.write_counter(
            "serve.errors",
            "undeliverable replies",
            self.counter_sum(|m| m.errors.load(Ordering::Relaxed)),
        );
        w.write_counter(
            "serve.batches",
            "batches scored",
            self.counter_sum(|m| m.batches.load(Ordering::Relaxed)),
        );
        w.write_counter(
            "serve.requests_shed",
            "requests shed at admission (queue full)",
            self.counter_sum(|m| m.shed.load(Ordering::Relaxed)),
        );
        w.write_counter(
            "serve.deadline_exceeded",
            "requests expired in queue",
            self.counter_sum(|m| m.deadline_expired.load(Ordering::Relaxed)),
        );
        w.write_counter(
            "serve.worker_restarts",
            "workers restarted after caught scoring panics",
            self.counter_sum(|m| m.worker_restarts.load(Ordering::Relaxed)),
        );
        w.write_counter("serve.model_swaps", "model hot swaps", self.model_swaps());
        w.write_gauge(
            "serve.model_epoch",
            "epoch of the currently served model (oldest shard when sharded)",
            self.model_epoch() as i64,
        );
        if self.shards.is_empty() {
            let m = &self.metrics;
            w.write_histogram(
                "serve.latency_us",
                "end-to-end request latency (enqueue to reply), microseconds",
                &m.latency_us,
            );
            w.write_histogram("serve.batch_size", "scored batch sizes", &m.batch_size);
            w.write_histogram(
                "serve.queue_depth",
                "queue depth observed at each admission",
                &m.queue_depth,
            );
        } else {
            write_merged_histogram(
                &mut w,
                "serve.latency_us",
                "end-to-end request latency (enqueue to reply), microseconds",
                self.shards.iter().map(|s| &s.metrics.latency_us),
            );
            write_merged_histogram(
                &mut w,
                "serve.batch_size",
                "scored batch sizes",
                self.shards.iter().map(|s| &s.metrics.batch_size),
            );
            write_merged_histogram(
                &mut w,
                "serve.queue_depth",
                "queue depth observed at each admission",
                self.shards.iter().map(|s| &s.metrics.queue_depth),
            );
            w.write_gauge("shard.count", "shared-nothing shards", self.shards.len() as i64);
            for s in &self.shards {
                let k = s.shard;
                let m = &s.metrics;
                w.write_counter(
                    &format!("shard.{k}.requests"),
                    "requests admitted on this shard",
                    m.requests.load(Ordering::Relaxed),
                );
                w.write_counter(
                    &format!("shard.{k}.requests_shed"),
                    "requests shed on this shard",
                    m.shed.load(Ordering::Relaxed),
                );
                w.write_counter(
                    &format!("shard.{k}.errors"),
                    "undeliverable replies on this shard",
                    m.errors.load(Ordering::Relaxed),
                );
                w.write_counter(
                    &format!("shard.{k}.batches"),
                    "batches scored on this shard",
                    m.batches.load(Ordering::Relaxed),
                );
                w.write_counter(
                    &format!("shard.{k}.deadline_exceeded"),
                    "requests expired in this shard's queue",
                    m.deadline_expired.load(Ordering::Relaxed),
                );
                w.write_counter(
                    &format!("shard.{k}.worker_restarts"),
                    "workers restarted on this shard",
                    m.worker_restarts.load(Ordering::Relaxed),
                );
                w.write_counter(
                    &format!("shard.{k}.model_swaps"),
                    "hot swaps on this shard's registry slot",
                    s.registry.swap_count(),
                );
                w.write_gauge(
                    &format!("shard.{k}.model_epoch"),
                    "epoch this shard currently serves",
                    s.registry.current_epoch() as i64,
                );
            }
        }
        if let Some(net) = &self.net_metrics {
            let n = net.snapshot();
            w.write_counter("net.accepted", "connections accepted", n.accepted);
            w.write_counter("net.closed", "connections closed", n.closed);
            w.write_counter("net.accept_shed", "connections shed at accept", n.accept_shed);
            w.write_counter("net.idle_closed", "connections reaped idle", n.idle_closed);
            w.write_counter("net.http_conns", "connections sniffed as HTTP", n.http_conns);
            w.write_counter("net.binary_conns", "connections sniffed as binary", n.binary_conns);
            w.write_counter(
                "net.unknown_conns",
                "connections speaking neither protocol",
                n.unknown_conns,
            );
            w.write_counter("net.http_requests", "predict requests over HTTP", n.http_requests);
            w.write_counter(
                "net.binary_requests",
                "predict requests over binary frames",
                n.binary_requests,
            );
            w.write_counter("net.wire_errors", "non-200 wire responses", n.wire_errors);
            w.write_counter("net.bytes_read", "bytes read from client sockets", n.bytes_read);
            w.write_counter(
                "net.bytes_written",
                "bytes written to client sockets",
                n.bytes_written,
            );
            w.write_gauge(
                "net.open_conns",
                "currently open connections",
                // Saturating: the two counters are loaded separately, so a
                // connection closing between the loads could make closed
                // momentarily exceed accepted.
                n.accepted.saturating_sub(n.closed) as i64,
            );
            w.write_gauge(
                "net.sweep_backoff_us",
                "current adaptive sweep backoff of the net poll loop",
                net.sweep_backoff_us.load(Ordering::Relaxed) as i64,
            );
        }
        // Process-level gauges from /proc/self — independent of whether
        // the profiler (or any obs handle) is enabled, and silently absent
        // on platforms without procfs.
        if let Some(ps) = process_stats() {
            w.write_gauge(
                "process.resident_memory_bytes",
                "resident set size of this process",
                ps.resident_bytes as i64,
            );
            w.write_gauge("process.threads", "OS threads in this process", ps.threads as i64);
        }
        let uptime = self.uptime_seconds();
        w.write_gauge_f64("serve.uptime_seconds", "seconds since the server started", uptime);
        // Mirror the uptime into the obs registry (when enabled) so
        // ServeReport and the JSONL export carry it too.
        self.obs.gauge_set("serve.uptime_seconds", uptime as i64);
        let build = BuildInfo::current();
        w.write_info(
            "buildinfo",
            "build metadata",
            &[("version", build.version), ("git_sha", build.git_sha)],
        );
        if let Some(registry) = self.obs.registry() {
            // Quantities already rendered above from the serve aggregate
            // (the more authoritative source — maintained even with a noop
            // handle) must not appear twice in one exposition document.
            // The net.* counters are rendered above from the live
            // NetMetrics (authoritative; the obs mirror is published on a
            // 100 ms cadence) — skip the mirrored copies too.
            w.write_registry_except(
                registry,
                &[
                    "serve.requests_shed",
                    "serve.deadline_exceeded",
                    "serve.worker_restarts",
                    "serve.uptime_seconds",
                    "net.accepted",
                    "net.closed",
                    "net.accept_shed",
                    "net.idle_closed",
                    "net.http_conns",
                    "net.binary_conns",
                    "net.unknown_conns",
                    "net.http_requests",
                    "net.binary_requests",
                    "net.wire_errors",
                    "net.bytes_read",
                    "net.bytes_written",
                    "net.open_conns",
                    "net.sweep_backoff_us",
                ],
            );
        }
        w.finish()
    }

    /// Renders `GET /trace`: the tail-sampled trace ring as JSONL, newest
    /// first, one complete span tree per line.
    fn render_trace_jsonl(&self) -> String {
        let mut out = Vec::new();
        // Writing into a Vec<u8> cannot fail.
        let _ = self.tracer.write_recent_jsonl(TRACE_RENDER_LIMIT, &mut out);
        String::from_utf8(out).unwrap_or_default()
    }

    /// Renders `GET /trace/exemplars`: the histogram-bucket → `TraceId`
    /// joins for `serve.latency_us` and (when the wire front end runs)
    /// `net.request_us`, as JSON. `le` is the bucket's inclusive upper
    /// bound in microseconds; resolve a `trace_id` via `/trace`.
    fn render_exemplars(&self) -> String {
        fn write_set(out: &mut String, name: &str, pairs: &[(u64, crossmine_obs::TraceId)]) {
            out.push_str(&format!("\"{name}\":["));
            for (i, (le, id)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"le\":{},\"trace_id\":{}}}", le, id.0));
            }
            out.push(']');
        }
        let mut out = String::from("{");
        if self.shards.is_empty() {
            write_set(&mut out, "serve_latency_us", &self.metrics.latency_exemplars.nonempty());
        } else {
            // Sharded: concatenate every shard's bucket→trace joins; the
            // shard a trace ran on is in its `serve.batch` span's `shard`
            // attribute.
            let merged: Vec<_> =
                self.shards.iter().flat_map(|s| s.metrics.latency_exemplars.nonempty()).collect();
            write_set(&mut out, "serve_latency_us", &merged);
        }
        if let Some(net) = &self.net_metrics {
            out.push(',');
            write_set(&mut out, "net_request_us", &net.request_exemplars.nonempty());
        }
        out.push_str("}\n");
        out
    }

    fn render_buildinfo(&self) -> String {
        let build = BuildInfo::current();
        format!(
            "{{\"version\":\"{}\",\"git_sha\":\"{}\",\"uptime_seconds\":{:.3},\
             \"model_epoch\":{},\"model_swaps\":{},\"shards\":{}}}\n",
            build.version,
            build.git_sha,
            self.uptime_seconds(),
            self.model_epoch(),
            self.model_swaps(),
            self.shards.len().max(1)
        )
    }
}

/// Writes one histogram-shaped series summed bucket-wise over several
/// sources — how the router's endpoint keeps the single-server
/// `serve_latency_us` (etc.) names meaningful across shards. Quantile
/// gauges are estimated from the merged buckets, same bucket-upper-bound
/// convention as [`crossmine_obs::metrics::Histogram::quantile`].
fn write_merged_histogram<'a>(
    w: &mut PromWriter,
    name: &str,
    help: &str,
    sources: impl Iterator<Item = &'a crate::metrics::Histogram>,
) {
    let mut buckets = [0u64; NUM_BUCKETS];
    let mut sum = 0u64;
    let mut count = 0u64;
    for h in sources {
        for (acc, v) in buckets.iter_mut().zip(h.bucket_counts().iter()) {
            *acc += v;
        }
        sum += h.sum();
        count += h.count();
    }
    w.write_histogram_buckets(name, help, &buckets, sum, count);
    let quantile = |q: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    };
    w.write_quantile_gauges(name, quantile(0.50), quantile(0.99));
}

/// A running telemetry endpoint, owned by the server.
pub(crate) struct TelemetryHandle {
    pub(crate) shared: Arc<TelemetryShared>,
    pub(crate) addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle").field("addr", &self.addr).finish()
    }
}

impl TelemetryHandle {
    /// Binds `addr` and spawns the accept loop. Binding to port 0 picks a
    /// free port; the actual address is in `self.addr`.
    pub(crate) fn start(
        addr: SocketAddr,
        shared: Arc<TelemetryShared>,
    ) -> std::io::Result<TelemetryHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("crossmine-telemetry".into())
            .spawn(move || accept_loop(&listener, &thread_shared))?;
        Ok(TelemetryHandle { shared, addr: bound, thread: Some(thread) })
    }

    /// Stops the accept loop and joins the thread.
    pub(crate) fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &TelemetryShared) {
    // Degradation count at the previous health probe: `/healthz` reports
    // `degraded` only when events occurred since the last probe, so a
    // single historical shed doesn't condemn the server forever.
    let mut prev_degradations = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, shared, &mut prev_degradations),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            // Transient accept errors (e.g. aborted handshakes) are not
            // worth killing the endpoint over.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &TelemetryShared, prev_degradations: &mut u64) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    // Parse with the workspace's one HTTP parser (crossmine-net): the
    // query string is stripped and framing errors are typed.
    let limits = HttpLimits::default();
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let req = loop {
        match parse_request(&buf, &limits) {
            Ok(Some((req, _consumed))) => break req,
            Ok(None) => match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => return,
            },
            Err(_) => {
                let mut out = Vec::new();
                write_response(
                    &mut out,
                    400,
                    "Bad Request",
                    "text/plain",
                    &[],
                    b"bad request\n",
                    false,
                );
                let _ = stream.write_all(&out);
                return;
            }
        }
    };

    let (status, content_type, body) = if req.method != "GET" {
        (405, "text/plain", "method not allowed\n".to_string())
    } else {
        match req.path.as_str() {
            "/metrics" => {
                (200, "text/plain; version=0.0.4; charset=utf-8", shared.render_metrics())
            }
            "/healthz" => {
                let health = shared.health(*prev_degradations);
                *prev_degradations = shared.degradations();
                (health.http_status(), "text/plain", format!("{}\n", health.as_str()))
            }
            "/buildinfo" => (200, "application/json", shared.render_buildinfo()),
            "/trace" if shared.tracer.is_enabled() => {
                (200, "application/x-ndjson", shared.render_trace_jsonl())
            }
            "/trace/chrome" if shared.tracer.is_enabled() => {
                (200, "application/json", shared.tracer.render_chrome(TRACE_RENDER_LIMIT))
            }
            "/trace/exemplars" if shared.tracer.is_enabled() => {
                (200, "application/json", shared.render_exemplars())
            }
            // Tracing off: the routes exist but answer 404, so a scraper
            // probing them cannot tell the surface apart from a build
            // without tracing at all.
            "/trace" | "/trace/chrome" | "/trace/exemplars" => {
                (404, "text/plain", "tracing disabled\n".into())
            }
            "/profile" if shared.profiler.is_enabled() => {
                (200, "text/plain; charset=utf-8", shared.profiler.collapsed())
            }
            "/profile/flamegraph" if shared.profiler.is_enabled() => {
                (200, "image/svg+xml", shared.profiler.flamegraph_svg())
            }
            "/profile/heap" if shared.profiler.is_enabled() => {
                (200, "text/plain; charset=utf-8", shared.profiler.heap_report())
            }
            // Profiling off: same 404 contract as the trace routes.
            "/profile" | "/profile/flamegraph" | "/profile/heap" => {
                (404, "text/plain", "profiling disabled\n".into())
            }
            _ => (
                404,
                "text/plain",
                "not found (try /metrics, /healthz, /buildinfo, /trace, /profile)\n".into(),
            ),
        }
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Service Unavailable",
    };
    let mut out = Vec::with_capacity(128 + body.len());
    write_response(&mut out, status as u16, reason, content_type, &[], body.as_bytes(), false);
    let _ = stream.write_all(&out);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buildinfo_has_version() {
        let b = BuildInfo::current();
        assert_eq!(b.version, env!("CARGO_PKG_VERSION"));
        assert!(!b.git_sha.is_empty());
        assert!(b.to_string().contains(b.version));
    }

    #[test]
    fn health_states_map_to_words_and_statuses() {
        assert_eq!(HealthState::Serving.as_str(), "serving");
        assert_eq!(HealthState::Degraded.as_str(), "degraded");
        assert_eq!(HealthState::ShuttingDown.as_str(), "shutting-down");
        assert_eq!(HealthState::Serving.http_status(), 200);
        assert_eq!(HealthState::Degraded.http_status(), 200);
        assert_eq!(HealthState::ShuttingDown.http_status(), 503);
    }
}
