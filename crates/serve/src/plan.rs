//! Compiling a trained [`CrossMineModel`] against a [`DatabaseSchema`] into
//! an executable [`CompiledPlan`].
//!
//! Compilation front-loads all the validation and resolution that
//! per-request evaluation would otherwise repeat: every prop-path edge is
//! checked against the schema's [`JoinGraph`], paths are checked to chain
//! and to start from a relation that is active at that point of the clause
//! (the §5.2 invariant the learner maintains), constrained attributes are
//! checked to exist with the right type, and categorical codes are checked
//! against the dictionary. A compiled plan is therefore *panic-free to
//! evaluate*: the batched evaluator never revalidates.

use crossmine_core::classifier::CrossMineModel;
use crossmine_core::literal::{ComplexLiteral, ConstraintKind};
use crossmine_relational::{AttrId, ClassLabel, DatabaseSchema, JoinGraph, RelId};

/// Why a model failed to compile against a schema.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The schema has no target relation.
    NoTarget,
    /// A literal references a relation outside the schema.
    UnknownRelation {
        /// Index of the offending clause.
        clause: usize,
        /// The out-of-range relation id.
        rel: RelId,
    },
    /// A prop-path edge is not a §3.1 join edge of the schema.
    UnknownEdge {
        /// Index of the offending clause.
        clause: usize,
        /// Index of the literal within the clause.
        literal: usize,
    },
    /// Consecutive prop-path edges do not chain (`to` ≠ next `from`).
    BrokenChain {
        /// Index of the offending clause.
        clause: usize,
        /// Index of the literal within the clause.
        literal: usize,
    },
    /// A literal propagates from (or constrains, for empty paths) a relation
    /// that is not active at that point of the clause.
    InactiveSource {
        /// Index of the offending clause.
        clause: usize,
        /// Index of the literal within the clause.
        literal: usize,
        /// The inactive relation.
        rel: RelId,
    },
    /// A literal's constraint is not on the relation its prop-path ends at.
    PathEndMismatch {
        /// Index of the offending clause.
        clause: usize,
        /// Index of the literal within the clause.
        literal: usize,
    },
    /// A constrained attribute does not exist or has the wrong type.
    BadAttribute {
        /// Index of the offending clause.
        clause: usize,
        /// Index of the literal within the clause.
        literal: usize,
        /// What is wrong with the attribute.
        reason: String,
    },
    /// A categorical test uses a code outside the attribute's dictionary.
    CatCodeOutOfRange {
        /// Index of the offending clause.
        clause: usize,
        /// Index of the literal within the clause.
        literal: usize,
        /// The out-of-dictionary code.
        code: u32,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoTarget => write!(f, "schema has no target relation"),
            PlanError::UnknownRelation { clause, rel } => {
                write!(f, "clause {clause}: relation {} not in schema", rel.0)
            }
            PlanError::UnknownEdge { clause, literal } => {
                write!(f, "clause {clause} literal {literal}: edge is not a join edge")
            }
            PlanError::BrokenChain { clause, literal } => {
                write!(f, "clause {clause} literal {literal}: prop-path edges do not chain")
            }
            PlanError::InactiveSource { clause, literal, rel } => {
                write!(
                    f,
                    "clause {clause} literal {literal}: relation {} inactive at this point",
                    rel.0
                )
            }
            PlanError::PathEndMismatch { clause, literal } => {
                write!(f, "clause {clause} literal {literal}: constraint not at path end")
            }
            PlanError::BadAttribute { clause, literal, reason } => {
                write!(f, "clause {clause} literal {literal}: {reason}")
            }
            PlanError::CatCodeOutOfRange { clause, literal, code } => {
                write!(f, "clause {clause} literal {literal}: categorical code {code} not interned")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Former name of [`PlanError`], kept for one release.
#[deprecated(since = "0.2.0", note = "renamed to PlanError")]
pub type CompileError = PlanError;

/// One clause of a compiled plan: the validated literals plus the ranking
/// metadata prediction needs.
#[derive(Debug, Clone)]
pub struct CompiledClause {
    /// The class this clause predicts.
    pub label: ClassLabel,
    /// Laplace accuracy; clauses are evaluated most-accurate first.
    pub accuracy: f64,
    /// The validated literals, in application order.
    pub literals: Vec<ComplexLiteral>,
}

/// Static statistics of a compiled plan, used for capacity planning and
/// the `loadgen` report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStats {
    /// Number of clauses.
    pub clauses: usize,
    /// Total literals across clauses.
    pub literals: usize,
    /// Total prop-path edges across literals.
    pub path_edges: usize,
    /// Longest single prop-path.
    pub max_path_len: usize,
    /// Distinct numeric thresholds tested per `(relation, attribute)`,
    /// pre-sorted ascending — the threshold ladder a batched evaluator
    /// walks monotonically.
    pub numeric_thresholds: Vec<((RelId, AttrId), Vec<f64>)>,
    /// Number of categorical equality tests per `(relation, attribute)`,
    /// pre-bucketed by dictionary code order.
    pub categorical_tests: Vec<((RelId, AttrId), usize)>,
}

impl std::fmt::Display for PlanStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} clauses, {} literals, {} path edges (max path {}), \
             {} numeric columns, {} categorical columns",
            self.clauses,
            self.literals,
            self.path_edges,
            self.max_path_len,
            self.numeric_thresholds.len(),
            self.categorical_tests.len()
        )
    }
}

/// A model lowered against one schema: validated clauses in rank order plus
/// everything prediction needs resolved ahead of time.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Validated clauses, sorted by accuracy descending (prediction order).
    pub clauses: Vec<CompiledClause>,
    /// Predicted when no clause fires.
    pub default_label: ClassLabel,
    /// Distinct classes of the model.
    pub classes: Vec<ClassLabel>,
    /// The target relation (resolved once; the evaluator trusts it).
    pub target: RelId,
    /// Number of relations the schema had at compile time — a cheap
    /// consistency check against the database handed to the evaluator.
    pub num_relations: usize,
    /// Static plan statistics.
    pub stats: PlanStats,
}

impl CompiledPlan {
    /// Lowers `model` against `schema`, validating every literal. The
    /// returned plan's clauses are in the model's (accuracy-descending)
    /// order, so evaluation semantics match [`CrossMineModel::predict`]
    /// exactly.
    pub fn compile(model: &CrossMineModel, schema: &DatabaseSchema) -> Result<Self, PlanError> {
        let target = schema.target().map_err(|_| PlanError::NoTarget)?;
        let graph = JoinGraph::build(schema);
        let num_relations = schema.num_relations();

        let mut stats = PlanStats { clauses: model.clauses.len(), ..PlanStats::default() };
        let mut clauses = Vec::with_capacity(model.clauses.len());
        for (ci, clause) in model.clauses.iter().enumerate() {
            // Replay the active-relation invariant the learner maintains:
            // only the target is active at the start, each literal's
            // constrained relation becomes active after it applies.
            let mut active = vec![false; num_relations];
            active[target.0] = true;
            for (li, lit) in clause.literals.iter().enumerate() {
                validate_literal(schema, &graph, &active, ci, li, lit)?;
                collect_stats(&mut stats, lit);
                active[lit.constraint.rel.0] = true;
            }
            clauses.push(CompiledClause {
                label: clause.label,
                accuracy: clause.accuracy,
                literals: clause.literals.clone(),
            });
        }
        stats.numeric_thresholds.sort_by_key(|&(k, _)| k);
        stats.categorical_tests.sort_by_key(|&(k, _)| k);
        for (_, thresholds) in &mut stats.numeric_thresholds {
            thresholds.sort_by(f64::total_cmp);
            thresholds.dedup();
        }
        Ok(CompiledPlan {
            clauses,
            default_label: model.default_label,
            classes: model.classes.clone(),
            target,
            num_relations,
            stats,
        })
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

fn validate_literal(
    schema: &DatabaseSchema,
    graph: &JoinGraph,
    active: &[bool],
    ci: usize,
    li: usize,
    lit: &ComplexLiteral,
) -> Result<(), PlanError> {
    let rel = lit.constraint.rel;
    if rel.0 >= schema.num_relations() {
        return Err(PlanError::UnknownRelation { clause: ci, rel });
    }
    if lit.path.is_empty() {
        if !active[rel.0] {
            return Err(PlanError::InactiveSource { clause: ci, literal: li, rel });
        }
    } else {
        let src = lit.path[0].from;
        if src.0 >= schema.num_relations() {
            return Err(PlanError::UnknownRelation { clause: ci, rel: src });
        }
        if !active[src.0] {
            return Err(PlanError::InactiveSource { clause: ci, literal: li, rel: src });
        }
        for (i, edge) in lit.path.iter().enumerate() {
            if !graph.edges().contains(edge) {
                return Err(PlanError::UnknownEdge { clause: ci, literal: li });
            }
            if i > 0 && lit.path[i - 1].to != edge.from {
                return Err(PlanError::BrokenChain { clause: ci, literal: li });
            }
        }
        if lit.path.last().expect("nonempty").to != rel {
            return Err(PlanError::PathEndMismatch { clause: ci, literal: li });
        }
    }

    // Attribute existence + type + dictionary checks.
    let rschema = schema.relation(rel);
    let check_attr = |attr: AttrId, want: &str| -> Result<(), PlanError> {
        if attr.0 >= rschema.arity() {
            return Err(PlanError::BadAttribute {
                clause: ci,
                literal: li,
                reason: format!("attribute {} out of range for {}", attr.0, rschema.name),
            });
        }
        let a = rschema.attr(attr);
        let ok = match want {
            "categorical" => a.ty.is_categorical(),
            _ => a.ty.is_numerical(),
        };
        if !ok {
            return Err(PlanError::BadAttribute {
                clause: ci,
                literal: li,
                reason: format!("{}.{} is not {want}", rschema.name, a.name),
            });
        }
        Ok(())
    };
    match &lit.constraint.kind {
        ConstraintKind::CatEq { attr, value } => {
            check_attr(*attr, "categorical")?;
            if *value as usize >= rschema.attr(*attr).cardinality() {
                return Err(PlanError::CatCodeOutOfRange { clause: ci, literal: li, code: *value });
            }
        }
        ConstraintKind::Num { attr, .. } => check_attr(*attr, "numerical")?,
        ConstraintKind::Agg { attr, .. } => {
            if let Some(a) = attr {
                check_attr(*a, "numerical")?;
            }
        }
    }
    Ok(())
}

fn collect_stats(stats: &mut PlanStats, lit: &ComplexLiteral) {
    stats.literals += 1;
    stats.path_edges += lit.path.len();
    stats.max_path_len = stats.max_path_len.max(lit.path.len());
    let rel = lit.constraint.rel;
    match &lit.constraint.kind {
        ConstraintKind::CatEq { attr, .. } => {
            let key = (rel, *attr);
            match stats.categorical_tests.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => stats.categorical_tests.push((key, 1)),
            }
        }
        ConstraintKind::Num { attr, threshold, .. } => {
            push_threshold(&mut stats.numeric_thresholds, (rel, *attr), *threshold);
        }
        ConstraintKind::Agg { attr, threshold, .. } => {
            if let Some(a) = attr {
                push_threshold(&mut stats.numeric_thresholds, (rel, *a), *threshold);
            }
        }
    }
}

fn push_threshold(acc: &mut Vec<((RelId, AttrId), Vec<f64>)>, key: (RelId, AttrId), t: f64) {
    match acc.iter_mut().find(|(k, _)| *k == key) {
        Some((_, v)) => v.push(t),
        None => acc.push((key, vec![t])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_core::clause::Clause;
    use crossmine_core::literal::{AggOp, CmpOp, Constraint};
    use crossmine_relational::{AttrType, Attribute, JoinEdge, JoinKind, RelationSchema};

    /// T(id pk, x num) <- S(id pk, t_id fk->T, d cat{a,b}, v num).
    fn schema() -> DatabaseSchema {
        let mut s = DatabaseSchema::new();
        let mut t = RelationSchema::new("T");
        t.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        t.add_attribute(Attribute::new("x", AttrType::Numerical)).unwrap();
        let mut sr = RelationSchema::new("S");
        sr.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        sr.add_attribute(Attribute::new("t_id", AttrType::ForeignKey { target: "T".into() }))
            .unwrap();
        let mut d = Attribute::new("d", AttrType::Categorical);
        d.intern("a");
        d.intern("b");
        sr.add_attribute(d).unwrap();
        sr.add_attribute(Attribute::new("v", AttrType::Numerical)).unwrap();
        let tid = s.add_relation(t).unwrap();
        s.add_relation(sr).unwrap();
        s.set_target(tid);
        s
    }

    const T: RelId = RelId(0);
    const S: RelId = RelId(1);

    fn t_to_s() -> JoinEdge {
        JoinEdge {
            from: T,
            from_attr: AttrId(0),
            to: S,
            to_attr: AttrId(1),
            kind: JoinKind::PkToFk,
        }
    }

    fn model_of(literals: Vec<ComplexLiteral>) -> CrossMineModel {
        CrossMineModel {
            clauses: vec![Clause::new(literals, ClassLabel::POS, 5, 1.0, 2)],
            default_label: ClassLabel::NEG,
            classes: vec![ClassLabel::NEG, ClassLabel::POS],
        }
    }

    #[test]
    fn valid_model_compiles_with_stats() {
        let lits = vec![
            ComplexLiteral {
                path: vec![t_to_s()],
                constraint: Constraint {
                    rel: S,
                    kind: ConstraintKind::CatEq { attr: AttrId(2), value: 1 },
                },
            },
            // S is now active: a local numeric literal on it is legal.
            ComplexLiteral::local(Constraint {
                rel: S,
                kind: ConstraintKind::Num { attr: AttrId(3), op: CmpOp::Le, threshold: 4.0 },
            }),
            ComplexLiteral {
                path: vec![t_to_s(), t_to_s().reversed()],
                constraint: Constraint {
                    rel: T,
                    kind: ConstraintKind::Agg {
                        agg: AggOp::Sum,
                        attr: Some(AttrId(1)),
                        op: CmpOp::Ge,
                        threshold: 2.0,
                    },
                },
            },
        ];
        let plan = CompiledPlan::compile(&model_of(lits), &schema()).unwrap();
        assert_eq!(plan.target, T);
        assert_eq!(plan.num_relations, 2);
        assert_eq!(plan.stats.clauses, 1);
        assert_eq!(plan.stats.literals, 3);
        assert_eq!(plan.stats.path_edges, 3);
        assert_eq!(plan.stats.max_path_len, 2);
        assert_eq!(plan.stats.categorical_tests, vec![((S, AttrId(2)), 1)]);
        assert_eq!(
            plan.stats.numeric_thresholds,
            vec![((T, AttrId(1)), vec![2.0]), ((S, AttrId(3)), vec![4.0])]
        );
        let text = plan.stats.to_string();
        assert!(text.contains("1 clauses"), "{text}");
    }

    #[test]
    fn empty_model_compiles() {
        let model = CrossMineModel {
            clauses: Vec::new(),
            default_label: ClassLabel::POS,
            classes: vec![ClassLabel::NEG, ClassLabel::POS],
        };
        let plan = CompiledPlan::compile(&model, &schema()).unwrap();
        assert_eq!(plan.num_clauses(), 0);
        assert_eq!(plan.default_label, ClassLabel::POS);
    }

    #[test]
    fn rejects_inactive_source() {
        // A local literal on S before any path ever activated S.
        let lit = ComplexLiteral::local(Constraint {
            rel: S,
            kind: ConstraintKind::Num { attr: AttrId(3), op: CmpOp::Le, threshold: 0.0 },
        });
        let err = CompiledPlan::compile(&model_of(vec![lit]), &schema()).unwrap_err();
        assert_eq!(err, PlanError::InactiveSource { clause: 0, literal: 0, rel: S });
    }

    #[test]
    fn rejects_unknown_edge_and_broken_chain() {
        // An edge that is not in the join graph (wrong join column).
        let bogus = JoinEdge {
            from: T,
            from_attr: AttrId(1),
            to: S,
            to_attr: AttrId(3),
            kind: JoinKind::PkToFk,
        };
        let lit = ComplexLiteral {
            path: vec![bogus],
            constraint: Constraint {
                rel: S,
                kind: ConstraintKind::CatEq { attr: AttrId(2), value: 0 },
            },
        };
        let err = CompiledPlan::compile(&model_of(vec![lit]), &schema()).unwrap_err();
        assert_eq!(err, PlanError::UnknownEdge { clause: 0, literal: 0 });

        // Two valid edges that do not chain (S -> T then S -> T again).
        let lit = ComplexLiteral {
            path: vec![t_to_s(), t_to_s()],
            constraint: Constraint {
                rel: S,
                kind: ConstraintKind::CatEq { attr: AttrId(2), value: 0 },
            },
        };
        let err = CompiledPlan::compile(&model_of(vec![lit]), &schema()).unwrap_err();
        assert_eq!(err, PlanError::BrokenChain { clause: 0, literal: 0 });
    }

    #[test]
    fn rejects_path_end_mismatch() {
        // Path ends at S but the constraint is on T.
        let lit = ComplexLiteral {
            path: vec![t_to_s()],
            constraint: Constraint {
                rel: T,
                kind: ConstraintKind::Num { attr: AttrId(1), op: CmpOp::Le, threshold: 0.0 },
            },
        };
        let err = CompiledPlan::compile(&model_of(vec![lit]), &schema()).unwrap_err();
        assert_eq!(err, PlanError::PathEndMismatch { clause: 0, literal: 0 });
    }

    #[test]
    fn rejects_bad_attribute_and_code() {
        // Numeric constraint on a categorical column.
        let lit = ComplexLiteral {
            path: vec![t_to_s()],
            constraint: Constraint {
                rel: S,
                kind: ConstraintKind::Num { attr: AttrId(2), op: CmpOp::Le, threshold: 0.0 },
            },
        };
        let err = CompiledPlan::compile(&model_of(vec![lit]), &schema()).unwrap_err();
        assert!(matches!(err, PlanError::BadAttribute { clause: 0, literal: 0, .. }), "{err}");

        // Categorical code beyond the dictionary.
        let lit = ComplexLiteral {
            path: vec![t_to_s()],
            constraint: Constraint {
                rel: S,
                kind: ConstraintKind::CatEq { attr: AttrId(2), value: 99 },
            },
        };
        let err = CompiledPlan::compile(&model_of(vec![lit]), &schema()).unwrap_err();
        assert_eq!(err, PlanError::CatCodeOutOfRange { clause: 0, literal: 0, code: 99 });
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn rejects_schema_without_target() {
        let mut s = schema();
        s.target = None;
        let err = CompiledPlan::compile(&model_of(Vec::new()), &s).unwrap_err();
        assert_eq!(err, PlanError::NoTarget);
    }
}
