//! # crossmine-serve
//!
//! The inference subsystem of the CrossMine reproduction: everything needed
//! to take a trained [`CrossMineModel`](crossmine_core::CrossMineModel)
//! and serve predictions under concurrent load.
//!
//! * [`plan`] — the **clause-plan compiler**: lowers a model against a
//!   schema into a [`CompiledPlan`], front-loading all validation (join
//!   edges, path chaining, the active-relation invariant, attribute types,
//!   dictionary codes) so evaluation is panic-free and revalidation-free.
//! * [`eval`] — the **batched evaluator**: scores N target rows with one
//!   tuple-ID-propagation pass per clause through per-worker
//!   [`ServeScratch`] buffers; byte-identical to
//!   [`CrossMineModel::predict`](crossmine_core::CrossMineModel::predict).
//! * [`eval_disk`] — the same evaluation with every tuple access going
//!   through a [`DiskDatabase`](crossmine_storage::DiskDatabase) buffer
//!   pool (paper §8).
//! * [`registry`] — **lock-free model hot-swap**: wait-free epoch-stamped
//!   snapshots; a batch is always scored under exactly one model.
//! * [`server`] — the **concurrent micro-batching server**: bounded
//!   admission queue, worker pool, flush on `max_batch`/`max_wait`,
//!   drain-based shutdown with zero dropped requests.
//! * [`metrics`] — lock-free counters and log₂ latency/batch-size
//!   histograms with a text report.
//! * [`error`] — the typed [`ServeError`] contract: overload shedding,
//!   per-request deadlines, worker restarts, drain-based shutdown — every
//!   degradation is a value, never a crash.
//! * [`chaos`] — runtime fault injection ([`ChaosConfig`]): stalls,
//!   scoring panics, oversized batches, exercised by `loadgen --chaos`
//!   and the chaos test suite.
//! * [`telemetry`] — the opt-in **live telemetry endpoint**
//!   ([`ServerConfig::telemetry_addr`]): `GET /metrics` in Prometheus
//!   text format, `GET /healthz` tracking the admission state machine,
//!   `GET /buildinfo`, served by one `std::net` thread with zero cost
//!   when disabled.
//! * [`net`] — the opt-in **wire front end** ([`ServerConfig::net`]):
//!   one TCP port speaking HTTP/1.1 (`POST /predict`) and
//!   length-prefixed binary frames (the `crossmine-net` crate), bridged
//!   onto the same admission path as in-process submitters, with the
//!   [`ServeError`] taxonomy pinned onto typed wire statuses
//!   ([`wire_status_for`]).
//! * [`request`] — the unified submission surface: one
//!   [`ServeRequest`] builder (rows, deadline, trace, shard hint)
//!   replaces the per-combination `submit*` methods.
//! * [`overlay`] — **incremental serving for mutable databases**: a
//!   validated [`DeltaBatch`](crossmine_relational::DeltaBatch) installs
//!   a side-CSR overlay merged during propagation
//!   ([`PredictionServer::apply_delta`]), byte-identical to rebuilding
//!   the database with the delta materialized — no recompile, no copy.
//! * [`shard`] — **sharded, shared-nothing serving**: a [`ShardRouter`]
//!   hash-partitions the target relation across N full server shards,
//!   each with its own queue, workers, overlay slot, and registry slot,
//!   enabling zero-downtime *rolling* model installs
//!   ([`ShardRouter::rolling_install`]).
//!
//! [`PredictionServer::apply_delta`]: server::PredictionServer::apply_delta
//!
//! ```
//! use std::sync::Arc;
//! use crossmine_core::CrossMine;
//! use crossmine_relational::Row;
//! use crossmine_serve::{CompiledPlan, ModelRegistry, PredictionServer, ServerConfig};
//!
//! let db = crossmine_synth::generate(&crossmine_synth::GenParams {
//!     num_relations: 3, expected_tuples: 60, min_tuples: 20, ..Default::default()
//! });
//! let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
//! let model = CrossMine::default().fit(&db, &rows).unwrap();
//! let expected = model.predict(&db, &rows).unwrap();
//!
//! let plan = CompiledPlan::compile(&model, &db.schema).unwrap();
//! let registry = Arc::new(ModelRegistry::new(plan));
//! let server = PredictionServer::start(Arc::new(db), registry, ServerConfig::default())
//!     .expect("default config is valid");
//! for (i, &row) in rows.iter().enumerate() {
//!     assert_eq!(server.predict(row).unwrap().label, expected[i]);
//! }
//! let report = server.shutdown();
//! assert_eq!(report.requests, rows.len() as u64);
//! assert_eq!(report.errors, 0);
//! assert_eq!(report.shed + report.deadline_expired + report.worker_restarts, 0);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod eval;
pub mod eval_disk;
pub mod metrics;
pub mod net;
pub mod overlay;
pub mod plan;
pub mod registry;
pub mod request;
pub mod server;
pub mod shard;
pub mod telemetry;

pub use chaos::{ChaosAction, ChaosConfig};
pub use crossmine_core::explain::{ClauseFire, LiteralMatch, RowExplanation};
pub use crossmine_net::{NetConfig, NetLimits, NetMetrics, WireStatus};
pub use crossmine_obs::{
    ObsHandle, ProfileConfig, Profiler, ServeReport, StoredTrace, TraceConfig, TraceCtx, TraceId,
    TraceStats, Tracer,
};
pub use error::ServeError;
pub use eval::{evaluate_batch, evaluate_batch_traced, ServeScratch};
pub use eval_disk::predict_disk;
pub use metrics::{Histogram, MetricsSnapshot, ServeMetrics};
pub use net::{wire_status_for, ServeBackend};
pub use overlay::{evaluate_batch_overlay, evaluate_batch_overlay_traced, OverlayScratch};
#[allow(deprecated)]
pub use plan::CompileError;
pub use plan::{CompiledClause, CompiledPlan, PlanError, PlanStats};
pub use registry::{ModelRegistry, ModelSnapshot};
pub use request::ServeRequest;
pub use server::{
    DeltaStats, ExplainedPrediction, Prediction, PredictionHandle, PredictionServer, ServerConfig,
    ServerConfigBuilder, MAX_SHARDS,
};
pub use shard::{shard_of_row, RouterStats, ShardConfig, ShardRouter, ShardStats};
pub use telemetry::{BuildInfo, HealthState};
