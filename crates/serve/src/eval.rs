//! Batched clause-plan evaluation.
//!
//! [`evaluate_batch`] scores N target rows in **one tuple-ID propagation
//! pass per clause** — the same algorithm as
//! [`CrossMineModel::predict`](crossmine_core::CrossMineModel::predict),
//! literal for literal, so results are byte-identical — but all scratch
//! state ([`ServeScratch`]) lives with the caller (one per server worker)
//! and path propagation goes through [`PathScratch`]'s reused CSR buffers,
//! so steady-state evaluation performs no per-request propagation
//! allocation. The surviving-[`TargetSet`] acts as the early-exit bitmap:
//! once every batched row has been assigned by an earlier (more accurate)
//! clause, remaining clauses are skipped outright.

use crossmine_core::explain::{ClauseFire, LiteralMatch, RowExplanation};
use crossmine_core::idset::{Stamp, TargetSet};
use crossmine_core::propagation::{ClauseState, PathScratch};
use crossmine_obs::ObsHandle;
use crossmine_relational::{ClassLabel, Database, Row};

use crate::plan::{CompiledClause, CompiledPlan};

/// Per-worker reusable state for [`evaluate_batch`]: positivity dummies,
/// the distinct-counting stamp, the per-row label assignments, and the CSR
/// ping-pong buffers for prop-path propagation. All buffers survive across
/// batches; only a change in the database's target cardinality re-sizes
/// them.
#[derive(Debug, Default)]
pub struct ServeScratch {
    dummy_pos: Vec<bool>,
    stamp: Option<Stamp>,
    label_of: Vec<Option<ClassLabel>>,
    path: PathScratch,
    obs: ObsHandle,
}

impl ServeScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch whose [`evaluate_batch`] calls report per-batch spans,
    /// row/clause counters, and propagation stats through `obs`. The
    /// default (no-op) handle makes every hook free.
    pub fn with_obs(obs: ObsHandle) -> Self {
        ServeScratch { obs, ..Default::default() }
    }

    fn ensure(&mut self, num_targets: usize) {
        if self.dummy_pos.len() != num_targets {
            self.dummy_pos = vec![false; num_targets];
            self.stamp = Some(Stamp::new(num_targets));
            self.label_of = vec![None; num_targets];
        }
    }
}

/// Predicts the class of each of `rows` under `plan`, mirroring
/// [`CrossMineModel::predict`](crossmine_core::CrossMineModel::predict)
/// exactly: per clause (accuracy-descending), one propagation pass checks
/// satisfaction of all still-unassigned rows at once; a satisfied row takes
/// the clause's label; rows no clause covers take the default label.
///
/// Labels are assigned per *row*, not per batch slot, so a row that appears
/// several times in one batch (concurrent clients asking about the same
/// entity land in the same micro-batch) gets the same — correct — label at
/// every occurrence, exactly as if each occurrence were predicted alone.
///
/// # Panics
///
/// Panics when `db` does not match the schema the plan was compiled
/// against (different relation count or target relation) or when a row id
/// is out of the target relation's range — both indicate a caller wiring
/// error, never data-dependent conditions.
pub fn evaluate_batch(
    plan: &CompiledPlan,
    db: &Database,
    rows: &[Row],
    scratch: &mut ServeScratch,
) -> Vec<ClassLabel> {
    assert_eq!(
        db.schema.num_relations(),
        plan.num_relations,
        "database does not match the schema this plan was compiled for"
    );
    assert_eq!(db.target(), Ok(plan.target), "database target differs from the plan's");
    let num_targets = db.num_targets();
    scratch.ensure(num_targets);
    let obs = scratch.obs.clone();
    let _batch = obs.span("serve.evaluate_batch");
    let ServeScratch { dummy_pos, stamp, label_of, path, .. } = scratch;
    let stamp = stamp.as_mut().expect("ensure() populated the stamp");

    // `TargetSet` is a bitmap, so duplicate occurrences of a row collapse
    // into one propagated target; `label_of` then fans the result back out
    // to every batch slot holding that row.
    let mut unassigned = TargetSet::from_rows(dummy_pos, rows.iter().copied());
    let mut clauses_evaluated = 0u64;
    for clause in &plan.clauses {
        if unassigned.is_empty() {
            break;
        }
        clauses_evaluated += 1;
        let mut state = ClauseState::new(db, dummy_pos, unassigned.clone());
        for lit in &clause.literals {
            state.apply_literal_scratch(lit, stamp, path);
            if state.targets.is_empty() {
                break;
            }
        }
        for r in state.targets.iter() {
            let slot = &mut label_of[r.0 as usize];
            if slot.is_none() {
                *slot = Some(clause.label);
            }
            unassigned.remove(r.0, dummy_pos);
        }
    }
    if obs.is_enabled() {
        obs.add("serve.rows_scored", rows.len() as u64);
        obs.add("serve.clauses_evaluated", clauses_evaluated);
        let stats = path.take_stats();
        obs.add("propagation.passes", stats.passes);
        obs.add("propagation.ids_propagated", stats.ids_propagated);
        obs.add("propagation.csr_capacity_hits", stats.capacity_hits);
    }

    let out = rows.iter().map(|r| label_of[r.0 as usize].unwrap_or(plan.default_label)).collect();
    // Reset only the touched entries so the map stays clean for the next
    // batch without an O(num_targets) sweep.
    for r in rows {
        label_of[r.0 as usize] = None;
    }
    out
}

/// Builds the provenance record for a compiled clause at rank `index`.
fn compiled_clause_fire(db: &Database, index: usize, clause: &CompiledClause) -> ClauseFire {
    ClauseFire {
        clause_index: index,
        label: clause.label,
        accuracy: clause.accuracy,
        literals: clause
            .literals
            .iter()
            .map(|lit| LiteralMatch { literal: lit.display(&db.schema), path_len: lit.path.len() })
            .collect(),
    }
}

/// [`evaluate_batch`] with full per-row provenance: returns one
/// [`RowExplanation`] per batch slot carrying the predicted label, every
/// clause that fired (most accurate first) with its matched literals and
/// prop-paths, and whether the default label was used.
///
/// The labels always equal [`evaluate_batch`]'s (clause satisfaction is
/// per-target-independent and the winner is the first firing clause), but
/// tracing cannot stop once every row is assigned — an explanation lists
/// *all* fires, so every clause costs its propagation pass. This is the
/// price of provenance; serve it out-of-band
/// ([`PredictionServer::predict_explained`](crate::server::PredictionServer::predict_explained)),
/// not on the batch hot path.
///
/// # Panics
///
/// Same wiring-error panics as [`evaluate_batch`].
pub fn evaluate_batch_traced(
    plan: &CompiledPlan,
    db: &Database,
    rows: &[Row],
    scratch: &mut ServeScratch,
) -> Vec<RowExplanation> {
    assert_eq!(
        db.schema.num_relations(),
        plan.num_relations,
        "database does not match the schema this plan was compiled for"
    );
    assert_eq!(db.target(), Ok(plan.target), "database target differs from the plan's");
    let num_targets = db.num_targets();
    scratch.ensure(num_targets);
    let obs = scratch.obs.clone();
    let _batch = obs.span("serve.evaluate_batch_traced");
    let ServeScratch { dummy_pos, stamp, path, .. } = scratch;
    let stamp = stamp.as_mut().expect("ensure() populated the stamp");

    // Which clause indices fired per batch slot. A row appearing in
    // several slots fires identically in each: satisfaction depends only
    // on the row, so the fan-out is a plain copy.
    let mut fired_of: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
    for (ci, clause) in plan.clauses.iter().enumerate() {
        let initial = TargetSet::from_rows(dummy_pos, rows.iter().copied());
        let mut state = ClauseState::new(db, dummy_pos, initial);
        for lit in &clause.literals {
            if state.targets.is_empty() {
                break;
            }
            state.apply_literal_scratch(lit, stamp, path);
        }
        for r in state.targets.iter() {
            for (slot, row) in rows.iter().enumerate() {
                if *row == r {
                    fired_of[slot].push(ci);
                }
            }
        }
    }
    if obs.is_enabled() {
        obs.add("serve.rows_explained", rows.len() as u64);
        let stats = path.take_stats();
        obs.add("propagation.passes", stats.passes);
        obs.add("propagation.ids_propagated", stats.ids_propagated);
        obs.add("propagation.csr_capacity_hits", stats.capacity_hits);
    }

    rows.iter()
        .zip(fired_of)
        .map(|(&row, fired_idx)| {
            let fired: Vec<ClauseFire> = fired_idx
                .iter()
                .map(|&ci| compiled_clause_fire(db, ci, &plan.clauses[ci]))
                .collect();
            let label = fired.first().map_or(plan.default_label, |f| f.label);
            RowExplanation { row, label, default_used: fired.is_empty(), fired }
        })
        .collect()
}
