//! Batched clause-plan evaluation.
//!
//! [`evaluate_batch`] scores N target rows in **one tuple-ID propagation
//! pass per clause** — the same algorithm as
//! [`CrossMineModel::predict`](crossmine_core::CrossMineModel::predict),
//! literal for literal, so results are byte-identical — but all scratch
//! state ([`ServeScratch`]) lives with the caller (one per server worker)
//! and path propagation goes through [`PathScratch`]'s reused CSR buffers,
//! so steady-state evaluation performs no per-request propagation
//! allocation. The surviving-[`TargetSet`] acts as the early-exit bitmap:
//! once every batched row has been assigned by an earlier (more accurate)
//! clause, remaining clauses are skipped outright.

use crossmine_core::idset::{Stamp, TargetSet};
use crossmine_core::propagation::{ClauseState, PathScratch};
use crossmine_obs::ObsHandle;
use crossmine_relational::{ClassLabel, Database, Row};

use crate::plan::CompiledPlan;

/// Per-worker reusable state for [`evaluate_batch`]: positivity dummies,
/// the distinct-counting stamp, the per-row label assignments, and the CSR
/// ping-pong buffers for prop-path propagation. All buffers survive across
/// batches; only a change in the database's target cardinality re-sizes
/// them.
#[derive(Debug, Default)]
pub struct ServeScratch {
    dummy_pos: Vec<bool>,
    stamp: Option<Stamp>,
    label_of: Vec<Option<ClassLabel>>,
    path: PathScratch,
    obs: ObsHandle,
}

impl ServeScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch whose [`evaluate_batch`] calls report per-batch spans,
    /// row/clause counters, and propagation stats through `obs`. The
    /// default (no-op) handle makes every hook free.
    pub fn with_obs(obs: ObsHandle) -> Self {
        ServeScratch { obs, ..Default::default() }
    }

    fn ensure(&mut self, num_targets: usize) {
        if self.dummy_pos.len() != num_targets {
            self.dummy_pos = vec![false; num_targets];
            self.stamp = Some(Stamp::new(num_targets));
            self.label_of = vec![None; num_targets];
        }
    }
}

/// Predicts the class of each of `rows` under `plan`, mirroring
/// [`CrossMineModel::predict`](crossmine_core::CrossMineModel::predict)
/// exactly: per clause (accuracy-descending), one propagation pass checks
/// satisfaction of all still-unassigned rows at once; a satisfied row takes
/// the clause's label; rows no clause covers take the default label.
///
/// Labels are assigned per *row*, not per batch slot, so a row that appears
/// several times in one batch (concurrent clients asking about the same
/// entity land in the same micro-batch) gets the same — correct — label at
/// every occurrence, exactly as if each occurrence were predicted alone.
///
/// # Panics
///
/// Panics when `db` does not match the schema the plan was compiled
/// against (different relation count or target relation) or when a row id
/// is out of the target relation's range — both indicate a caller wiring
/// error, never data-dependent conditions.
pub fn evaluate_batch(
    plan: &CompiledPlan,
    db: &Database,
    rows: &[Row],
    scratch: &mut ServeScratch,
) -> Vec<ClassLabel> {
    assert_eq!(
        db.schema.num_relations(),
        plan.num_relations,
        "database does not match the schema this plan was compiled for"
    );
    assert_eq!(db.target(), Ok(plan.target), "database target differs from the plan's");
    let num_targets = db.num_targets();
    scratch.ensure(num_targets);
    let obs = scratch.obs.clone();
    let _batch = obs.span("serve.evaluate_batch");
    let ServeScratch { dummy_pos, stamp, label_of, path, .. } = scratch;
    let stamp = stamp.as_mut().expect("ensure() populated the stamp");

    // `TargetSet` is a bitmap, so duplicate occurrences of a row collapse
    // into one propagated target; `label_of` then fans the result back out
    // to every batch slot holding that row.
    let mut unassigned = TargetSet::from_rows(dummy_pos, rows.iter().copied());
    let mut clauses_evaluated = 0u64;
    for clause in &plan.clauses {
        if unassigned.is_empty() {
            break;
        }
        clauses_evaluated += 1;
        let mut state = ClauseState::new(db, dummy_pos, unassigned.clone());
        for lit in &clause.literals {
            state.apply_literal_scratch(lit, stamp, path);
            if state.targets.is_empty() {
                break;
            }
        }
        for r in state.targets.iter() {
            let slot = &mut label_of[r.0 as usize];
            if slot.is_none() {
                *slot = Some(clause.label);
            }
            unassigned.remove(r.0, dummy_pos);
        }
    }
    if obs.is_enabled() {
        obs.add("serve.rows_scored", rows.len() as u64);
        obs.add("serve.clauses_evaluated", clauses_evaluated);
        let stats = path.take_stats();
        obs.add("propagation.passes", stats.passes);
        obs.add("propagation.ids_propagated", stats.ids_propagated);
        obs.add("propagation.csr_capacity_hits", stats.capacity_hits);
    }

    let out = rows.iter().map(|r| label_of[r.0 as usize].unwrap_or(plan.default_label)).collect();
    // Reset only the touched entries so the map stays clean for the next
    // batch without an O(num_targets) sweep.
    for r in rows {
        label_of[r.0 as usize] = None;
    }
    out
}
