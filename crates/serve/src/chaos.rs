//! Fault injection for the prediction server.
//!
//! [`ChaosConfig`] is carried inside [`ServerConfig`](crate::server::ServerConfig)
//! and consulted by every worker once per batch, driven by a shared
//! monotonic tick counter. The default configuration injects nothing and
//! costs one atomic increment plus a few integer compares per batch, so it
//! is always compiled in — a cargo feature would be unified into tier-1
//! builds by the workspace anyway, and a runtime default-off knob is both
//! simpler and testable from `loadgen --chaos` without a rebuild.
//!
//! Injectable faults, matching the degradations the server must survive:
//!
//! * **stall** — the worker sleeps mid-batch, simulating a slow model or a
//!   page-cache miss storm; under load this fills the admission queue and
//!   must surface as `Overloaded` sheds and `DeadlineExceeded` expiries,
//!   never as blocked submitters.
//! * **panic** — the worker panics inside the scoring region, simulating a
//!   poisoned model or data bug; the server must answer the batch with
//!   `WorkerPanicked`, restart the worker loop, and keep serving.
//! * **oversize** — the batch is scored with every row duplicated
//!   `oversize_factor`×, simulating an oversized batch handed to the
//!   evaluator; extra results are discarded and answers must stay correct.
//!
//! Mid-batch registry swaps — the fourth chaos dimension — need no hook
//! here: they are driven externally (tests / `loadgen --chaos` swap the
//! [`ModelRegistry`](crate::registry::ModelRegistry) from another thread)
//! and the snapshot-per-batch discipline must keep every answer internally
//! consistent.

use std::time::Duration;

/// Runtime fault-injection knobs. `Default` injects nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Stall the worker on every Nth batch (0 = never).
    pub stall_every: u64,
    /// How long a stalled worker sleeps.
    pub stall_for: Duration,
    /// Panic inside the scoring region on every Nth batch (0 = never).
    pub panic_every: u64,
    /// Score every Nth batch with duplicated rows (0 = never).
    pub oversize_every: u64,
    /// Row-duplication factor for oversized batches (≥ 2 to have effect).
    pub oversize_factor: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            stall_every: 0,
            stall_for: Duration::from_millis(10),
            panic_every: 0,
            oversize_every: 0,
            oversize_factor: 4,
        }
    }
}

/// What a worker was told to inject for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Sleep for the given duration before scoring.
    Stall(Duration),
    /// Panic inside the scoring region.
    Panic,
    /// Duplicate every row this many times for the evaluator call.
    Oversize(usize),
}

impl ChaosConfig {
    /// A configuration injecting nothing (same as `Default`).
    pub fn off() -> Self {
        Self::default()
    }

    /// The standard chaos mix used by `loadgen --chaos` and the chaos test
    /// suite: frequent stalls, occasional panics, occasional oversized
    /// batches.
    pub fn standard() -> Self {
        ChaosConfig {
            stall_every: 5,
            stall_for: Duration::from_millis(2),
            panic_every: 7,
            oversize_every: 3,
            oversize_factor: 4,
        }
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.stall_every > 0 || self.panic_every > 0 || self.oversize_every > 0
    }

    /// The fault (if any) to inject on batch number `tick` (0-based,
    /// global across workers). At most one fault fires per batch; panics
    /// take precedence, then stalls, then oversizing — a panic tick must
    /// not be consumed by a milder fault or rare faults would never fire.
    pub fn action(&self, tick: u64) -> Option<ChaosAction> {
        if self.panic_every > 0 && tick % self.panic_every == self.panic_every - 1 {
            return Some(ChaosAction::Panic);
        }
        if self.stall_every > 0 && tick % self.stall_every == self.stall_every - 1 {
            return Some(ChaosAction::Stall(self.stall_for));
        }
        if self.oversize_every > 0 && tick % self.oversize_every == self.oversize_every - 1 {
            return Some(ChaosAction::Oversize(self.oversize_factor.max(2)));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let c = ChaosConfig::default();
        assert!(!c.is_active());
        for t in 0..1000 {
            assert_eq!(c.action(t), None);
        }
    }

    #[test]
    fn actions_fire_on_schedule() {
        let c = ChaosConfig {
            stall_every: 5,
            stall_for: Duration::from_millis(1),
            panic_every: 7,
            oversize_every: 3,
            oversize_factor: 4,
        };
        assert!(c.is_active());
        assert_eq!(c.action(6), Some(ChaosAction::Panic)); // tick 6: 7th batch
        assert_eq!(c.action(4), Some(ChaosAction::Stall(Duration::from_millis(1))));
        assert_eq!(c.action(2), Some(ChaosAction::Oversize(4)));
        assert_eq!(c.action(0), None);
        // Tick 34 is both a stall (5) and panic (7) tick: panic wins.
        assert_eq!(c.action(34), Some(ChaosAction::Panic));
    }

    #[test]
    fn every_fault_kind_fires_within_one_lcm_period() {
        let c = ChaosConfig::standard();
        let mut saw = (false, false, false);
        for t in 0..105 {
            match c.action(t) {
                Some(ChaosAction::Stall(_)) => saw.0 = true,
                Some(ChaosAction::Panic) => saw.1 = true,
                Some(ChaosAction::Oversize(_)) => saw.2 = true,
                None => {}
            }
        }
        assert!(saw.0 && saw.1 && saw.2, "all fault kinds must fire: {saw:?}");
    }
}
