//! Sharded, shared-nothing serving: a [`ShardRouter`] hash-partitions the
//! target relation across N independent [`PredictionServer`] shards.
//!
//! Each shard is a full server in miniature — its own admission queue,
//! worker pool, scratch buffers, metrics aggregate, delta overlay slot,
//! and (crucially) its own [`ModelRegistry`] slot. Shards share the
//! immutable base [`Database`] by `Arc`, and nothing else: no lock, no
//! counter, no scratch crosses a shard boundary, so shards scale without
//! coordination and a fault (a chaos panic, a poisoned queue) stays
//! inside the shard it happened on.
//!
//! **Routing** is a fixed multiplicative hash of the target row id
//! ([`shard_of_row`]): deterministic across processes and restarts, so a
//! caller can precompute placement, and stable under load (no rebalancing
//! — the target relation is immutable; delta-inserted target rows hash
//! the same way). [`ServeRequest::shard_hint`] pins a whole request to
//! one shard when the caller knows better.
//!
//! **Hot swaps** become *rolling*: because every shard has its own
//! registry slot, [`ShardRouter::rolling_install`] walks the shards one
//! at a time. Mid-roll, shards legitimately disagree on the epoch —
//! replies carry the epoch that scored them, exactly as with a
//! single-server swap — and serving never pauses: each per-shard install
//! is the same wait-free pointer swap a standalone server does.
//!
//! ```text
//!                 rolling_install(plan)
//!     shard 0: epoch e ──swap──► e+1 │ serving throughout
//!     shard 1: epoch e ───────swap──► e+1 │ serving throughout
//!     shard 2: epoch e ──────────────swap──► e+1 │ serving throughout
//!               ▲ requests keep flowing; replies say which epoch
//! ```
//!
//! **Deltas** broadcast: [`ShardRouter::apply_delta`] validates and
//! installs the overlay on every shard, so any shard can answer any row
//! (provenance included) against base + all accepted deltas.
//!
//! The router's wire front end and telemetry endpoint are singletons that
//! fan out: one TCP port routes rows to shard queues through the same
//! all-or-nothing batch contract as the single-server backend, and one
//! `/metrics` page renders aggregate `crossmine_serve_*` series plus
//! per-shard `crossmine_shard_<k>_*` counters and epoch gauges.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossmine_net::{Backend, BatchReply, NetListener, NetMetrics, WireReject};
use crossmine_obs::{Profiler, TraceCtx};
use crossmine_relational::{Database, DeltaBatch, Row};

use crate::error::ServeError;
use crate::metrics::MetricsSnapshot;
use crate::net::{poll_pending, reject_for, ServePending};
use crate::plan::CompiledPlan;
use crate::registry::ModelRegistry;
use crate::request::ServeRequest;
use crate::server::{
    validate_config, DeltaStats, ExplainedPrediction, Prediction, PredictionHandle,
    PredictionServer, ServerConfig,
};
use crate::telemetry::{ShardTelemetry, TelemetryHandle, TelemetryShared};

/// How a [`ShardRouter`] partitions the target relation. Carried on
/// [`ServerConfig::shard`]; the default (`shards: 1`) means unsharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shared-nothing shards. Each shard gets its own full
    /// worker pool and queue (so total workers = `workers × shards`).
    /// Must be in `1..=`[`MAX_SHARDS`](crate::server::MAX_SHARDS).
    pub shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 1 }
    }
}

/// The fixed routing hash: Fibonacci multiplicative hashing on the target
/// row id, high bits folded modulo the shard count. Deterministic across
/// processes — a caller can precompute a row's shard — and unrelated to
/// the row id's low bits, so striped or clustered id ranges still spread.
pub fn shard_of_row(row: Row, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = u64::from(row.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// One shard's view at a point in time, from [`ShardRouter::stats`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Which shard (0-based, stable for the router's lifetime).
    pub shard: u32,
    /// The shard's serving metrics (requests, shed, errors, latency, and
    /// the shard's own swap count).
    pub snapshot: MetricsSnapshot,
    /// The model epoch the shard is currently serving.
    pub epoch: u64,
}

/// Per-shard stats plus cross-shard aggregates, from
/// [`ShardRouter::stats`] / [`ShardRouter::shutdown`].
#[derive(Debug, Clone)]
pub struct RouterStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl RouterStats {
    /// Requests admitted across all shards.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot.requests).sum()
    }

    /// Requests shed across all shards.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot.shed).sum()
    }

    /// Reply errors across all shards (dropped handles, worker panics).
    pub fn total_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot.errors).sum()
    }

    /// Deadline expiries across all shards.
    pub fn total_deadline_expired(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot.deadline_expired).sum()
    }

    /// Worker restarts across all shards.
    pub fn total_worker_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.snapshot.worker_restarts).sum()
    }

    /// The oldest epoch any shard is serving — during a rolling install
    /// this lags the newest until the roll completes.
    pub fn min_epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch).min().unwrap_or(0)
    }

    /// The newest epoch any shard is serving.
    pub fn max_epoch(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch).max().unwrap_or(0)
    }
}

/// [`Backend`] that routes each row of a wire batch to its shard's
/// admission queue. Same all-or-nothing contract and reply resolution as
/// the single-server [`ServeBackend`](crate::net::ServeBackend) — the
/// resolution state machine is literally shared ([`poll_pending`]).
struct RouterBackend {
    admitters: Vec<crate::server::Admitter>,
    /// Publishes a `shard.route` frame while hashing rows to shards, so
    /// router fan-out cost shows up in wall samples of the poll thread.
    profiler: Profiler,
}

impl Backend for RouterBackend {
    type Pending = ServePending;

    fn submit(
        &self,
        rows: &[Row],
        deadline: Option<Duration>,
        trace: &TraceCtx,
    ) -> Result<ServePending, WireReject> {
        let _route = self.profiler.enter("shard.route");
        let deadline = deadline.map(|d| Instant::now() + d);
        let mut handles = Vec::with_capacity(rows.len());
        for &row in rows {
            let shard = shard_of_row(row, self.admitters.len());
            match self.admitters[shard].admit_traced(row, deadline, trace.clone(), false) {
                Ok(handle) => handles.push(handle),
                Err(e) => return Err(reject_for(&e)),
            }
        }
        Ok(ServePending::from_handles(handles))
    }

    fn poll(&self, pending: &mut ServePending) -> Option<Result<BatchReply, WireReject>> {
        poll_pending(pending)
    }
}

/// N shared-nothing [`PredictionServer`] shards behind one routing front.
///
/// Start with [`ShardRouter::start`]; submit with the same
/// [`ServeRequest`] a single server takes. Replies preserve per-row
/// order: `serve(req)` returns one handle per row, in request order, no
/// matter how the rows scattered across shards.
pub struct ShardRouter {
    db: Arc<Database>,
    shards: Vec<PredictionServer>,
    net: Option<NetListener>,
    telemetry: Option<TelemetryHandle>,
    /// Router-level mirror of the shards' admission state for `/healthz`.
    admission_closed: Arc<AtomicBool>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("net", &self.net.as_ref().map(|n| n.local_addr()))
            .finish()
    }
}

impl ShardRouter {
    /// Starts `config.shard.shards` shared-nothing shards over `db`, each
    /// with its own registry slot initially holding `plan`.
    ///
    /// The router owns the optional wire front end and telemetry endpoint
    /// (`config.net` / `config.telemetry_addr`); the shards themselves
    /// bind nothing. Everything else in `config` (workers, batching,
    /// queue capacity, chaos, obs, tracer) applies *per shard*.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on out-of-range fields (the
    /// [`ServerConfig::builder`] checks) or an unbindable address.
    pub fn start(
        db: Arc<Database>,
        plan: &CompiledPlan,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        validate_config(&config)?;
        let n = config.shard.shards;
        let admission_closed = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            let registry = Arc::new(ModelRegistry::new(plan.clone()));
            let mut shard_config = config.clone();
            shard_config.shard = ShardConfig { shards: 1 };
            shard_config.shard_id = Some(k as u32);
            shard_config.telemetry_addr = None;
            shard_config.net = None;
            shards.push(PredictionServer::start(Arc::clone(&db), registry, shard_config)?);
        }
        let net_metrics = config.net.as_ref().map(|_| Arc::new(NetMetrics::default()));
        let telemetry = match config.telemetry_addr {
            Some(addr) => {
                let tshared = Arc::new(TelemetryShared {
                    // The single-server fields are required by shape but
                    // unused for rendering once `shards` is non-empty.
                    metrics: shards[0].metrics_arc(),
                    registry: Arc::clone(shards[0].registry()),
                    obs: config.obs.clone(),
                    admission_closed: Arc::clone(&admission_closed),
                    started: Instant::now(),
                    stop: AtomicBool::new(false),
                    net_metrics: net_metrics.clone(),
                    tracer: config.tracer.clone(),
                    profiler: config.profiler.clone(),
                    shards: shards
                        .iter()
                        .enumerate()
                        .map(|(k, s)| ShardTelemetry {
                            shard: k as u32,
                            metrics: s.metrics_arc(),
                            registry: Arc::clone(s.registry()),
                        })
                        .collect(),
                });
                let handle = TelemetryHandle::start(addr, tshared).map_err(|e| {
                    ServeError::InvalidConfig(format!("cannot bind telemetry_addr {addr}: {e}"))
                })?;
                Some(handle)
            }
            None => None,
        };
        let net = match (&config.net, net_metrics) {
            (Some(net_config), Some(net_metrics)) => {
                let backend = Arc::new(RouterBackend {
                    admitters: shards.iter().map(|s| s.admitter().clone()).collect(),
                    profiler: config.profiler.clone(),
                });
                let mut net_config = net_config.clone();
                if !net_config.tracer.is_enabled() {
                    net_config.tracer = config.tracer.clone();
                }
                if !net_config.profiler.is_enabled() {
                    net_config.profiler = config.profiler.clone();
                }
                match NetListener::start(
                    net_config.clone(),
                    backend,
                    config.obs.clone(),
                    net_metrics,
                ) {
                    Ok(listener) => Some(listener),
                    Err(e) => {
                        if let Some(mut t) = telemetry {
                            t.stop();
                        }
                        // The shards Vec is dropped on return; each
                        // shard's Drop drains and joins its workers.
                        return Err(ServeError::InvalidConfig(format!(
                            "cannot bind net addr {}: {e}",
                            net_config.addr
                        )));
                    }
                }
            }
            _ => None,
        };
        Ok(ShardRouter { db, shards, net, telemetry, admission_closed })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `row` hash-routes to (absent a
    /// [`ServeRequest::shard_hint`]).
    pub fn shard_of(&self, row: Row) -> usize {
        shard_of_row(row, self.shards.len())
    }

    /// Admits every row of `req` to its shard; never blocks. Handles come
    /// back one per row **in request order** regardless of shard scatter.
    /// A [`ServeRequest::shard_hint`] pins all rows to that shard.
    ///
    /// Admission is all-or-nothing across shards: the first row any shard
    /// rejects fails the whole call (rows already admitted elsewhere are
    /// scored and discarded) — one contract, identical to the single
    /// server and the wire front end.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an out-of-range `shard_hint`;
    /// otherwise the admission errors of [`PredictionServer::serve`].
    pub fn serve(&self, req: ServeRequest) -> Result<Vec<PredictionHandle>, ServeError> {
        let n = self.shards.len();
        if let Some(hint) = req.shard_hint {
            if hint >= n {
                return Err(ServeError::InvalidConfig(format!(
                    "shard_hint = {hint} out of range: router has {n} shards"
                )));
            }
        }
        let deadline = req.deadline.map(|d| Instant::now() + d);
        let mut handles = Vec::with_capacity(req.rows.len());
        // In-process fan-out gets the same routing frame the wire backend
        // publishes; the first shard's profiler is the router's (every
        // shard clones the one config).
        let _route = self.shards[0].profiler().enter("shard.route");
        for &row in &req.rows {
            let shard = req.shard_hint.unwrap_or_else(|| shard_of_row(row, n));
            let admitter = self.shards[shard].admitter();
            let handle = match &req.trace {
                Some(ctx) => admitter.admit_traced(row, deadline, ctx.clone(), false)?,
                None => admitter.admit(row, deadline)?,
            };
            handles.push(handle);
        }
        Ok(handles)
    }

    /// Synchronous convenience: route one row and wait for its prediction.
    pub fn predict(&self, row: Row) -> Result<Prediction, ServeError> {
        self.shards[self.shard_of(row)].predict(row)
    }

    /// Scores `row` with full provenance on its shard (out-of-band, like
    /// [`PredictionServer::predict_explained`]); the label matches what
    /// [`predict`](Self::predict) returns under the same shard epoch.
    pub fn predict_explained(&self, row: Row) -> Result<ExplainedPrediction, ServeError> {
        self.shards[self.shard_of(row)].predict_explained(row)
    }

    /// [`predict_explained`](Self::predict_explained) for a slice of rows:
    /// rows are grouped per shard (one propagation pass per clause per
    /// shard touched) and the explanations reassembled in input order.
    pub fn explain_batch(&self, rows: &[Row]) -> Result<Vec<ExplainedPrediction>, ServeError> {
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<(usize, Row)>> = vec![Vec::new(); n];
        for (i, &row) in rows.iter().enumerate() {
            by_shard[shard_of_row(row, n)].push((i, row));
        }
        let mut out: Vec<Option<ExplainedPrediction>> = (0..rows.len()).map(|_| None).collect();
        for (shard, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard_rows: Vec<Row> = group.iter().map(|&(_, r)| r).collect();
            let explained = self.shards[shard].explain_batch(&shard_rows)?;
            for ((i, _), e) in group.into_iter().zip(explained) {
                out[i] = Some(e);
            }
        }
        Ok(out.into_iter().map(|e| e.expect("every input row explained")).collect())
    }

    /// Validates `batch` once per shard against the shared base and
    /// installs the overlay on **every** shard, so any shard answers any
    /// row against base + all accepted deltas. Validation is
    /// deterministic against the immutable base and the (identical)
    /// per-shard delta history, so the shards accept or reject in
    /// lockstep; the first rejection aborts the broadcast with nothing
    /// installed anywhere.
    pub fn apply_delta(&self, batch: &DeltaBatch) -> Result<DeltaStats, ServeError> {
        let mut stats = None;
        for shard in &self.shards {
            stats = Some(shard.apply_delta(batch)?);
        }
        stats.ok_or_else(|| ServeError::InvalidConfig("router has no shards".into()))
    }

    /// Installs `plan` on every shard at once (each install is the usual
    /// wait-free per-shard swap). Returns the new epoch per shard.
    pub fn install(&self, plan: &CompiledPlan) -> Vec<u64> {
        self.shards.iter().map(|s| s.registry().install(plan.clone())).collect()
    }

    /// Rolls `plan` out shard-by-shard: each shard swaps atomically and
    /// keeps serving; shards not yet reached keep serving the old epoch.
    /// Zero downtime — there is no instant at which any shard is not
    /// serving *some* model. Returns the new epoch per shard, in roll
    /// order; replies issued mid-roll carry whichever epoch scored them.
    pub fn rolling_install(&self, plan: &CompiledPlan) -> Vec<u64> {
        let mut epochs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            epochs.push(shard.registry().install(plan.clone()));
            // Let in-flight batches on the next shard drain naturally;
            // the roll is about staging, not speed.
            std::thread::yield_now();
        }
        epochs
    }

    /// The model epoch each shard currently serves (diverges mid-roll).
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.registry().current_epoch()).collect()
    }

    /// Current per-shard metrics and epochs.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(k, s)| ShardStats {
                    shard: k as u32,
                    snapshot: s.metrics(),
                    epoch: s.registry().current_epoch(),
                })
                .collect(),
        }
    }

    /// The base database the shards share.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The address the router's wire front end bound, when configured.
    pub fn net_addr(&self) -> Option<SocketAddr> {
        self.net.as_ref().map(|n| n.local_addr())
    }

    /// Live wire-front-end counters, when configured.
    pub fn net_metrics(&self) -> Option<Arc<NetMetrics>> {
        self.net.as_ref().map(|n| n.metrics())
    }

    /// The address the router's telemetry endpoint bound, when configured.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry.as_ref().map(|t| t.addr)
    }

    /// Drains and stops every shard (same guarantees as
    /// [`PredictionServer::shutdown`], per shard) and returns the final
    /// per-shard stats. Drain order mirrors the single server: admission
    /// closes everywhere first, the wire front end answers new requests
    /// with 503 while in-flight ones finish, then shards drain, then the
    /// listener and telemetry stop.
    pub fn shutdown(mut self) -> RouterStats {
        self.admission_closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.begin_shutdown();
        }
        if let Some(n) = &self.net {
            n.begin_drain();
        }
        let mut stats = Vec::with_capacity(self.shards.len());
        for (k, shard) in self.shards.drain(..).enumerate() {
            let epoch = shard.registry().current_epoch();
            stats.push(ShardStats { shard: k as u32, snapshot: shard.shutdown(), epoch });
        }
        if let Some(n) = self.net.take() {
            n.shutdown();
        }
        if let Some(mut t) = self.telemetry.take() {
            t.stop();
        }
        RouterStats { shards: stats }
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        if !self.shards.is_empty() {
            self.admission_closed.store(true, Ordering::Release);
            for shard in &self.shards {
                shard.begin_shutdown();
            }
            if let Some(n) = &self.net {
                n.begin_drain();
            }
            // Each shard's own Drop drains and joins its workers.
            self.shards.clear();
        }
        if let Some(n) = self.net.take() {
            n.shutdown();
        }
        if let Some(mut t) = self.telemetry.take() {
            t.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7, 64] {
            for id in 0..1000u32 {
                let s = shard_of_row(Row(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_row(Row(id), shards), "stable for same inputs");
            }
        }
    }

    #[test]
    fn routing_spreads_clustered_ids() {
        // Sequential ids (the common target-relation shape) must not pile
        // onto one shard.
        let shards = 4;
        let mut counts = [0usize; 4];
        for id in 0..10_000u32 {
            counts[shard_of_row(Row(id), shards)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                c > 10_000 / shards / 2 && c < 10_000 / shards * 2,
                "shard {k} got {c} of 10000 rows: routing is badly skewed ({counts:?})"
            );
        }
    }
}
