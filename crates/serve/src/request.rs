//! The unified request-construction surface of the serving API.
//!
//! [`ServeRequest`] replaces the grown-by-accretion trio of entry points
//! (`submit`, `submit_with_deadline`, `predict_within`) with one builder:
//! rows first, then optional knobs, chainable in any order:
//!
//! ```
//! use std::time::Duration;
//! use crossmine_relational::Row;
//! use crossmine_serve::ServeRequest;
//!
//! let req = ServeRequest::new([Row(0), Row(1)])
//!     .deadline(Duration::from_millis(5))
//!     .shard_hint(0);
//! assert_eq!(req.rows(), &[Row(0), Row(1)]);
//! ```
//!
//! The same value drives both serving topologies:
//!
//! * [`PredictionServer::serve`] — a single server; `shard_hint` is
//!   routing advice and a single server *is* its only shard, so the hint
//!   is ignored there.
//! * [`ShardRouter::serve`] — each row is hash-routed to its shard unless
//!   `shard_hint` pins the whole request to one shard (useful for
//!   affinity tests and for callers that already partitioned their rows).
//!
//! Admission stays all-or-nothing per request: the first row the server
//! sheds fails the whole call, and the already-admitted rows are still
//! scored with their replies discarded (counted under `serve.errors`) —
//! exactly the wire front end's batch contract.
//!
//! [`PredictionServer::serve`]: crate::server::PredictionServer::serve
//! [`ShardRouter::serve`]: crate::shard::ShardRouter::serve

use std::time::Duration;

use crossmine_obs::TraceCtx;
use crossmine_relational::Row;

/// A batch of target rows to score, plus how to treat them in flight.
///
/// Construct with [`new`](Self::new) (or [`row`](Self::row) for a single
/// row), then chain the optional knobs. Missing knobs mean: no deadline,
/// a trace born at admission (no-op unless the server has a tracer), and
/// hash routing (no shard pin).
#[derive(Debug, Clone)]
pub struct ServeRequest {
    pub(crate) rows: Vec<Row>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) trace: Option<TraceCtx>,
    pub(crate) shard_hint: Option<usize>,
}

impl ServeRequest {
    /// A request for `rows`, with no deadline, no caller trace, and hash
    /// routing.
    pub fn new(rows: impl Into<Vec<Row>>) -> Self {
        ServeRequest { rows: rows.into(), deadline: None, trace: None, shard_hint: None }
    }

    /// Convenience for the single-row case: `ServeRequest::row(r)` is
    /// `ServeRequest::new([r])`.
    pub fn row(row: Row) -> Self {
        Self::new([row])
    }

    /// Every row must *start scoring* within `deadline` of admission; a
    /// row still queued past it is answered with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
    /// instead of being scored. The clock starts at admission
    /// (`serve(..)`), not at request construction.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Rides the rows under an existing trace context instead of starting
    /// one per row at admission. The caller keeps ownership of completion
    /// (the worker only adds its `serve.queue_wait` / `serve.batch` /
    /// `serve.eval` spans) — the same contract the wire front end uses
    /// for connection-scoped traces.
    pub fn trace(mut self, trace: TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Pins every row of this request to shard `shard` instead of hash
    /// routing row-by-row. Validated against the router's shard count at
    /// serve time; a single [`PredictionServer`] ignores it (it is its
    /// only shard).
    ///
    /// [`PredictionServer`]: crate::server::PredictionServer
    pub fn shard_hint(mut self, shard: usize) -> Self {
        self.shard_hint = Some(shard);
        self
    }

    /// The rows this request will score, in reply order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The relative deadline, when one was set.
    pub fn deadline_within(&self) -> Option<Duration> {
        self.deadline
    }

    /// The shard pin, when one was set.
    pub fn shard_hint_value(&self) -> Option<usize> {
        self.shard_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_in_any_order() {
        let r = ServeRequest::new(vec![Row(3), Row(1)])
            .shard_hint(2)
            .deadline(Duration::from_millis(7));
        assert_eq!(r.rows(), &[Row(3), Row(1)]);
        assert_eq!(r.deadline_within(), Some(Duration::from_millis(7)));
        assert_eq!(r.shard_hint_value(), Some(2));
        assert!(r.trace.is_none());
    }

    #[test]
    fn defaults_are_absent() {
        let r = ServeRequest::row(Row(0));
        assert_eq!(r.rows(), &[Row(0)]);
        assert_eq!(r.deadline_within(), None);
        assert_eq!(r.shard_hint_value(), None);
    }
}
