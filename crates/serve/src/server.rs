//! The in-process concurrent prediction server.
//!
//! Architecture: a **bounded admission queue** (mutex + two condvars:
//! `not_empty` wakes workers, `not_full` back-pressures submitters) feeding
//! a pool of `std::thread` workers. Each worker **micro-batches**: it takes
//! the first waiting request, then keeps draining the queue until either
//! `max_batch` requests are in hand or `max_wait` has elapsed since it
//! started collecting, then scores the whole batch with **one**
//! [`evaluate_batch`] call against **one** [`ModelRegistry`] snapshot. The
//! snapshot-per-batch discipline is what makes hot swaps safe: a batch is
//! never scored under a mix of models, and responses carry the epoch that
//! scored them.
//!
//! Shutdown is drain-based: no request that was accepted by
//! [`PredictionServer::submit`] is ever dropped — workers keep scoring
//! until the queue is empty, then exit.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossmine_obs::ObsHandle;
use crossmine_relational::{ClassLabel, Database, Row};

use crate::eval::{evaluate_batch, ServeScratch};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::ModelRegistry;

/// Tunables of a [`PredictionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads scoring batches.
    pub workers: usize,
    /// Largest batch one worker scores at once.
    pub max_batch: usize,
    /// How long a worker waits for the batch to fill before flushing.
    pub max_wait: Duration,
    /// Admission-queue capacity; submitters block when it is full.
    pub queue_capacity: usize,
    /// Observability handle shared by every worker. The default no-op
    /// handle disables all tracing; an enabled handle adds per-batch
    /// `serve.evaluate_batch` spans, serve counters, and a
    /// `serve.queue_wait_us` histogram of how long requests sat in the
    /// admission queue before their batch started scoring.
    pub obs: ObsHandle,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            obs: ObsHandle::noop(),
        }
    }
}

/// One scored request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The target row that was scored.
    pub row: Row,
    /// Its predicted class.
    pub label: ClassLabel,
    /// Epoch of the model snapshot that scored it.
    pub epoch: u64,
}

struct Request {
    row: Row,
    enqueued: Instant,
    reply: mpsc::Sender<Prediction>,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A concurrent, micro-batching, hot-swappable prediction server over one
/// in-memory [`Database`].
pub struct PredictionServer {
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServeMetrics>,
    config: ServerConfig,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PredictionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionServer")
            .field("workers", &self.workers.len())
            .field("config", &self.config)
            .field("registry", &self.registry)
            .finish()
    }
}

impl PredictionServer {
    /// Starts the worker pool serving `registry`'s current (and future)
    /// models over `db`.
    pub fn start(db: Arc<Database>, registry: Arc<ModelRegistry>, config: ServerConfig) -> Self {
        assert!(config.workers >= 1, "server needs at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let metrics = Arc::new(ServeMetrics::new());
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let db = Arc::clone(&db);
                let config = config.clone();
                std::thread::spawn(move || worker_loop(&shared, &registry, &metrics, &db, &config))
            })
            .collect();
        PredictionServer { shared, registry, metrics, config, workers }
    }

    /// Enqueues one row for scoring, blocking while the queue is full.
    /// Returns the receiver the [`Prediction`] will arrive on.
    ///
    /// # Panics
    ///
    /// Panics when called after [`shutdown`](Self::shutdown) began (the
    /// drain guarantee only covers requests accepted before shutdown).
    pub fn submit(&self, row: Row) -> mpsc::Receiver<Prediction> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock().expect("server queue poisoned");
        while st.queue.len() >= self.config.queue_capacity && !st.shutdown {
            st = self.shared.not_full.wait(st).expect("server queue poisoned");
        }
        assert!(!st.shutdown, "submit after shutdown");
        st.queue.push_back(Request { row, enqueued: Instant::now(), reply: tx });
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.queue_depth.record(st.queue.len() as u64);
        drop(st);
        self.shared.not_empty.notify_one();
        rx
    }

    /// Synchronous convenience: submit and wait for the prediction.
    pub fn predict(&self, row: Row) -> Prediction {
        self.submit(row).recv().expect("worker pool delivered no reply")
    }

    /// The registry this server snapshots from (for hot swaps).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Current metrics, including the registry's swap count.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.registry.swap_count())
    }

    /// Stops accepting requests, drains the queue, joins every worker, and
    /// returns the final metrics. Every request accepted before this call
    /// is scored and answered.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            h.join().expect("server worker panicked");
        }
        self.metrics()
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock().expect("server queue poisoned");
        st.shutdown = true;
        drop(st);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown();
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(
    shared: &Shared,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    db: &Database,
    config: &ServerConfig,
) {
    let mut scratch = ServeScratch::with_obs(config.obs.clone());
    // Cache the histogram handle once per worker so the per-request record
    // is a couple of relaxed atomic adds, never a registry lookup.
    let queue_wait_us = config.obs.histogram("serve.queue_wait_us");
    let mut batch: Vec<Request> = Vec::with_capacity(config.max_batch);
    let mut rows: Vec<Row> = Vec::with_capacity(config.max_batch);
    loop {
        batch.clear();
        rows.clear();
        {
            let mut st = shared.state.lock().expect("server queue poisoned");
            // Wait for the first request (or a fully-drained shutdown).
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.not_empty.wait(st).expect("server queue poisoned");
            }
            // Micro-batch: drain until full, shutdown, or the flush deadline.
            let deadline = Instant::now() + config.max_wait;
            loop {
                while batch.len() < config.max_batch {
                    match st.queue.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                if batch.len() >= config.max_batch || st.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("server queue poisoned");
                st = guard;
                if timeout.timed_out() && st.queue.is_empty() {
                    break;
                }
            }
        }
        shared.not_full.notify_all();

        // One registry snapshot scores the whole batch: no torn reads, and
        // a concurrent install affects only later batches.
        let snap = registry.snapshot();
        if let Some(h) = &queue_wait_us {
            // Queue wait ends here: the batch is collected and about to
            // score; the remaining latency is evaluation + reply delivery.
            for req in &batch {
                h.record(req.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
        }
        rows.extend(batch.iter().map(|r| r.row));
        let labels = evaluate_batch(&snap.plan, db, &rows, &mut scratch);
        metrics.batches.fetch_add(1, Ordering::Relaxed);
        metrics.batch_size.record(batch.len() as u64);
        for (req, label) in batch.drain(..).zip(labels) {
            let latency = req.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            metrics.latency_us.record(latency);
            let sent = req.reply.send(Prediction { row: req.row, label, epoch: snap.epoch });
            if sent.is_err() {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
