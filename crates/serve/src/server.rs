//! The in-process concurrent prediction server, with admission control.
//!
//! Architecture: a **bounded admission queue** (mutex + condvar) feeding a
//! pool of `std::thread` workers. Each worker **micro-batches**: it takes
//! the first waiting request, then keeps draining the queue until either
//! `max_batch` requests are in hand or `max_wait` has elapsed since it
//! started collecting, then scores the whole batch with **one**
//! [`evaluate_batch`] call against **one** [`ModelRegistry`] snapshot. The
//! snapshot-per-batch discipline is what makes hot swaps safe: a batch is
//! never scored under a mix of models, and responses carry the epoch that
//! scored them.
//!
//! Admission control (the fallible-by-design contract):
//!
//! * **Load shedding** — [`PredictionServer::serve`] never blocks. When
//!   the queue is full the request is rejected with
//!   [`ServeError::Overloaded`] and counted (`serve.requests_shed`);
//!   clients retry with backoff (`crossmine-bench::submit_with_retry`).
//! * **Deadlines** — [`ServeRequest::deadline`] carries a per-request
//!   deadline through the queue. Workers check it when they collect a
//!   batch: an expired request is answered with
//!   [`ServeError::DeadlineExceeded`] instead of being scored
//!   (`serve.deadline_exceeded`).
//! * **Worker restarts** — a panic inside the scoring region is caught;
//!   the in-flight batch is answered with [`ServeError::WorkerPanicked`]
//!   and the worker continues with fresh scratch
//!   (`serve.worker_restarts`). A poisoned queue mutex is tolerated the
//!   same way: the queue state is plain data, valid regardless of where a
//!   panic happened.
//! * **Drain-based shutdown** — after [`PredictionServer::shutdown`] new
//!   submissions get [`ServeError::ShuttingDown`], but every request
//!   accepted before is scored (or deadline-expired) and answered.
//!
//! Fault injection ([`ChaosConfig`]) rides the same paths: stalls fill the
//! queue until shedding starts, injected panics exercise the restart path,
//! oversized batches stress the evaluator — all observable through
//! [`MetricsSnapshot`] and the `serve.*` obs counters.
//!
//! **Mutable databases** ride a delta overlay:
//! [`PredictionServer::apply_delta`] validates a
//! [`DeltaBatch`](crossmine_relational::DeltaBatch) against the immutable
//! base snapshot and installs a [`DeltaOverlay`] the workers merge during
//! propagation — no recompile, no copy of the base, and batches already
//! collected keep the overlay (or its absence) they started with.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossmine_net::{NetConfig, NetListener, NetMetrics};
use crossmine_obs::{LockTimer, ObsHandle, Profiler, TraceCtx, Tracer, ROOT_SPAN};
use crossmine_relational::{ClassLabel, Database, DeltaBatch, DeltaOverlay, Row};

use crossmine_core::explain::RowExplanation;

use crate::chaos::{ChaosAction, ChaosConfig};
use crate::error::ServeError;
use crate::eval::{evaluate_batch, evaluate_batch_traced, ServeScratch};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::net::ServeBackend;
use crate::overlay::{evaluate_batch_overlay, evaluate_batch_overlay_traced, OverlayScratch};
use crate::registry::ModelRegistry;
use crate::request::ServeRequest;
use crate::shard::ShardConfig;
use crate::telemetry::{TelemetryHandle, TelemetryShared};

/// The overlay slot the workers read once per batch: `None` until the
/// first [`PredictionServer::apply_delta`], then an [`Arc`] swapped whole
/// so a batch is never scored under a torn delta.
type OverlaySlot = Arc<RwLock<Option<Arc<DeltaOverlay>>>>;

fn read_overlay(slot: &RwLock<Option<Arc<DeltaOverlay>>>) -> Option<Arc<DeltaOverlay>> {
    slot.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Tunables of a [`PredictionServer`] (and, via [`ServerConfig::shard`],
/// of a [`ShardRouter`](crate::shard::ShardRouter)).
///
/// The struct is `#[non_exhaustive]`: outside this crate, construct it
/// with [`ServerConfig::default()`] plus field assignment, or — when
/// validation matters — with the range-checked [`ServerConfig::builder`],
/// which rejects nonsense (zero workers, absurd shard counts) with
/// [`ServeError::InvalidConfig`] instead of letting it reach `start`.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Worker threads scoring batches.
    pub workers: usize,
    /// Largest batch one worker scores at once.
    pub max_batch: usize,
    /// How long a worker waits for the batch to fill before flushing.
    pub max_wait: Duration,
    /// Admission-queue capacity; submissions are shed with
    /// [`ServeError::Overloaded`] when it is full.
    pub queue_capacity: usize,
    /// Observability handle shared by every worker. The default no-op
    /// handle disables all tracing; an enabled handle adds per-batch
    /// `serve.evaluate_batch` spans, serve counters (including
    /// `serve.requests_shed`, `serve.deadline_exceeded`,
    /// `serve.worker_restarts`), and a `serve.queue_wait_us` histogram of
    /// how long requests sat in the admission queue.
    pub obs: ObsHandle,
    /// Fault injection (default: off). See [`ChaosConfig`].
    pub chaos: ChaosConfig,
    /// Address for the live telemetry endpoint (`GET /metrics`,
    /// `/healthz`, `/buildinfo`). `None` (the default) spawns no thread
    /// and binds no socket — telemetry is strictly opt-in and free when
    /// off. Bind to port 0 to let the OS pick; read the actual address
    /// back with [`PredictionServer::telemetry_addr`].
    pub telemetry_addr: Option<SocketAddr>,
    /// The wire front end (`crossmine-net`): one TCP port speaking
    /// HTTP/1.1 (`POST /predict`) and length-prefixed binary frames.
    /// `None` (the default) spawns no poll thread and binds no socket.
    /// Bind `addr` to port 0 to let the OS pick; read the actual address
    /// back with [`PredictionServer::net_addr`].
    pub net: Option<NetConfig>,
    /// Request tracer (default: [`Tracer::noop`], which costs one branch
    /// per request and zero allocations). An enabled tracer gives every
    /// request a causal span tree — wire (`net.sniff`/`net.parse`/
    /// `net.write`) plus `serve.queue_wait`, `serve.batch`, and
    /// `serve.eval` — tail-sampled into a bounded ring readable from
    /// `GET /trace`. The slow-request threshold lives on the tracer's
    /// [`crossmine_obs::TraceConfig`] (`slow_threshold`); build the
    /// tracer with [`Tracer::with_slow_log`] to also get a JSONL
    /// slow-request log. The tracer is shared with the wire front end
    /// unless [`crossmine_net::NetConfig::tracer`] was set explicitly.
    pub tracer: Tracer,
    /// Continuous profiler (default: [`Profiler::noop`], one branch per
    /// call site and zero allocations). An enabled profiler wall-samples
    /// the span stacks of every worker and poll thread into folded-stack
    /// counts (`GET /profile`, `/profile/flamegraph`), attributes
    /// allocations to the innermost active span (`/profile/heap`, when a
    /// [`crossmine_obs::ProfiledAllocator`] is installed), and times the
    /// admission-queue, stats-cache, and registry-swap lock acquisitions
    /// into per-lock wait histograms. Shared with the wire front end
    /// unless [`crossmine_net::NetConfig::profiler`] was set explicitly.
    pub profiler: Profiler,
    /// Sharding (default: one shard, i.e. unsharded). A config with
    /// `shard.shards > 1` starts a [`ShardRouter`](crate::shard::ShardRouter)
    /// — handing it to [`PredictionServer::start`] directly is rejected
    /// with [`ServeError::InvalidConfig`], because a single server cannot
    /// honor a multi-shard contract.
    pub shard: ShardConfig,
    /// Which shard of a router this server is, stamped into `serve.batch`
    /// trace spans and the per-shard telemetry series. `None` for a
    /// standalone server; only the router sets it.
    pub(crate) shard_id: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_capacity: 1024,
            obs: ObsHandle::noop(),
            chaos: ChaosConfig::default(),
            telemetry_addr: None,
            net: None,
            tracer: Tracer::noop(),
            profiler: Profiler::noop(),
            shard: ShardConfig::default(),
            shard_id: None,
        }
    }
}

/// Upper bounds the builder (and `start`) enforce. Generous — they exist
/// to catch unit mistakes (milliseconds where a count was meant), not to
/// police reasonable deployments.
const MAX_WORKERS: usize = 512;
const MAX_BATCH_LIMIT: usize = 1 << 20;
const MAX_QUEUE_CAPACITY: usize = 1 << 24;
/// Largest shard count a [`ShardRouter`](crate::shard::ShardRouter)
/// accepts. Shards are shared-nothing worker pools on one machine; more
/// than this is certainly a misconfiguration.
pub const MAX_SHARDS: usize = 64;

/// Validation shared by [`ServerConfig::builder`] and
/// [`PredictionServer::start`] / `ShardRouter::start` — a config built by
/// hand (struct update in this crate, field assignment outside) gets the
/// same checks at start time that the builder runs at build time.
pub(crate) fn validate_config(config: &ServerConfig) -> Result<(), ServeError> {
    fn range(name: &str, value: usize, max: usize) -> Result<(), ServeError> {
        if value == 0 || value > max {
            return Err(ServeError::InvalidConfig(format!(
                "{name} = {value} out of range: must be in 1..={max}"
            )));
        }
        Ok(())
    }
    range("workers", config.workers, MAX_WORKERS)?;
    range("max_batch", config.max_batch, MAX_BATCH_LIMIT)?;
    range("queue_capacity", config.queue_capacity, MAX_QUEUE_CAPACITY)?;
    range("shard.shards", config.shard.shards, MAX_SHARDS)?;
    Ok(())
}

/// Range-checked construction for [`ServerConfig`], mirroring
/// `CrossMineParams::builder()`: chain setters, then [`build`] validates
/// everything at once and returns [`ServeError::InvalidConfig`] — never a
/// panic — on out-of-range values.
///
/// [`build`]: ServerConfigBuilder::build
///
/// ```
/// use crossmine_serve::{ServerConfig, ServeError};
/// let config = ServerConfig::builder().workers(4).shards(2).build().unwrap();
/// assert_eq!(config.workers, 4);
/// assert_eq!(config.shard.shards, 2);
/// assert!(matches!(
///     ServerConfig::builder().queue_capacity(0).build(),
///     Err(ServeError::InvalidConfig(_))
/// ));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Worker threads scoring batches (per shard, when sharded).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Largest batch one worker scores at once.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// How long a worker waits for the batch to fill before flushing.
    pub fn max_wait(mut self, max_wait: Duration) -> Self {
        self.config.max_wait = max_wait;
        self
    }

    /// Admission-queue capacity (per shard, when sharded).
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.config.queue_capacity = queue_capacity;
        self
    }

    /// Observability handle shared by every worker.
    pub fn obs(mut self, obs: ObsHandle) -> Self {
        self.config.obs = obs;
        self
    }

    /// Fault injection. See [`ChaosConfig`].
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Address for the live telemetry endpoint.
    pub fn telemetry_addr(mut self, addr: SocketAddr) -> Self {
        self.config.telemetry_addr = Some(addr);
        self
    }

    /// The wire front end. See [`ServerConfig::net`].
    pub fn net(mut self, net: NetConfig) -> Self {
        self.config.net = Some(net);
        self
    }

    /// Request tracer. See [`ServerConfig::tracer`].
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.config.tracer = tracer;
        self
    }

    /// Continuous profiler. See [`ServerConfig::profiler`].
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.config.profiler = profiler;
        self
    }

    /// Number of shared-nothing shards
    /// ([`ShardRouter`](crate::shard::ShardRouter)); 1 means unsharded.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shard = ShardConfig { shards };
        self
    }

    /// Validates every field and returns the config.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending field when any
    /// count is zero or above its cap (`workers` ≤ 512, `max_batch` ≤ 2²⁰,
    /// `queue_capacity` ≤ 2²⁴, `shard.shards` ≤ [`MAX_SHARDS`]).
    pub fn build(self) -> Result<ServerConfig, ServeError> {
        validate_config(&self.config)?;
        Ok(self.config)
    }
}

impl ServerConfig {
    /// A range-checked builder starting from [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }
}

/// One scored request with full provenance: which clauses fired, which
/// literals matched along which prop-paths, and what the winning clause's
/// training-time accuracy was. Produced by
/// [`PredictionServer::predict_explained`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedPrediction {
    /// The provenance record; `explanation.label` is the prediction and is
    /// always identical to what [`PredictionServer::predict`] returns for
    /// the same row under the same model.
    pub explanation: RowExplanation,
    /// Epoch of the model snapshot that scored it.
    pub epoch: u64,
}

/// What [`PredictionServer::apply_delta`] installed: the size of the
/// cumulative overlay now live (not just the increment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Rows the overlay adds on top of the base, across all relations.
    pub inserted_rows: usize,
    /// Non-key cells the overlay patches over base rows (after last-write
    /// dedup).
    pub updated_cells: usize,
    /// Operations in the cumulative delta history.
    pub ops: usize,
}

/// One scored request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The target row that was scored.
    pub row: Row,
    /// Its predicted class.
    pub label: ClassLabel,
    /// Epoch of the model snapshot that scored it.
    pub epoch: u64,
}

/// A pending reply to an admitted request.
///
/// Obtained from [`PredictionServer::serve`] (one handle per row, in
/// order). Dropping the handle is allowed: the request is still scored
/// and its reply discarded (counted under `errors` in the metrics).
#[derive(Debug)]
pub struct PredictionHandle {
    row: Row,
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl PredictionHandle {
    /// The row this handle is waiting on.
    pub fn row(&self) -> Row {
        self.row
    }

    /// Blocks until the server answers.
    ///
    /// # Errors
    ///
    /// Whatever degradation the server answered with
    /// ([`ServeError::DeadlineExceeded`], [`ServeError::WorkerPanicked`]).
    /// A severed channel (worker thread died outright) also maps to
    /// [`ServeError::WorkerPanicked`] — the caller cannot tell the
    /// difference and should not have to.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(mpsc::RecvError) => Err(ServeError::WorkerPanicked),
        }
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout`, returning
    /// `None` when no reply arrived in time (the request remains in
    /// flight; the reply is discarded when it eventually arrives).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Prediction, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::WorkerPanicked)),
        }
    }

    /// Nonblocking check: `Some` when the server has answered, `None`
    /// while the request is still in flight. This is what lets the net
    /// poll thread multiplex hundreds of in-flight requests without
    /// ever parking on a channel. A severed channel maps to
    /// [`ServeError::WorkerPanicked`], same as [`wait`](Self::wait).
    pub fn try_wait(&self) -> Option<Result<Prediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerPanicked)),
        }
    }
}

struct Request {
    row: Row,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
    /// The request's trace context (no-op when tracing is off). Wire
    /// requests carry the trace the connection opened; in-process
    /// submissions get one born at admission.
    trace: TraceCtx,
    /// Who finishes the trace. In-process requests complete when the
    /// worker sends the reply; wire requests complete later, when the
    /// connection's reply bytes reach the socket — the worker only adds
    /// its spans.
    complete_in_worker: bool,
}

struct QueueState {
    queue: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    /// Global batch counter driving deterministic chaos schedules.
    chaos_ticks: AtomicU64,
}

/// Locks the queue state, tolerating poison: the state is plain data
/// (a `VecDeque` and a flag), valid no matter where a worker panicked, and
/// the panic itself is handled by the restart path — abandoning the whole
/// server because of a poisoned mutex would turn a survivable fault into
/// an outage.
fn lock_state(shared: &Shared) -> MutexGuard<'_, QueueState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The admission half of the server, split out so the wire front end
/// ([`ServeBackend`]) shares the exact same shedding, metrics, and
/// shutdown behavior as in-process [`PredictionServer::submit`] callers —
/// there is one admission path, not two.
#[derive(Clone)]
pub(crate) struct Admitter {
    shared: Arc<Shared>,
    metrics: Arc<ServeMetrics>,
    obs: ObsHandle,
    tracer: Tracer,
    /// Publishes a `serve.admission` frame while admitting, so wall
    /// samples of the net poll thread attribute time spent here.
    profiler: Profiler,
    /// Times every admission-queue mutex acquisition into the
    /// `serve.queue` wait histogram (no-op when profiling is off).
    queue_timer: LockTimer,
    queue_capacity: usize,
}

impl Admitter {
    /// Enqueues one row; never blocks. See [`PredictionServer::submit`]
    /// for the error contract. In-process path: the trace is born here
    /// and completed by the worker that answers it.
    pub(crate) fn admit(
        &self,
        row: Row,
        deadline: Option<Instant>,
    ) -> Result<PredictionHandle, ServeError> {
        let trace = self.tracer.start(0);
        self.admit_traced(row, deadline, trace, true)
    }

    /// Enqueues one row under an existing trace context. The wire front
    /// end passes the trace the connection opened (with its `net.sniff` /
    /// `net.parse` spans already in place) and keeps ownership of
    /// completion: `complete_in_worker = false` means the worker only
    /// adds its spans, and the trace finishes when the reply's bytes
    /// reach the socket.
    pub(crate) fn admit_traced(
        &self,
        row: Row,
        deadline: Option<Instant>,
        trace: TraceCtx,
        complete_in_worker: bool,
    ) -> Result<PredictionHandle, ServeError> {
        let (tx, rx) = mpsc::channel();
        let _adm = self.profiler.enter("serve.admission");
        let mut st = self.queue_timer.time(|| lock_state(&self.shared));
        if st.shutdown {
            drop(st);
            trace.mark_error();
            if complete_in_worker {
                let _ = trace.complete();
            }
            return Err(ServeError::ShuttingDown);
        }
        if st.queue.len() >= self.queue_capacity {
            let queue_depth = st.queue.len();
            drop(st);
            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
            self.obs.add("serve.requests_shed", 1);
            // Shed requests are exactly the traces tail sampling must keep:
            // mark the error before completing so the ring retains them.
            trace.mark_error();
            if complete_in_worker {
                let _ = trace.complete();
            }
            return Err(ServeError::Overloaded { queue_depth, capacity: self.queue_capacity });
        }
        st.queue.push_back(Request {
            row,
            enqueued: Instant::now(),
            deadline,
            reply: tx,
            trace,
            complete_in_worker,
        });
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        self.metrics.queue_depth.record(st.queue.len() as u64);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(PredictionHandle { row, rx })
    }
}

/// A concurrent, micro-batching, hot-swappable prediction server over one
/// in-memory [`Database`].
pub struct PredictionServer {
    shared: Arc<Shared>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServeMetrics>,
    admitter: Admitter,
    config: ServerConfig,
    workers: Vec<JoinHandle<()>>,
    /// The database workers score against; kept so single-row provenance
    /// ([`predict_explained`](Self::predict_explained)) can evaluate
    /// against the same data the batch path uses.
    db: Arc<Database>,
    /// Mirrors `QueueState::shutdown` for lock-free reads by the telemetry
    /// thread (`/healthz` must not contend on the admission mutex).
    admission_closed: Arc<AtomicBool>,
    /// The delta overlay the workers score against (None = base only).
    overlay: OverlaySlot,
    /// Every delta accepted so far, merged in arrival order; the next
    /// [`apply_delta`](Self::apply_delta) extends and revalidates this so
    /// the installed overlay is always the *cumulative* mutation history
    /// against the immutable base.
    pending_delta: Mutex<DeltaBatch>,
    telemetry: Option<TelemetryHandle>,
    net: Option<NetListener>,
}

impl std::fmt::Debug for PredictionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionServer")
            .field("workers", &self.workers.len())
            .field("config", &self.config)
            .field("registry", &self.registry)
            .finish()
    }
}

impl PredictionServer {
    /// Starts the worker pool serving `registry`'s current (and future)
    /// models over `db`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when any count is out of range (the
    /// same checks [`ServerConfig::builder`] runs), when `shard.shards`
    /// is more than 1 (use [`ShardRouter`](crate::shard::ShardRouter)),
    /// or when `telemetry_addr` is set but cannot be bound.
    pub fn start(
        db: Arc<Database>,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        validate_config(&config)?;
        if config.shard.shards > 1 {
            return Err(ServeError::InvalidConfig(format!(
                "shard.shards = {}: a single PredictionServer is one shard; \
                 use ShardRouter::start for sharded serving",
                config.shard.shards
            )));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutdown: false }),
            not_empty: Condvar::new(),
            chaos_ticks: AtomicU64::new(0),
        });
        let metrics = Arc::new(ServeMetrics::new());
        let admission_closed = Arc::new(AtomicBool::new(false));
        let net_metrics = config.net.as_ref().map(|_| Arc::new(NetMetrics::default()));
        let telemetry = match config.telemetry_addr {
            Some(addr) => {
                let tshared = Arc::new(TelemetryShared {
                    metrics: Arc::clone(&metrics),
                    registry: Arc::clone(&registry),
                    obs: config.obs.clone(),
                    admission_closed: Arc::clone(&admission_closed),
                    started: Instant::now(),
                    stop: AtomicBool::new(false),
                    net_metrics: net_metrics.clone(),
                    tracer: config.tracer.clone(),
                    profiler: config.profiler.clone(),
                    shards: Vec::new(),
                });
                let handle = TelemetryHandle::start(addr, tshared).map_err(|e| {
                    ServeError::InvalidConfig(format!("cannot bind telemetry_addr {addr}: {e}"))
                })?;
                Some(handle)
            }
            None => None,
        };
        let overlay: OverlaySlot = Arc::new(RwLock::new(None));
        // Contention attribution for hot swaps: the registry's history
        // mutex is timed into the `registry.swap` wait histogram. Only an
        // enabled profiler pins the once-settable slot, so a later enabled
        // server on the same registry can still claim it.
        if config.profiler.is_enabled() {
            registry.set_lock_timer(config.profiler.lock_timer("registry.swap"));
        }
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let db = Arc::clone(&db);
                let overlay = Arc::clone(&overlay);
                let config = config.clone();
                std::thread::spawn(move || {
                    worker_loop(&shared, &registry, &metrics, &db, &overlay, &config)
                })
            })
            .collect();
        let admitter = Admitter {
            shared: Arc::clone(&shared),
            metrics: Arc::clone(&metrics),
            obs: config.obs.clone(),
            tracer: config.tracer.clone(),
            profiler: config.profiler.clone(),
            queue_timer: config.profiler.lock_timer("serve.queue"),
            queue_capacity: config.queue_capacity,
        };
        let net = match (&config.net, net_metrics) {
            (Some(net_config), Some(net_metrics)) => {
                let backend = Arc::new(ServeBackend::new(admitter.clone()));
                // The wire front end shares the server's tracer so one
                // trace covers conn-sniff through reply-write; an
                // explicitly-set `NetConfig::tracer` wins.
                let mut net_config = net_config.clone();
                if !net_config.tracer.is_enabled() {
                    net_config.tracer = config.tracer.clone();
                }
                // Same sharing for the profiler: the poll thread publishes
                // its span stack into the server's sampler unless the net
                // config brought its own.
                if !net_config.profiler.is_enabled() {
                    net_config.profiler = config.profiler.clone();
                }
                let listener = NetListener::start(
                    net_config.clone(),
                    backend,
                    config.obs.clone(),
                    net_metrics,
                )
                .map_err(|e| {
                    // Unwind the worker pool: with no server value, Drop
                    // will never run, so close admission here.
                    lock_state(&shared).shutdown = true;
                    shared.not_empty.notify_all();
                    ServeError::InvalidConfig(format!(
                        "cannot bind net addr {}: {e}",
                        net_config.addr
                    ))
                })?;
                Some(listener)
            }
            _ => None,
        };
        Ok(PredictionServer {
            shared,
            registry,
            metrics,
            admitter,
            config,
            workers,
            db,
            admission_closed,
            overlay,
            pending_delta: Mutex::new(DeltaBatch::new()),
            telemetry,
            net,
        })
    }

    /// Admits every row of `req`, in order; never blocks. This is **the**
    /// submission entry point — deadlines, caller-owned traces, and shard
    /// hints all ride the one [`ServeRequest`] builder instead of a
    /// per-combination method. A single server is its only shard, so
    /// [`ServeRequest::shard_hint`] is ignored here (the
    /// [`ShardRouter`](crate::shard::ShardRouter) honors it).
    ///
    /// Admission is all-or-nothing: the first row that cannot be admitted
    /// fails the whole call. Rows admitted before the failure are still
    /// scored and their replies discarded (counted under `serve.errors`) —
    /// the same contract the wire front end's batches get.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Overloaded`] — the queue is full; a row was shed.
    ///   Back off and retry.
    /// * [`ServeError::ShuttingDown`] — [`shutdown`](Self::shutdown) has
    ///   begun.
    pub fn serve(&self, req: ServeRequest) -> Result<Vec<PredictionHandle>, ServeError> {
        let deadline = req.deadline.map(|d| Instant::now() + d);
        let mut handles = Vec::with_capacity(req.rows.len());
        match &req.trace {
            // A caller-owned trace spans all rows; the caller completes it
            // (the workers only add spans), mirroring the wire front end.
            Some(ctx) => {
                for &row in &req.rows {
                    handles.push(self.admitter.admit_traced(row, deadline, ctx.clone(), false)?);
                }
            }
            None => {
                for &row in &req.rows {
                    handles.push(self.admitter.admit(row, deadline)?);
                }
            }
        }
        Ok(handles)
    }

    /// Enqueues one row for scoring without a deadline.
    #[deprecated(since = "0.2.0", note = "use `serve(ServeRequest::row(row))` instead")]
    pub fn submit(&self, row: Row) -> Result<PredictionHandle, ServeError> {
        self.admitter.admit(row, None)
    }

    /// Enqueues one row that must start scoring within `deadline` of now.
    #[deprecated(
        since = "0.2.0",
        note = "use `serve(ServeRequest::row(row).deadline(deadline))` instead"
    )]
    pub fn submit_with_deadline(
        &self,
        row: Row,
        deadline: Duration,
    ) -> Result<PredictionHandle, ServeError> {
        self.admitter.admit(row, Some(Instant::now() + deadline))
    }

    /// Synchronous convenience: admit one row and wait for the prediction.
    ///
    /// # Errors
    ///
    /// Admission errors from [`serve`](Self::serve) plus whatever the
    /// server answered with (see [`PredictionHandle::wait`]).
    pub fn predict(&self, row: Row) -> Result<Prediction, ServeError> {
        self.admitter.admit(row, None)?.wait()
    }

    /// Synchronous convenience with a deadline.
    #[deprecated(
        since = "0.2.0",
        note = "use `serve(ServeRequest::row(row).deadline(deadline))` and wait on the handle"
    )]
    pub fn predict_within(&self, row: Row, deadline: Duration) -> Result<Prediction, ServeError> {
        self.admitter.admit(row, Some(Instant::now() + deadline))?.wait()
    }

    /// Validates `batch` against the base snapshot (merged with every
    /// previously-accepted delta) and atomically installs the resulting
    /// overlay: batches collected after this call score against base +
    /// all deltas, batches already in flight keep what they started with.
    /// No plan recompile, no base copy — overlay rows ride a side-CSR
    /// merged during propagation, and the result is byte-identical to
    /// rebuilding the database with the rows materialized (the overlay
    /// parity suite pins this).
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidDelta`] — validation failed (dangling
    ///   foreign key, duplicate primary key, key-column update, label
    ///   mismatch, ...). Nothing was installed: the workers keep scoring
    ///   against the previous overlay, and the rejected batch is not
    ///   remembered.
    /// * [`ServeError::ShuttingDown`] after
    ///   [`begin_shutdown`](Self::begin_shutdown).
    pub fn apply_delta(&self, batch: &DeltaBatch) -> Result<DeltaStats, ServeError> {
        if self.admission_closed.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // The pending-delta mutex serializes appliers; workers never touch
        // it (they read the RwLock slot once per batch).
        let mut pending = self.pending_delta.lock().unwrap_or_else(PoisonError::into_inner);
        let mut merged = pending.clone();
        merged.extend(batch);
        let overlay = DeltaOverlay::build(&self.db, &merged)
            .map_err(|e| ServeError::InvalidDelta(e.to_string()))?;
        let stats = DeltaStats {
            inserted_rows: overlay.inserted_rows(),
            updated_cells: overlay.updated_cells(),
            ops: merged.len(),
        };
        *pending = merged;
        *self.overlay.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(overlay));
        drop(pending);
        self.config.obs.add("serve.deltas_applied", 1);
        Ok(stats)
    }

    /// Whether a delta overlay is currently installed (i.e.
    /// [`apply_delta`](Self::apply_delta) has succeeded at least once).
    pub fn has_overlay(&self) -> bool {
        self.overlay.read().unwrap_or_else(PoisonError::into_inner).is_some()
    }

    /// Scores `row` with full provenance: the predicted label plus every
    /// clause that fired with its matched literals and prop-paths.
    ///
    /// Runs **out-of-band** on the calling thread against the same model
    /// snapshot and database the workers use — provenance needs one
    /// propagation pass per clause (no early exit once the row is
    /// assigned), so it would bloat batch latency if it rode the queue.
    /// The label is always identical to [`predict`](Self::predict)'s for
    /// the same row under the same model epoch.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] after
    /// [`begin_shutdown`](Self::begin_shutdown).
    ///
    /// # Panics
    ///
    /// Panics when `row` is outside the target relation — the same
    /// caller-wiring contract as the batch evaluator.
    pub fn predict_explained(&self, row: Row) -> Result<ExplainedPrediction, ServeError> {
        Ok(self.explain_batch(&[row])?.pop().expect("one explanation per input row"))
    }

    /// [`predict_explained`](Self::predict_explained) for a whole slice of
    /// rows at once: one propagation pass per clause covers all of them.
    /// Returns one [`ExplainedPrediction`] per input row, in order.
    pub fn explain_batch(&self, rows: &[Row]) -> Result<Vec<ExplainedPrediction>, ServeError> {
        if self.admission_closed.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let snap = self.registry.snapshot();
        // Same overlay discipline as the batch workers: provenance must
        // see exactly the data the predictions were scored against,
        // including rows/patches a delta added.
        let explanations = match read_overlay(&self.overlay) {
            Some(delta) => {
                let mut scratch = OverlayScratch::with_obs(self.config.obs.clone());
                evaluate_batch_overlay_traced(&snap.plan, &self.db, &delta, rows, &mut scratch)
            }
            None => {
                let mut scratch = ServeScratch::with_obs(self.config.obs.clone());
                evaluate_batch_traced(&snap.plan, &self.db, rows, &mut scratch)
            }
        };
        self.config.obs.add("serve.predictions_explained", explanations.len() as u64);
        Ok(explanations
            .into_iter()
            .map(|explanation| ExplainedPrediction { explanation, epoch: snap.epoch })
            .collect())
    }

    /// The registry this server snapshots from (for hot swaps).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The shared admission path, for the shard router's wire backend and
    /// fan-out (one admission path per shard, not per entry point).
    pub(crate) fn admitter(&self) -> &Admitter {
        &self.admitter
    }

    /// The live metrics aggregate, for per-shard telemetry rendering.
    pub(crate) fn metrics_arc(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The shard's profiler handle (noop unless configured), for the
    /// router's in-process routing frame.
    pub(crate) fn profiler(&self) -> &Profiler {
        &self.config.profiler
    }

    /// The address the telemetry endpoint actually bound, when
    /// [`ServerConfig::telemetry_addr`] was set. Useful with port 0.
    pub fn telemetry_addr(&self) -> Option<SocketAddr> {
        self.telemetry.as_ref().map(|t| t.addr)
    }

    /// The address the wire front end actually bound, when
    /// [`ServerConfig::net`] was set. Useful with port 0.
    pub fn net_addr(&self) -> Option<SocketAddr> {
        self.net.as_ref().map(|n| n.local_addr())
    }

    /// Live wire-front-end counters, when [`ServerConfig::net`] was set.
    pub fn net_metrics(&self) -> Option<Arc<NetMetrics>> {
        self.net.as_ref().map(|n| n.metrics())
    }

    /// Current metrics, including the registry's swap count.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.registry.swap_count())
    }

    /// Stops accepting requests, drains the queue, joins every worker, and
    /// returns the final metrics. Every request accepted before this call
    /// is answered — scored, or deadline-expired with a typed error.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.begin_shutdown();
        // Drain order: the wire front end first answers new predict
        // requests with 503 (admission is closed anyway) while its
        // in-flight requests stay live...
        if let Some(n) = &self.net {
            n.begin_drain();
        }
        // ...the workers then drain the queue, answering everything that
        // was admitted (including requests the listener submitted)...
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // ...and only then does the listener stop: every reply is in
        // hand, so the bounded drain just flushes sockets.
        if let Some(n) = self.net.take() {
            n.shutdown();
        }
        // Stop telemetry only after the drain: an external prober watching
        // `/healthz` sees `shutting-down` for the whole drain window
        // instead of a connection refused.
        if let Some(mut t) = self.telemetry.take() {
            t.stop();
        }
        self.metrics()
    }

    /// Stops admission without consuming the server: subsequent
    /// [`submit`](Self::submit) calls get [`ServeError::ShuttingDown`],
    /// while already-admitted requests are still drained and answered.
    /// Call [`shutdown`](Self::shutdown) afterwards (or drop the server)
    /// to join the workers; use this first when other threads still hold
    /// references and must see admission close before the drain completes.
    pub fn begin_shutdown(&self) {
        let mut st = lock_state(&self.shared);
        st.shutdown = true;
        drop(st);
        // Release pairs with the Acquire load in the telemetry thread so a
        // `/healthz` probe after this call reports `shutting-down`.
        self.admission_closed.store(true, Ordering::Release);
        self.shared.not_empty.notify_all();
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown();
            if let Some(n) = &self.net {
                n.begin_drain();
            }
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
        if let Some(n) = self.net.take() {
            n.shutdown();
        }
        if let Some(mut t) = self.telemetry.take() {
            t.stop();
        }
    }
}

fn worker_loop(
    shared: &Shared,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    db: &Database,
    overlay: &RwLock<Option<Arc<DeltaOverlay>>>,
    config: &ServerConfig,
) {
    // Root profile frame held for the thread's whole life: every wall
    // sample of a worker is attributed at least to `serve.worker`, with
    // the wait/batch/eval frames below refining where the time went.
    let _worker_frame = config.profiler.enter("serve.worker");
    let mut scratch = ServeScratch::with_obs(config.obs.clone());
    let mut overlay_scratch = OverlayScratch::with_obs(config.obs.clone());
    // Cache the histogram handle once per worker so the per-request record
    // is a couple of relaxed atomic adds, never a registry lookup.
    let queue_wait_us = config.obs.histogram("serve.queue_wait_us");
    let mut batch: Vec<Request> = Vec::with_capacity(config.max_batch);
    let mut rows: Vec<Row> = Vec::with_capacity(config.max_batch);
    loop {
        batch.clear();
        rows.clear();
        {
            let _wait_frame = config.profiler.enter("serve.wait");
            let mut st = lock_state(shared);
            // Wait for the first request (or a fully-drained shutdown).
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            // Micro-batch: drain until full, shutdown, or the flush deadline.
            let flush_deadline = Instant::now() + config.max_wait;
            loop {
                while batch.len() < config.max_batch {
                    match st.queue.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                if batch.len() >= config.max_batch || st.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= flush_deadline {
                    break;
                }
                let (guard, timeout) = shared
                    .not_empty
                    .wait_timeout(st, flush_deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if timeout.timed_out() && st.queue.is_empty() {
                    break;
                }
            }
        }

        // Expire requests whose deadline passed while they queued: they are
        // answered (drain guarantee) but not scored. `collected` is also
        // where every surviving request's `serve.queue_wait` span ends.
        let collected = Instant::now();
        let now = collected;
        batch.retain(|req| match req.deadline {
            Some(d) if now >= d => {
                metrics.deadline_expired.fetch_add(1, Ordering::Relaxed);
                config.obs.add("serve.deadline_exceeded", 1);
                let waited = now.duration_since(req.enqueued);
                if req.trace.is_active() {
                    req.trace.add_span("serve.queue_wait", ROOT_SPAN, req.enqueued, now);
                }
                req.trace.mark_error();
                if req.complete_in_worker {
                    let _ = req.trace.complete();
                }
                let _ = req.reply.send(Err(ServeError::DeadlineExceeded { waited }));
                false
            }
            _ => true,
        });
        if batch.is_empty() {
            continue;
        }

        // One registry snapshot and one overlay read score the whole
        // batch: no torn reads, and a concurrent install or apply_delta
        // affects only later batches.
        let snap = registry.snapshot();
        let delta = read_overlay(overlay);
        // Queue wait ends here: the batch is collected and about to score;
        // the remaining latency is evaluation + reply delivery. Spans are
        // stamped once per distinct trace: the N rows of one wire batch
        // share the connection's trace and would otherwise each add an
        // identical copy.
        let mut stamped: Vec<&TraceCtx> = Vec::new();
        for req in &batch {
            if let Some(h) = &queue_wait_us {
                h.record(req.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            if req.trace.is_active() && !stamped.iter().any(|t| t.same_trace(&req.trace)) {
                req.trace.add_span("serve.queue_wait", ROOT_SPAN, req.enqueued, collected);
                stamped.push(&req.trace);
            }
        }
        rows.extend(batch.iter().map(|r| r.row));

        let chaos = config
            .chaos
            .is_active()
            .then(|| config.chaos.action(shared.chaos_ticks.fetch_add(1, Ordering::Relaxed)))
            .flatten();
        if let Some(ChaosAction::Stall(d)) = chaos {
            std::thread::sleep(d);
        }
        let oversize = match chaos {
            Some(ChaosAction::Oversize(f)) => f,
            _ => 1,
        };
        if oversize > 1 {
            let n = rows.len();
            for _ in 1..oversize {
                rows.extend_from_within(..n);
            }
        }

        // The scoring region: the one place arbitrary model/data bugs (and
        // injected chaos panics) can fire. A panic here must cost exactly
        // one batch, not the server.
        let _batch_frame = config.profiler.enter("serve.batch");
        let eval_start = Instant::now();
        let eval_frame = config.profiler.enter("serve.eval");
        let scored = catch_unwind(AssertUnwindSafe(|| {
            if let Some(ChaosAction::Panic) = chaos {
                panic!("chaos: injected worker panic");
            }
            match &delta {
                Some(d) => evaluate_batch_overlay(&snap.plan, db, d, &rows, &mut overlay_scratch),
                None => evaluate_batch(&snap.plan, db, &rows, &mut scratch),
            }
        }));
        drop(eval_frame);
        let eval_end = Instant::now();
        match scored {
            Ok(labels) => {
                // `seq` links the N request traces this batch scored: each
                // trace carries its own `serve.batch` span, but they share
                // the sequence number and size.
                let seq = metrics.batches.fetch_add(1, Ordering::Relaxed);
                let size = batch.len() as u64;
                metrics.batch_size.record(size);
                // Same once-per-distinct-trace discipline as queue_wait:
                // one `serve.batch` + `serve.eval` pair per trace per
                // micro-batch (a wire trace split across micro-batches
                // legitimately gets one pair from each).
                let mut stamped: Vec<&TraceCtx> = Vec::new();
                for req in &batch {
                    if req.trace.is_active() && !stamped.iter().any(|t| t.same_trace(&req.trace)) {
                        // Sharded servers stamp their shard id so a trace
                        // read from the router's endpoint says which
                        // shared-nothing pool scored each batch.
                        let bspan = match config.shard_id {
                            Some(sid) => req.trace.add_span_with(
                                "serve.batch",
                                ROOT_SPAN,
                                collected,
                                eval_end,
                                &[
                                    ("seq", seq.into()),
                                    ("size", size.into()),
                                    ("shard", u64::from(sid).into()),
                                ],
                            ),
                            None => req.trace.add_span_with(
                                "serve.batch",
                                ROOT_SPAN,
                                collected,
                                eval_end,
                                &[("seq", seq.into()), ("size", size.into())],
                            ),
                        };
                        req.trace.add_span("serve.eval", bspan, eval_start, eval_end);
                        stamped.push(&req.trace);
                    }
                }
                for (req, label) in batch.drain(..).zip(labels) {
                    let latency =
                        req.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    metrics.latency_us.record(latency);
                    metrics.latency_exemplars.observe(latency, req.trace.id());
                    let sent =
                        req.reply.send(Ok(Prediction { row: req.row, label, epoch: snap.epoch }));
                    if sent.is_err() {
                        metrics.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    if req.complete_in_worker {
                        let _ = req.trace.complete();
                    }
                }
            }
            Err(_panic) => {
                // Restart path: answer the batch with a typed error, drop
                // the possibly-inconsistent scratch, keep serving.
                metrics.worker_restarts.fetch_add(1, Ordering::Relaxed);
                config.obs.add("serve.worker_restarts", 1);
                for req in batch.drain(..) {
                    req.trace.mark_error();
                    if req.complete_in_worker {
                        let _ = req.trace.complete();
                    }
                    let _ = req.reply.send(Err(ServeError::WorkerPanicked));
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
                scratch = ServeScratch::with_obs(config.obs.clone());
                overlay_scratch = OverlayScratch::with_obs(config.obs.clone());
            }
        }
    }
}
