//! Typed serving errors: every way the [`PredictionServer`] degrades
//! instead of crashing.
//!
//! The admission-control state machine behind these variants:
//!
//! ```text
//!           submit()                 queue full          shutdown begun
//!   caller ──────────► [admitted] ◄─────────────┐  ┌──────────────────┐
//!                          │          Overloaded│  │ShuttingDown      │
//!                          ▼ (batched)          │  │                  │
//!                      [collected]──deadline────┼──┼──► DeadlineExceeded
//!                          │        expired     │  │
//!                          ▼ (scored)           │  │
//!                      [answered]     caller ───┴──┴──► typed Err, no panic
//! ```
//!
//! [`PredictionServer`]: crate::server::PredictionServer

use std::time::Duration;

/// Why a request was rejected or abandoned by the prediction server.
///
/// All variants are *degradations*, not bugs: a correctly operating server
/// under overload returns [`Overloaded`](ServeError::Overloaded) rather
/// than blocking, expires stale work with
/// [`DeadlineExceeded`](ServeError::DeadlineExceeded), and survives a
/// scoring panic by answering the batch with
/// [`WorkerPanicked`](ServeError::WorkerPanicked) and restarting the
/// worker loop.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The admission queue was full; the request was shed, not queued.
    /// Clients should back off and retry (see `crossmine-bench`'s
    /// `submit_with_retry`).
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The request sat in the queue past its deadline and was answered
    /// with this error instead of being scored.
    DeadlineExceeded {
        /// How long the request actually waited before expiry was noticed.
        waited: Duration,
    },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The worker scoring this request's batch panicked; the batch was
    /// answered with this error and the worker restarted.
    WorkerPanicked,
    /// The server was started with an invalid [`ServerConfig`]
    /// (zero workers, zero batch size, zero queue capacity, ...).
    ///
    /// [`ServerConfig`]: crate::server::ServerConfig
    InvalidConfig(String),
    /// A [`DeltaBatch`](crossmine_relational::DeltaBatch) handed to
    /// [`apply_delta`](crate::server::PredictionServer::apply_delta) failed
    /// validation (dangling foreign key, duplicate primary key, key-column
    /// update, label mismatch, ...). The delta was rejected atomically: the
    /// overlay the workers score against is unchanged. The payload is the
    /// rendered [`RelationalError`](crossmine_relational::RelationalError).
    InvalidDelta(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth, capacity } => {
                write!(f, "request shed: admission queue full ({queue_depth}/{capacity})")
            }
            ServeError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after {waited:?} in queue")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerPanicked => {
                write!(f, "scoring worker panicked; batch answered with error and worker restarted")
            }
            ServeError::InvalidConfig(reason) => write!(f, "invalid server config: {reason}"),
            ServeError::InvalidDelta(reason) => write!(f, "invalid delta batch: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Whether a client retry (with backoff) can plausibly succeed.
    /// `Overloaded` and `DeadlineExceeded` are transient; `ShuttingDown`,
    /// `InvalidConfig`, and `InvalidDelta` are not (resubmitting the same
    /// bad delta cannot succeed). `WorkerPanicked` is retryable: the
    /// worker restarts and a model swap may have fixed the cause.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::WorkerPanicked
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::Overloaded { queue_depth: 8, capacity: 8 };
        assert_eq!(e.to_string(), "request shed: admission queue full (8/8)");
        assert!(ServeError::ShuttingDown.to_string().contains("shutting down"));
        assert!(ServeError::DeadlineExceeded { waited: Duration::from_millis(5) }
            .to_string()
            .contains("deadline exceeded"));
        assert!(ServeError::InvalidConfig("workers = 0".into()).to_string().contains("workers"));
        assert!(ServeError::InvalidDelta("dangling foreign key".into())
            .to_string()
            .contains("invalid delta batch"));
    }

    #[test]
    fn retryability_matches_transience() {
        assert!(ServeError::Overloaded { queue_depth: 1, capacity: 1 }.is_retryable());
        assert!(ServeError::DeadlineExceeded { waited: Duration::ZERO }.is_retryable());
        assert!(ServeError::WorkerPanicked.is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::InvalidConfig("x".into()).is_retryable());
        assert!(!ServeError::InvalidDelta("x".into()).is_retryable());
    }
}
