//! Compiled-plan prediction over a disk-resident database.
//!
//! [`predict_disk`] runs the same clause-by-clause algorithm as
//! [`evaluate_batch`](crate::eval::evaluate_batch), but every tuple access
//! goes through the [`DiskDatabase`]'s buffer pool: prop-paths use §8.1's
//! [`propagate_disk`] (one sequential scan per side of each edge) and
//! constraints are evaluated with one sequential column scan each, in row
//! order — which keeps floating-point aggregate sums bit-identical to the
//! in-memory evaluator. The result must (and is tested to) agree exactly
//! with in-memory prediction; the buffer pool's hit/miss statistics are the
//! caller's to report via [`DiskDatabase::stats`].

use crossmine_core::idset::{Stamp, TargetSet};
use crossmine_core::literal::{ComplexLiteral, ConstraintKind};
use crossmine_core::propagation::{AggStats, Annotation};
use crossmine_relational::{ClassLabel, Row, Value};
use crossmine_storage::pager::Result;
use crossmine_storage::{propagate_disk, DiskDatabase};

use crate::plan::CompiledPlan;

/// Predicts the class of each of `rows` under `plan`, with all tuple data
/// read through `disk`'s buffer pool. Semantically identical to
/// [`evaluate_batch`](crate::eval::evaluate_batch) on the database the disk
/// image was spilled from.
pub fn predict_disk(
    plan: &CompiledPlan,
    disk: &mut DiskDatabase,
    rows: &[Row],
) -> Result<Vec<ClassLabel>> {
    assert_eq!(
        disk.schema.num_relations(),
        plan.num_relations,
        "disk database does not match the schema this plan was compiled for"
    );
    let target = plan.target;
    let num_targets = disk.num_rows(target);
    let dummy_pos = vec![false; num_targets];
    let mut stamp = Stamp::new(num_targets);

    let mut prediction: Vec<Option<ClassLabel>> = vec![None; rows.len()];
    let mut slot_of: Vec<Option<usize>> = vec![None; num_targets];
    for (i, r) in rows.iter().enumerate() {
        slot_of[r.0 as usize] = Some(i);
    }

    let mut unassigned = TargetSet::from_rows(&dummy_pos, rows.iter().copied());
    for clause in &plan.clauses {
        if unassigned.is_empty() {
            break;
        }
        let mut state = DiskClauseState::new(disk, plan, unassigned.clone(), &dummy_pos);
        for lit in &clause.literals {
            state.apply_literal(disk, lit, &mut stamp)?;
            if state.targets.is_empty() {
                break;
            }
        }
        for r in state.targets.iter() {
            if let Some(slot) = slot_of[r.0 as usize] {
                if prediction[slot].is_none() {
                    prediction[slot] = Some(clause.label);
                }
            }
            unassigned.remove(r.0, &dummy_pos);
        }
    }
    Ok(prediction.into_iter().map(|p| p.unwrap_or(plan.default_label)).collect())
}

/// Disk-side mirror of [`ClauseState`](crossmine_core::propagation::ClauseState):
/// surviving targets plus the annotation of every active relation.
struct DiskClauseState<'a> {
    targets: TargetSet,
    annotations: Vec<Option<Annotation>>,
    is_pos: &'a [bool],
}

impl<'a> DiskClauseState<'a> {
    fn new(
        disk: &DiskDatabase,
        plan: &CompiledPlan,
        initial: TargetSet,
        is_pos: &'a [bool],
    ) -> Self {
        let mut annotations: Vec<Option<Annotation>> =
            (0..disk.schema.num_relations()).map(|_| None).collect();
        annotations[plan.target.0] =
            Some(Annotation::identity(disk.num_rows(plan.target), &initial));
        DiskClauseState { targets: initial, annotations, is_pos }
    }

    fn apply_literal(
        &mut self,
        disk: &mut DiskDatabase,
        lit: &ComplexLiteral,
        stamp: &mut Stamp,
    ) -> Result<()> {
        let mut ann = if lit.path.is_empty() {
            self.annotations[lit.constraint.rel.0]
                .clone()
                .expect("compiled plan guarantees local literals hit active relations")
        } else {
            let from = self.annotations[lit.path[0].from.0]
                .as_ref()
                .expect("compiled plan guarantees paths start from active relations");
            let mut ann = propagate_disk(disk, from, &lit.path[0])?;
            for edge in &lit.path[1..] {
                ann = propagate_disk(disk, &ann, edge)?;
            }
            ann
        };
        constrain_disk(disk, lit, &mut ann, &self.targets, stamp)?;
        self.targets.retain(self.is_pos, |id| stamp.is_marked(id));
        for slot in self.annotations.iter_mut().flatten() {
            slot.restrict_to(&self.targets);
        }
        ann.restrict_to(&self.targets);
        self.annotations[lit.constraint.rel.0] = Some(ann);
        Ok(())
    }
}

/// Applies `lit`'s constraint to `ann` in place, leaving `stamp` marking the
/// target ids that still satisfy the clause — one sequential scan of the
/// constrained column (none for pure counts).
fn constrain_disk(
    disk: &mut DiskDatabase,
    lit: &ComplexLiteral,
    ann: &mut Annotation,
    targets: &TargetSet,
    stamp: &mut Stamp,
) -> Result<()> {
    let rel = lit.constraint.rel;
    match &lit.constraint.kind {
        ConstraintKind::CatEq { attr, value } => {
            let idsets = &mut ann.idsets;
            disk.scan_column(rel, *attr, |row, v| {
                if v != Value::Cat(*value) {
                    idsets[row].clear();
                }
            })?;
            mark_covered(ann, targets, stamp);
        }
        ConstraintKind::Num { attr, op, threshold } => {
            let idsets = &mut ann.idsets;
            disk.scan_column(rel, *attr, |row, v| {
                let keep = matches!(v, Value::Num(x) if op.test(x, *threshold));
                if !keep {
                    idsets[row].clear();
                }
            })?;
            mark_covered(ann, targets, stamp);
        }
        ConstraintKind::Agg { agg, attr, op, threshold } => {
            let mut acc = vec![AggStats::default(); targets.capacity()];
            match attr {
                // The aggregated column is scanned in row order, matching
                // the in-memory accumulation order exactly (float sums are
                // order-sensitive).
                Some(a) => {
                    let idsets = &ann.idsets;
                    disk.scan_column(rel, *a, |row, v| {
                        accumulate(&mut acc, &idsets[row], v.as_num(), targets);
                    })?;
                }
                // Pure count: no column needed, iterate the annotation.
                None => {
                    for set in &ann.idsets {
                        accumulate(&mut acc, set, None, targets);
                    }
                }
            }
            stamp.reset();
            for (id, s) in acc.iter().enumerate() {
                if let Some(v) = s.value(*agg) {
                    if op.test(v, *threshold) {
                        stamp.mark(id as u32);
                    }
                }
            }
        }
    }
    Ok(())
}

fn accumulate(
    acc: &mut [AggStats],
    set: &crossmine_core::idset::IdSet,
    num: Option<f64>,
    targets: &TargetSet,
) {
    if set.is_empty() {
        return;
    }
    for id in set.iter() {
        if !targets.contains(id) {
            continue;
        }
        let s = &mut acc[id as usize];
        s.rows += 1;
        if let Some(x) = num {
            s.num_rows += 1;
            s.sum += x;
        }
    }
}

fn mark_covered(ann: &Annotation, targets: &TargetSet, stamp: &mut Stamp) {
    stamp.reset();
    for set in &ann.idsets {
        for id in set.iter() {
            if targets.contains(id) {
                stamp.mark(id);
            }
        }
    }
}
