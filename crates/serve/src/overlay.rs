//! Delta-overlay evaluation: scoring a [`CompiledPlan`] against a base
//! [`Database`] snapshot plus a validated [`DeltaOverlay`] — **without
//! recompiling the plan or copying the base**.
//!
//! The overlay's appended rows ride a small side-CSR: propagation counts
//! and fills target-ID ranges for base rows through the base's lazy key
//! indexes and for tail rows through the overlay's tail-key map, then
//! sorts + deduplicates each row's range exactly like
//! [`PropagationScratch`](crossmine_core::PropagationScratch). Because
//! that final pass canonicalizes every idset, the merged evaluation is
//! **byte-identical** to materializing the delta
//! ([`Database::apply_delta`]) and running [`evaluate_batch`] — including
//! float summation order inside aggregation literals, which both paths
//! perform in ascending merged-row order. The serve crate's parity tests
//! (`overlay_parity.rs`) pin this equivalence with golden cases and a
//! proptest over random delta batches.
//!
//! The mirroring is deliberate: `ClauseState` and the propagation scratch
//! in `crossmine-core` are hard-wired to `&Database`, and the learner's
//! hot path must not grow an indirection for a serving-only feature. The
//! structures here reuse core's public types ([`Annotation`], [`AnnView`],
//! [`IdSet`], [`TargetSet`], [`Stamp`], [`AggStats`]) and re-implement
//! only the private traversal loops against the merged view.
//!
//! [`evaluate_batch`]: crate::eval::evaluate_batch
//! [`Database::apply_delta`]: crossmine_relational::Database::apply_delta

use crossmine_core::explain::{ClauseFire, LiteralMatch, RowExplanation};
use crossmine_core::idset::{Stamp, TargetSet};
use crossmine_core::literal::{ComplexLiteral, Constraint, ConstraintKind};
use crossmine_core::propagation::{AggStats, AnnView, Annotation, PropStats};
use crossmine_obs::ObsHandle;
use crossmine_relational::{
    AttrId, ClassLabel, Database, DeltaOverlay, JoinEdge, RelId, Row, Value,
};

use crate::plan::{CompiledClause, CompiledPlan};

/// The merged read view: base snapshot + validated overlay. Copyable so
/// the mirrored traversals can pass it by value like `&Database`.
#[derive(Clone, Copy)]
struct OverlayDb<'a> {
    base: &'a Database,
    delta: &'a DeltaOverlay,
}

impl<'a> OverlayDb<'a> {
    #[inline]
    fn num_rows(&self, rel: RelId) -> usize {
        self.delta.num_rows(self.base, rel)
    }

    #[inline]
    fn value(&self, rel: RelId, row: Row, attr: AttrId) -> Value {
        self.delta.value(self.base, rel, row, attr)
    }

    #[inline]
    fn for_each_key_row(&self, rel: RelId, attr: AttrId, key: u64, f: impl FnMut(Row)) {
        self.delta.for_each_key_row(self.base, rel, attr, key, f);
    }
}

/// Mirror of [`PropagationScratch`](crossmine_core::PropagationScratch)
/// over the merged view: the same three CSR passes (count, fill,
/// sort+dedup-compact), with tail rows contributing through the overlay's
/// key map instead of the base index.
#[derive(Debug, Default)]
struct OverlayPropScratch {
    offsets: Vec<u32>,
    ids: Vec<u32>,
    cursors: Vec<u32>,
    stats: PropStats,
}

impl OverlayPropScratch {
    fn propagate_from(&mut self, ov: OverlayDb<'_>, from: AnnView<'_>, edge: &JoinEdge) {
        let to_len = ov.num_rows(edge.to);
        debug_assert_eq!(from.num_rows(), ov.num_rows(edge.from));
        let self_join = edge.from == edge.to && edge.from_attr == edge.to_attr;
        let caps = (self.offsets.capacity(), self.ids.capacity(), self.cursors.capacity());

        // Pass 1: count ids landing on every receiving tuple.
        self.cursors.clear();
        self.cursors.resize(to_len, 0);
        for i in 0..from.num_rows() {
            let set_len = from.ids(i).len() as u32;
            if set_len == 0 {
                continue;
            }
            let key = match ov.value(edge.from, Row(i as u32), edge.from_attr) {
                Value::Key(k) => k,
                _ => continue,
            };
            ov.for_each_key_row(edge.to, edge.to_attr, key, |to_row| {
                if self_join && to_row.0 as usize == i {
                    return;
                }
                self.cursors[to_row.0 as usize] += set_len;
            });
        }

        // Prefix sums: offsets[r] = start of row r's range.
        self.offsets.clear();
        self.offsets.reserve(to_len + 1);
        let mut total = 0u32;
        self.offsets.push(0);
        for r in 0..to_len {
            total += self.cursors[r];
            self.offsets.push(total);
        }

        // Pass 2: fill, reusing `cursors` as per-row write positions.
        self.cursors.copy_from_slice(&self.offsets[..to_len]);
        self.ids.clear();
        self.ids.resize(total as usize, 0);
        for i in 0..from.num_rows() {
            let set = from.ids(i);
            if set.is_empty() {
                continue;
            }
            let key = match ov.value(edge.from, Row(i as u32), edge.from_attr) {
                Value::Key(k) => k,
                _ => continue,
            };
            let (ids, cursors) = (&mut self.ids, &mut self.cursors);
            ov.for_each_key_row(edge.to, edge.to_attr, key, |to_row| {
                let r = to_row.0 as usize;
                if self_join && r == i {
                    return;
                }
                let cur = cursors[r] as usize;
                ids[cur..cur + set.len()].copy_from_slice(set);
                cursors[r] += set.len() as u32;
            });
        }

        // Pass 3: sort + dedup each row's range in place, compacting the
        // flat buffer front-to-back. This canonicalizes every idset, which
        // is what makes base-then-tail join order immaterial.
        let mut write = 0usize;
        let mut read_start = 0usize;
        for r in 0..to_len {
            let read_end = self.offsets[r + 1] as usize;
            self.offsets[r] = write as u32;
            if read_start < read_end {
                self.ids[read_start..read_end].sort_unstable();
                let mut prev = u32::MAX;
                for i in read_start..read_end {
                    let v = self.ids[i];
                    if v != prev || (i == read_start && v == u32::MAX) {
                        self.ids[write] = v;
                        write += 1;
                        prev = v;
                    }
                }
            }
            read_start = read_end;
        }
        self.offsets[to_len] = write as u32;
        self.ids.truncate(write);

        self.stats.passes += 1;
        self.stats.ids_propagated += total as u64;
        if caps == (self.offsets.capacity(), self.ids.capacity(), self.cursors.capacity()) {
            self.stats.capacity_hits += 1;
        }
    }

    fn view(&self) -> AnnView<'_> {
        AnnView::Csr { offsets: &self.offsets, ids: &self.ids }
    }

    fn to_annotation(&self) -> Annotation {
        Annotation::from_csr(&self.offsets, &self.ids)
    }

    fn take_stats(&mut self) -> PropStats {
        std::mem::take(&mut self.stats)
    }
}

/// Mirror of [`PathScratch`](crossmine_core::PathScratch): two overlay
/// scratches ping-ponged across a multi-edge prop-path.
#[derive(Debug, Default)]
struct OverlayPathScratch {
    ping: OverlayPropScratch,
    pong: OverlayPropScratch,
}

impl OverlayPathScratch {
    fn propagate_path(
        &mut self,
        ov: OverlayDb<'_>,
        from: AnnView<'_>,
        edges: &[JoinEdge],
    ) -> Annotation {
        assert!(!edges.is_empty(), "prop-path must have at least one edge");
        debug_assert!(edges.windows(2).all(|w| w[0].to == w[1].from), "path edges must chain");
        self.ping.propagate_from(ov, from, &edges[0]);
        let mut in_ping = true;
        for edge in &edges[1..] {
            if in_ping {
                self.pong.propagate_from(ov, self.ping.view(), edge);
            } else {
                self.ping.propagate_from(ov, self.pong.view(), edge);
            }
            in_ping = !in_ping;
        }
        if in_ping {
            self.ping.to_annotation()
        } else {
            self.pong.to_annotation()
        }
    }

    fn take_stats(&mut self) -> PropStats {
        let mut s = self.ping.take_stats();
        s.merge(self.pong.take_stats());
        s
    }
}

/// Mirror of [`aggregate`](crossmine_core::propagation::aggregate) over
/// the merged view. Iterates merged rows in ascending order — base rows,
/// then tail rows — so float summation order matches the materialized
/// merge bit for bit.
fn overlay_aggregate(
    ov: OverlayDb<'_>,
    rel: RelId,
    attr: Option<AttrId>,
    ann: &Annotation,
    targets: &TargetSet,
) -> Vec<AggStats> {
    let mut acc = vec![AggStats::default(); targets.capacity()];
    for (i, set) in ann.idsets.iter().enumerate() {
        if set.is_empty() {
            continue;
        }
        let num = attr.and_then(|a| ov.value(rel, Row(i as u32), a).as_num());
        for id in set.iter() {
            if !targets.contains(id) {
                continue;
            }
            let s = &mut acc[id as usize];
            s.rows += 1;
            if let Some(x) = num {
                s.num_rows += 1;
                s.sum += x;
            }
        }
    }
    acc
}

/// Mirror of core's private `constrain` over the merged view.
fn overlay_constrain<'s>(
    ov: OverlayDb<'_>,
    constraint: &Constraint,
    ann: &mut Annotation,
    targets: &TargetSet,
    stamp: &'s mut Stamp,
) -> &'s Stamp {
    match &constraint.kind {
        ConstraintKind::CatEq { attr, value } => {
            for (i, set) in ann.idsets.iter_mut().enumerate() {
                if ov.value(constraint.rel, Row(i as u32), *attr) != Value::Cat(*value) {
                    set.clear();
                }
            }
            overlay_mark_covered(ann, targets, stamp)
        }
        ConstraintKind::Num { attr, op, threshold } => {
            for (i, set) in ann.idsets.iter_mut().enumerate() {
                let v = ov.value(constraint.rel, Row(i as u32), *attr);
                let keep = matches!(v, Value::Num(x) if op.test(x, *threshold));
                if !keep {
                    set.clear();
                }
            }
            overlay_mark_covered(ann, targets, stamp)
        }
        ConstraintKind::Agg { agg, attr, op, threshold } => {
            let stats = overlay_aggregate(ov, constraint.rel, *attr, ann, targets);
            stamp.reset();
            for (id, s) in stats.iter().enumerate() {
                if let Some(v) = s.value(*agg) {
                    if op.test(v, *threshold) {
                        stamp.mark(id as u32);
                    }
                }
            }
            stamp
        }
    }
}

fn overlay_mark_covered<'s>(
    ann: &Annotation,
    targets: &TargetSet,
    stamp: &'s mut Stamp,
) -> &'s Stamp {
    stamp.reset();
    for set in &ann.idsets {
        for id in set.iter() {
            if targets.contains(id) {
                stamp.mark(id);
            }
        }
    }
    stamp
}

/// Mirror of [`ClauseState`](crossmine_core::propagation::ClauseState)
/// over the merged view (without the learner's count-store bookkeeping,
/// which serving never consults).
struct OverlayClauseState<'a> {
    ov: OverlayDb<'a>,
    targets: TargetSet,
    annotations: Vec<Option<Annotation>>,
    is_pos: &'a [bool],
}

impl<'a> OverlayClauseState<'a> {
    fn new(ov: OverlayDb<'a>, is_pos: &'a [bool], initial: TargetSet) -> Self {
        let target_rel = ov.base.target().expect("database must have a target relation");
        let num_relations = ov.base.schema.num_relations();
        let mut annotations: Vec<Option<Annotation>> = (0..num_relations).map(|_| None).collect();
        annotations[target_rel.0] = Some(Annotation::identity(ov.num_rows(target_rel), &initial));
        OverlayClauseState { ov, targets: initial, annotations, is_pos }
    }

    fn apply_literal_scratch(
        &mut self,
        lit: &ComplexLiteral,
        stamp: &mut Stamp,
        path: &mut OverlayPathScratch,
    ) {
        let ann = if lit.path.is_empty() {
            self.annotations[lit.constraint.rel.0]
                .clone()
                .expect("local literal on an inactive relation")
        } else {
            let from = self.annotations[lit.path[0].from.0]
                .as_ref()
                .expect("propagation must start from an active relation");
            path.propagate_path(self.ov, from.view(), &lit.path)
        };
        self.finish_literal(lit, ann, stamp);
    }

    fn finish_literal(&mut self, lit: &ComplexLiteral, mut ann: Annotation, stamp: &mut Stamp) {
        let surviving = overlay_constrain(self.ov, &lit.constraint, &mut ann, &self.targets, stamp);
        self.targets.retain(self.is_pos, |id| surviving.is_marked(id));
        for slot in self.annotations.iter_mut().flatten() {
            slot.restrict_to(&self.targets);
        }
        ann.restrict_to(&self.targets);
        self.annotations[lit.constraint.rel.0] = Some(ann);
    }
}

/// Per-worker reusable state for [`evaluate_batch_overlay`]: the overlay
/// twin of [`ServeScratch`](crate::eval::ServeScratch). Buffers re-size
/// only when the merged target cardinality changes (a new overlay landed).
#[derive(Debug, Default)]
pub struct OverlayScratch {
    dummy_pos: Vec<bool>,
    stamp: Option<Stamp>,
    label_of: Vec<Option<ClassLabel>>,
    path: OverlayPathScratch,
    obs: ObsHandle,
}

impl OverlayScratch {
    /// An empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch reporting spans, counters, and propagation stats through
    /// `obs`. The default (no-op) handle makes every hook free.
    pub fn with_obs(obs: ObsHandle) -> Self {
        OverlayScratch { obs, ..Default::default() }
    }

    fn ensure(&mut self, num_targets: usize) {
        if self.dummy_pos.len() != num_targets {
            self.dummy_pos = vec![false; num_targets];
            self.stamp = Some(Stamp::new(num_targets));
            self.label_of = vec![None; num_targets];
        }
    }
}

fn check_plan(plan: &CompiledPlan, base: &Database, delta: &DeltaOverlay) {
    assert_eq!(
        base.schema.num_relations(),
        plan.num_relations,
        "database does not match the schema this plan was compiled for"
    );
    assert_eq!(base.target(), Ok(plan.target), "database target differs from the plan's");
    assert!(delta.matches(base), "delta overlay was not built against this database snapshot");
}

/// [`evaluate_batch`](crate::eval::evaluate_batch) against base + overlay:
/// predicts the class of each of `rows` (merged target row ids — overlay
/// tail rows are addressable past the base length) under `plan` without
/// recompiling or materializing. Byte-identical to applying the delta and
/// calling `evaluate_batch` on the merged database.
///
/// # Panics
///
/// Panics when `base` does not match the plan's schema, when `delta` was
/// built against a different snapshot, or when a row id is outside the
/// merged target range — caller wiring errors, never data-dependent.
pub fn evaluate_batch_overlay(
    plan: &CompiledPlan,
    base: &Database,
    delta: &DeltaOverlay,
    rows: &[Row],
    scratch: &mut OverlayScratch,
) -> Vec<ClassLabel> {
    check_plan(plan, base, delta);
    let ov = OverlayDb { base, delta };
    let num_targets = delta.num_targets(base);
    scratch.ensure(num_targets);
    let obs = scratch.obs.clone();
    let _batch = obs.span("serve.evaluate_batch_overlay");
    let OverlayScratch { dummy_pos, stamp, label_of, path, .. } = scratch;
    let stamp = stamp.as_mut().expect("ensure() populated the stamp");

    let mut unassigned = TargetSet::from_rows(dummy_pos, rows.iter().copied());
    let mut clauses_evaluated = 0u64;
    for clause in &plan.clauses {
        if unassigned.is_empty() {
            break;
        }
        clauses_evaluated += 1;
        let mut state = OverlayClauseState::new(ov, dummy_pos, unassigned.clone());
        for lit in &clause.literals {
            state.apply_literal_scratch(lit, stamp, path);
            if state.targets.is_empty() {
                break;
            }
        }
        for r in state.targets.iter() {
            let slot = &mut label_of[r.0 as usize];
            if slot.is_none() {
                *slot = Some(clause.label);
            }
            unassigned.remove(r.0, dummy_pos);
        }
    }
    if obs.is_enabled() {
        obs.add("serve.rows_scored", rows.len() as u64);
        obs.add("serve.clauses_evaluated", clauses_evaluated);
        let stats = path.take_stats();
        obs.add("propagation.passes", stats.passes);
        obs.add("propagation.ids_propagated", stats.ids_propagated);
        obs.add("propagation.csr_capacity_hits", stats.capacity_hits);
    }

    let out = rows.iter().map(|r| label_of[r.0 as usize].unwrap_or(plan.default_label)).collect();
    for r in rows {
        label_of[r.0 as usize] = None;
    }
    out
}

fn compiled_clause_fire(db: &Database, index: usize, clause: &CompiledClause) -> ClauseFire {
    ClauseFire {
        clause_index: index,
        label: clause.label,
        accuracy: clause.accuracy,
        literals: clause
            .literals
            .iter()
            .map(|lit| LiteralMatch { literal: lit.display(&db.schema), path_len: lit.path.len() })
            .collect(),
    }
}

/// [`evaluate_batch_traced`](crate::eval::evaluate_batch_traced) against
/// base + overlay: full per-row provenance over the merged view. Labels
/// and fired clauses are byte-identical to tracing the materialized merge.
///
/// # Panics
///
/// Same wiring-error panics as [`evaluate_batch_overlay`].
pub fn evaluate_batch_overlay_traced(
    plan: &CompiledPlan,
    base: &Database,
    delta: &DeltaOverlay,
    rows: &[Row],
    scratch: &mut OverlayScratch,
) -> Vec<RowExplanation> {
    check_plan(plan, base, delta);
    let ov = OverlayDb { base, delta };
    let num_targets = delta.num_targets(base);
    scratch.ensure(num_targets);
    let obs = scratch.obs.clone();
    let _batch = obs.span("serve.evaluate_batch_overlay_traced");
    let OverlayScratch { dummy_pos, stamp, path, .. } = scratch;
    let stamp = stamp.as_mut().expect("ensure() populated the stamp");

    let mut fired_of: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
    for (ci, clause) in plan.clauses.iter().enumerate() {
        let initial = TargetSet::from_rows(dummy_pos, rows.iter().copied());
        let mut state = OverlayClauseState::new(ov, dummy_pos, initial);
        for lit in &clause.literals {
            if state.targets.is_empty() {
                break;
            }
            state.apply_literal_scratch(lit, stamp, path);
        }
        for r in state.targets.iter() {
            for (slot, row) in rows.iter().enumerate() {
                if *row == r {
                    fired_of[slot].push(ci);
                }
            }
        }
    }
    if obs.is_enabled() {
        obs.add("serve.rows_explained", rows.len() as u64);
        let stats = path.take_stats();
        obs.add("propagation.passes", stats.passes);
        obs.add("propagation.ids_propagated", stats.ids_propagated);
        obs.add("propagation.csr_capacity_hits", stats.capacity_hits);
    }

    rows.iter()
        .zip(fired_of)
        .map(|(&row, fired_idx)| {
            let fired: Vec<ClauseFire> = fired_idx
                .iter()
                .map(|&ci| compiled_clause_fire(base, ci, &plan.clauses[ci]))
                .collect();
            let label = fired.first().map_or(plan.default_label, |f| f.label);
            RowExplanation { row, label, default_used: fired.is_empty(), fired }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_batch, ServeScratch};
    use crossmine_core::CrossMine;
    use crossmine_relational::fixtures::fig2_loan_account;
    use crossmine_relational::DeltaBatch;

    fn plan_for(db: &Database) -> CompiledPlan {
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = CrossMine::default().fit(db, &rows).unwrap();
        CompiledPlan::compile(&model, &db.schema).unwrap()
    }

    fn fig2_delta(db: &Database) -> DeltaBatch {
        let loan = db.schema.rel_id("Loan").unwrap();
        let account = db.schema.rel_id("Account").unwrap();
        let mut batch = DeltaBatch::new();
        // A new account, two new loans on it (one referencing the fresh
        // account — the same-batch FK case), and a patched amount.
        batch.insert(account, vec![Value::Key(500), Value::Cat(0), Value::Num(990101.0)]);
        batch.insert_labeled(
            loan,
            vec![
                Value::Key(6),
                Value::Key(500),
                Value::Num(800.0),
                Value::Num(12.0),
                Value::Num(70.0),
            ],
            crossmine_relational::ClassLabel::POS,
        );
        batch.insert_labeled(
            loan,
            vec![
                Value::Key(7),
                Value::Key(45),
                Value::Num(9500.0),
                Value::Num(24.0),
                Value::Num(480.0),
            ],
            crossmine_relational::ClassLabel::NEG,
        );
        batch.update(loan, Row(0), AttrId(2), Value::Num(1500.0));
        batch
    }

    #[test]
    fn overlay_matches_materialized_merge_golden() {
        let base = fig2_loan_account();
        let plan = plan_for(&base);
        let batch = fig2_delta(&base);
        let delta = DeltaOverlay::build(&base, &batch).unwrap();

        let mut merged = base.clone();
        merged.apply_delta(&batch).unwrap();
        let rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();

        let mut mscratch = ServeScratch::new();
        let expected = evaluate_batch(&plan, &merged, &rows, &mut mscratch);
        let mut oscratch = OverlayScratch::new();
        let got = evaluate_batch_overlay(&plan, &base, &delta, &rows, &mut oscratch);
        assert_eq!(got, expected);

        // Scratch reuse across batches stays correct.
        let again = evaluate_batch_overlay(&plan, &base, &delta, &rows, &mut oscratch);
        assert_eq!(again, expected);
    }

    #[test]
    fn overlay_traced_matches_materialized_merge() {
        let base = fig2_loan_account();
        let plan = plan_for(&base);
        let batch = fig2_delta(&base);
        let delta = DeltaOverlay::build(&base, &batch).unwrap();

        let mut merged = base.clone();
        merged.apply_delta(&batch).unwrap();
        let rows: Vec<Row> = (0..merged.num_targets() as u32).map(Row).collect();

        let mut mscratch = ServeScratch::new();
        let expected = crate::eval::evaluate_batch_traced(&plan, &merged, &rows, &mut mscratch);
        let mut oscratch = OverlayScratch::new();
        let got = evaluate_batch_overlay_traced(&plan, &base, &delta, &rows, &mut oscratch);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.row, e.row);
            assert_eq!(g.label, e.label);
            assert_eq!(g.default_used, e.default_used);
            assert_eq!(g.fired.len(), e.fired.len());
            for (gf, ef) in g.fired.iter().zip(&e.fired) {
                assert_eq!(gf.clause_index, ef.clause_index);
                assert_eq!(gf.label, ef.label);
            }
        }
    }

    #[test]
    fn empty_overlay_matches_plain_eval() {
        let base = fig2_loan_account();
        let plan = plan_for(&base);
        let delta = DeltaOverlay::build(&base, &DeltaBatch::new()).unwrap();
        let rows: Vec<Row> = (0..base.num_targets() as u32).map(Row).collect();
        let mut mscratch = ServeScratch::new();
        let expected = evaluate_batch(&plan, &base, &rows, &mut mscratch);
        let mut oscratch = OverlayScratch::new();
        let got = evaluate_batch_overlay(&plan, &base, &delta, &rows, &mut oscratch);
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "delta overlay was not built against this database snapshot")]
    fn stale_overlay_panics() {
        let mut base = fig2_loan_account();
        let plan = plan_for(&base);
        let delta = DeltaOverlay::build(&base, &DeltaBatch::new()).unwrap();
        // Mutate the base after the overlay was validated against it.
        let loan = base.schema.rel_id("Loan").unwrap();
        base.set_value(loan, Row(0), AttrId(2), Value::Num(1.0));
        let mut scratch = OverlayScratch::new();
        let _ = evaluate_batch_overlay(&plan, &base, &delta, &[Row(0)], &mut scratch);
    }
}
