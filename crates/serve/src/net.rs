//! The bridge between the wire front end (`crossmine-net`) and the
//! prediction server: implements [`Backend`] on top of the shared
//! admission path, and pins the `ServeError` → wire-status mapping.
//!
//! The mapping contract (tested below, row by row):
//!
//! | `ServeError`           | wire status | `Retry-After`? |
//! |------------------------|-------------|----------------|
//! | `Overloaded`           | 429         | yes            |
//! | `DeadlineExceeded`     | 504         | yes            |
//! | `WorkerPanicked`       | 500         | yes            |
//! | `ShuttingDown`         | 503         | no             |
//! | `InvalidConfig`        | 500         | no             |
//! | `InvalidDelta`         | 400         | no             |
//!
//! The invariant the table encodes: **a retry hint is present exactly
//! when [`ServeError::is_retryable`] is true**. Malformed requests never
//! reach this layer — the net crate answers those with `400` itself.

use std::time::Duration;

use crossmine_net::{Backend, BatchReply, WireReject, WireStatus};
use crossmine_obs::TraceCtx;
use crossmine_relational::Row;

use crate::error::ServeError;
use crate::server::{Admitter, Prediction, PredictionHandle};

/// Maps a serve-side failure onto the status both wire protocols answer
/// with. Total: every variant has exactly one row.
pub fn wire_status_for(e: &ServeError) -> WireStatus {
    match e {
        ServeError::Overloaded { .. } => WireStatus::overloaded(),
        ServeError::DeadlineExceeded { .. } => WireStatus::deadline_exceeded(),
        ServeError::WorkerPanicked => WireStatus::internal_retryable(),
        ServeError::ShuttingDown => WireStatus::shutting_down(),
        ServeError::InvalidConfig(_) => WireStatus::internal(),
        // A rejected delta is the caller's data being wrong, not the
        // server degrading: it maps to the same non-retryable 400 the net
        // layer uses for malformed requests.
        ServeError::InvalidDelta(_) => WireStatus::bad_request(),
    }
}

pub(crate) fn reject_for(e: &ServeError) -> WireReject {
    WireReject::new(wire_status_for(e), e.to_string())
}

/// One slot of an in-flight wire batch.
enum PendingSlot {
    Waiting(PredictionHandle),
    Ready(Prediction),
    Failed(ServeError),
}

/// An in-flight wire batch: one admission handle per row, resolved
/// incrementally by the poll thread.
pub struct ServePending {
    slots: Vec<PendingSlot>,
}

impl ServePending {
    /// A pending batch from already-admitted handles, in request order.
    /// Shared by [`ServeBackend`] and the shard router's backend, which
    /// admit through different paths but resolve identically.
    pub(crate) fn from_handles(handles: Vec<PredictionHandle>) -> Self {
        ServePending { slots: handles.into_iter().map(PendingSlot::Waiting).collect() }
    }
}

/// Drains whatever replies have arrived; `Some` once every row is
/// resolved. A batch with any failed row answers with the first failure
/// (request order), matching the all-or-nothing submit. This is the one
/// copy of the resolution state machine — both wire backends (single
/// server and shard router) call it.
pub(crate) fn poll_pending(pending: &mut ServePending) -> Option<Result<BatchReply, WireReject>> {
    let slots = &mut pending.slots;
    let mut all_done = true;
    for slot in slots.iter_mut() {
        if let PendingSlot::Waiting(handle) = slot {
            match handle.try_wait() {
                Some(Ok(p)) => *slot = PendingSlot::Ready(p),
                Some(Err(e)) => *slot = PendingSlot::Failed(e),
                None => all_done = false,
            }
        }
    }
    if !all_done {
        return None;
    }
    let mut labels = Vec::with_capacity(slots.len());
    let mut epoch = 0u64;
    for slot in slots.iter() {
        match slot {
            PendingSlot::Ready(p) => {
                labels.push(p.label.0);
                // Rows of one wire batch can straddle a hot swap when
                // they land in different worker micro-batches; report
                // the newest epoch involved.
                epoch = epoch.max(p.epoch);
            }
            PendingSlot::Failed(e) => return Some(Err(reject_for(e))),
            PendingSlot::Waiting(_) => return None,
        }
    }
    Some(Ok(BatchReply { epoch, labels }))
}

/// [`Backend`] over the server's admission queue. Rows of one wire batch
/// are admitted individually — they share the queue, the shedding
/// policy, and the deadline clock with every in-process submitter.
pub struct ServeBackend {
    admitter: Admitter,
}

impl ServeBackend {
    /// Wraps the server's admission path.
    pub(crate) fn new(admitter: Admitter) -> Self {
        ServeBackend { admitter }
    }
}

impl Backend for ServeBackend {
    type Pending = ServePending;

    /// Admits every row of the batch, all-or-nothing: on the first
    /// rejection the already-admitted handles are dropped (the workers
    /// still score them; the replies are discarded and counted under
    /// `serve.errors`) and the whole batch is answered with the
    /// rejection's wire status. Each row rides under the connection's
    /// trace context; the connection completes the trace when the reply
    /// bytes reach the socket, so the workers only add their spans
    /// (`complete_in_worker = false`).
    fn submit(
        &self,
        rows: &[Row],
        deadline: Option<Duration>,
        trace: &TraceCtx,
    ) -> Result<ServePending, WireReject> {
        let deadline = deadline.map(|d| std::time::Instant::now() + d);
        let mut slots = Vec::with_capacity(rows.len());
        for &row in rows {
            match self.admitter.admit_traced(row, deadline, trace.clone(), false) {
                Ok(handle) => slots.push(PendingSlot::Waiting(handle)),
                Err(e) => return Err(reject_for(&e)),
            }
        }
        Ok(ServePending { slots })
    }

    /// Resolution is shared with the shard router: see [`poll_pending`].
    fn poll(&self, pending: &mut ServePending) -> Option<Result<BatchReply, WireReject>> {
        poll_pending(pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The satellite contract: every `ServeError` variant maps to the
    /// pinned wire status, and `Retry-After` presence tracks
    /// `is_retryable` exactly.
    #[test]
    fn serve_error_wire_mapping_table() {
        let table: Vec<(ServeError, u16, bool)> = vec![
            (ServeError::Overloaded { queue_depth: 10, capacity: 10 }, 429, true),
            (ServeError::DeadlineExceeded { waited: Duration::from_millis(5) }, 504, true),
            (ServeError::WorkerPanicked, 500, true),
            (ServeError::ShuttingDown, 503, false),
            (ServeError::InvalidConfig("bad".into()), 500, false),
            (ServeError::InvalidDelta("dangling fk".into()), 400, false),
        ];
        for (err, code, retryable) in table {
            let status = wire_status_for(&err);
            assert_eq!(status.code, code, "{err:?}");
            assert_eq!(
                err.is_retryable(),
                retryable,
                "table out of sync with ServeError::is_retryable for {err:?}"
            );
            assert_eq!(
                status.retry_after.is_some(),
                err.is_retryable(),
                "Retry-After presence must track is_retryable for {err:?}"
            );
        }
    }

    /// Malformed input is the net layer's 400 — assert the status shape
    /// it uses is not retryable, completing the 429/503/504/400 set.
    #[test]
    fn bad_request_is_not_retryable() {
        let s = WireStatus::bad_request();
        assert_eq!(s.code, 400);
        assert!(s.retry_after.is_none());
    }
}
