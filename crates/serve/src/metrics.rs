//! Serving metrics: atomic counters plus fixed-bucket log₂ histograms.
//!
//! Everything is updated with relaxed atomics on the hot path — a worker
//! never takes a lock to record a latency — and read with a consistent-ish
//! [`MetricsSnapshot`] whose [`Display`](std::fmt::Display) is the text
//! report `loadgen` prints. Quantiles come from a 40-bucket power-of-two
//! histogram: `quantile(q)` returns the upper bound of the bucket holding
//! the q-th ranked sample, i.e. an over-estimate by at most 2×, which is
//! the standard fidelity/footprint trade for serving dashboards.
//!
//! The histogram itself (along with counters and gauges) now lives in
//! `crossmine-obs`, where the learner shares it; this module re-exports it
//! so existing serve callers keep compiling, and keeps the serve-specific
//! [`ServeMetrics`] aggregate and its report format unchanged.

use std::sync::atomic::{AtomicU64, Ordering};

use crossmine_obs::Exemplars;

pub use crossmine_obs::metrics::{bucket_of, bucket_upper_bound, Histogram, NUM_BUCKETS};

/// All serving metrics, shared by every worker of one server.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted to the queue.
    pub requests: AtomicU64,
    /// Replies that could not be delivered (caller dropped its receiver).
    pub errors: AtomicU64,
    /// Batches scored.
    pub batches: AtomicU64,
    /// Requests shed at admission (queue full).
    pub shed: AtomicU64,
    /// Requests answered with `DeadlineExceeded` instead of being scored.
    pub deadline_expired: AtomicU64,
    /// Worker restarts after a caught scoring panic.
    pub worker_restarts: AtomicU64,
    /// End-to-end request latency (enqueue → reply), microseconds.
    pub latency_us: Histogram,
    /// Most recent `TraceId` per `latency_us` bucket: the join between
    /// the latency histogram and the trace ring, so a p99 bucket on a
    /// dashboard resolves to one retrievable trace via `/trace`.
    pub latency_exemplars: Exemplars,
    /// Scored batch sizes.
    pub batch_size: Histogram,
    /// Queue depth observed at each admission.
    pub queue_depth: Histogram,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time snapshot (counters are read relaxed; per-field skew
    /// of a few in-flight requests is acceptable for reporting).
    pub fn snapshot(&self, swaps: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            latency_p50_us: self.latency_us.quantile(0.50),
            latency_p95_us: self.latency_us.quantile(0.95),
            latency_p99_us: self.latency_us.quantile(0.99),
            latency_max_us: self.latency_us.max(),
            mean_batch: self.batch_size.mean(),
            max_batch: self.batch_size.max(),
            batch_buckets: self.batch_size.nonempty_buckets(),
            max_queue_depth: self.queue_depth.max(),
            swaps,
        }
    }
}

/// A rendered view of [`ServeMetrics`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted.
    pub requests: u64,
    /// Undeliverable replies.
    pub errors: u64,
    /// Batches scored.
    pub batches: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests answered with `DeadlineExceeded`.
    pub deadline_expired: u64,
    /// Worker restarts after caught scoring panics.
    pub worker_restarts: u64,
    /// Median end-to-end latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 95th-percentile latency (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency (µs).
    pub latency_p99_us: u64,
    /// Worst observed latency (µs, exact).
    pub latency_max_us: u64,
    /// Mean batch size.
    pub mean_batch: f64,
    /// Largest batch scored.
    pub max_batch: u64,
    /// Batch-size distribution as `(bucket upper bound, count)`.
    pub batch_buckets: Vec<(u64, u64)>,
    /// Deepest queue observed at admission.
    pub max_queue_depth: u64,
    /// Model hot-swaps performed.
    pub swaps: u64,
}

impl MetricsSnapshot {
    /// The delta between this snapshot and an `earlier` one of the same
    /// server — what happened *between* the two scrapes.
    ///
    /// Monotonic counters (`requests`, `errors`, `batches`, `shed`,
    /// `deadline_expired`, `worker_restarts`, `swaps`) and the batch-size
    /// bucket counts are subtracted (saturating, so a snapshot pair from
    /// different servers degrades to zeros rather than nonsense).
    /// Distribution digests (latency quantiles/max, mean/max batch, max
    /// queue depth) cannot be un-merged from a quantile summary, so the
    /// delta carries `self`'s point-in-time values for those — the
    /// standard trade for scrape-interval dashboards.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let batch_buckets = self
            .batch_buckets
            .iter()
            .map(|&(bound, n)| {
                let before =
                    earlier.batch_buckets.iter().find(|&&(b, _)| b == bound).map_or(0, |&(_, n)| n);
                (bound, n.saturating_sub(before))
            })
            .filter(|&(_, n)| n > 0)
            .collect();
        MetricsSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            errors: self.errors.saturating_sub(earlier.errors),
            batches: self.batches.saturating_sub(earlier.batches),
            shed: self.shed.saturating_sub(earlier.shed),
            deadline_expired: self.deadline_expired.saturating_sub(earlier.deadline_expired),
            worker_restarts: self.worker_restarts.saturating_sub(earlier.worker_restarts),
            latency_p50_us: self.latency_p50_us,
            latency_p95_us: self.latency_p95_us,
            latency_p99_us: self.latency_p99_us,
            latency_max_us: self.latency_max_us,
            mean_batch: self.mean_batch,
            max_batch: self.max_batch,
            batch_buckets,
            max_queue_depth: self.max_queue_depth,
            swaps: self.swaps.saturating_sub(earlier.swaps),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {}  errors: {}  batches: {}",
            self.requests, self.errors, self.batches
        )?;
        writeln!(
            f,
            "degraded shed: {}  deadline_expired: {}  worker_restarts: {}",
            self.shed, self.deadline_expired, self.worker_restarts
        )?;
        writeln!(
            f,
            "latency  p50: {}us  p95: {}us  p99: {}us  max: {}us",
            self.latency_p50_us, self.latency_p95_us, self.latency_p99_us, self.latency_max_us
        )?;
        writeln!(
            f,
            "batch    mean: {:.1}  max: {}  queue depth max: {}  swaps: {}",
            self.mean_batch, self.max_batch, self.max_queue_depth, self.swaps
        )?;
        write!(f, "batch-size histogram (<=bound: count):")?;
        for (bound, n) in &self.batch_buckets {
            write!(f, " <={bound}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_special_cased() {
        // The bucket math lives in crossmine-obs now; this pins the exact
        // semantics serve's report format was built on.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 1);
        // The 100 sample sits in bucket [64, 127] -> upper bound 127.
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 10.9).abs() < 1e-9);
    }

    #[test]
    fn quantile_never_exceeds_one_bucket_of_error() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q) as f64;
            let exact = q * 999.0;
            assert!(est >= exact, "quantile {q} must not under-report: {est} < {exact}");
            assert!(est <= exact.max(1.0) * 2.0, "at most 2x over: {est} vs {exact}");
        }
    }

    #[test]
    fn diff_subtracts_counters_and_buckets() {
        let m = ServeMetrics::new();
        m.requests.fetch_add(10, Ordering::Relaxed);
        m.batches.fetch_add(4, Ordering::Relaxed);
        m.batch_size.record(1);
        let earlier = m.snapshot(1);
        m.requests.fetch_add(5, Ordering::Relaxed);
        m.shed.fetch_add(2, Ordering::Relaxed);
        m.batch_size.record(1);
        m.batch_size.record(2);
        m.latency_us.record(100);
        let later = m.snapshot(3);

        let delta = later.diff(&earlier);
        assert_eq!(delta.requests, 5);
        assert_eq!(delta.batches, 0);
        assert_eq!(delta.shed, 2);
        assert_eq!(delta.swaps, 2);
        // Bucket deltas: one more size-1 batch (bound 1), one size-2
        // (bound 3); the pre-existing size-1 count is subtracted out.
        assert_eq!(delta.batch_buckets, vec![(1, 1), (3, 1)]);
        // Distribution digests are point-in-time from the later snapshot.
        assert_eq!(delta.latency_max_us, later.latency_max_us);
        // Mismatched order saturates to zero instead of wrapping.
        assert_eq!(earlier.diff(&later).requests, 0);
    }

    #[test]
    fn diff_clamps_counter_resets_to_zero() {
        // Regression: a counter that moved *backwards* between snapshots
        // (server restart behind the same scrape identity, registry
        // hot-swap resetting an aggregate) must clamp to 0, not wrap to
        // ~u64::MAX — loadgen's second-half diff feeds these numbers
        // straight into throughput math.
        let before = ServeMetrics::new();
        before.requests.fetch_add(1_000, Ordering::Relaxed);
        before.errors.fetch_add(10, Ordering::Relaxed);
        before.batches.fetch_add(100, Ordering::Relaxed);
        before.shed.fetch_add(7, Ordering::Relaxed);
        before.deadline_expired.fetch_add(3, Ordering::Relaxed);
        before.worker_restarts.fetch_add(2, Ordering::Relaxed);
        before.batch_size.record(8);
        let earlier = before.snapshot(5);
        // The "later" snapshot comes from a fresh aggregate: every counter
        // is behind the earlier one.
        let after = ServeMetrics::new();
        after.requests.fetch_add(4, Ordering::Relaxed);
        let later = after.snapshot(0);
        let delta = later.diff(&earlier);
        assert_eq!(delta.requests, 0, "reset counters clamp, never wrap");
        assert_eq!(delta.errors, 0);
        assert_eq!(delta.batches, 0);
        assert_eq!(delta.shed, 0);
        assert_eq!(delta.deadline_expired, 0);
        assert_eq!(delta.worker_restarts, 0);
        assert_eq!(delta.swaps, 0);
        assert!(delta.batch_buckets.is_empty(), "bucket counts clamp too");
    }

    #[test]
    fn latency_exemplar_joins_p99_bucket_to_a_trace() {
        use crossmine_obs::TraceId;
        let m = ServeMetrics::new();
        for _ in 0..90 {
            m.latency_us.record(50);
            m.latency_exemplars.observe(50, TraceId(1));
        }
        for _ in 0..10 {
            m.latency_us.record(90_000);
            m.latency_exemplars.observe(90_000, TraceId(42));
        }
        let p99 = m.latency_us.quantile(0.99);
        assert_eq!(
            m.latency_exemplars.for_value(p99),
            Some(TraceId(42)),
            "the p99 bucket's exemplar is the slow trace"
        );
    }

    #[test]
    fn snapshot_renders_report() {
        let m = ServeMetrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.batches.fetch_add(2, Ordering::Relaxed);
        m.latency_us.record(80);
        m.latency_us.record(120);
        m.latency_us.record(2000);
        m.batch_size.record(1);
        m.batch_size.record(2);
        m.queue_depth.record(5);
        let snap = m.snapshot(4);
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.swaps, 4);
        assert_eq!(snap.max_queue_depth, 5);
        assert!((snap.mean_batch - 1.5).abs() < 1e-9);
        let text = snap.to_string();
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("swaps: 4"), "{text}");
        assert!(text.contains("batch-size histogram"), "{text}");
    }
}
