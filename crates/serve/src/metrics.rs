//! Serving metrics: atomic counters plus fixed-bucket log₂ histograms.
//!
//! Everything is updated with relaxed atomics on the hot path — a worker
//! never takes a lock to record a latency — and read with a consistent-ish
//! [`MetricsSnapshot`] whose [`Display`](std::fmt::Display) is the text
//! report `loadgen` prints. Quantiles come from a 40-bucket power-of-two
//! histogram: `quantile(q)` returns the upper bound of the bucket holding
//! the q-th ranked sample, i.e. an over-estimate by at most 2×, which is
//! the standard fidelity/footprint trade for serving dashboards.

use std::sync::atomic::{AtomicU64, Ordering};

const NUM_BUCKETS: usize = 40;

/// A lock-free histogram with power-of-two buckets: bucket `i > 0` holds
/// values in `[2^(i-1), 2^i - 1]`; bucket 0 holds zero.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(NUM_BUCKETS - 1)
}

/// Upper bound of bucket `i` (what `quantile` reports).
fn upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket the
    /// ranked sample falls in; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return upper_bound(i);
            }
        }
        self.max()
    }

    /// Per-bucket counts `(upper_bound, count)` for nonempty buckets.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((upper_bound(i), n))
            })
            .collect()
    }
}

/// All serving metrics, shared by every worker of one server.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted to the queue.
    pub requests: AtomicU64,
    /// Replies that could not be delivered (caller dropped its receiver).
    pub errors: AtomicU64,
    /// Batches scored.
    pub batches: AtomicU64,
    /// End-to-end request latency (enqueue → reply), microseconds.
    pub latency_us: Histogram,
    /// Scored batch sizes.
    pub batch_size: Histogram,
    /// Queue depth observed at each admission.
    pub queue_depth: Histogram,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time snapshot (counters are read relaxed; per-field skew
    /// of a few in-flight requests is acceptable for reporting).
    pub fn snapshot(&self, swaps: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            latency_p50_us: self.latency_us.quantile(0.50),
            latency_p95_us: self.latency_us.quantile(0.95),
            latency_p99_us: self.latency_us.quantile(0.99),
            latency_max_us: self.latency_us.max(),
            mean_batch: self.batch_size.mean(),
            max_batch: self.batch_size.max(),
            batch_buckets: self.batch_size.nonempty_buckets(),
            max_queue_depth: self.queue_depth.max(),
            swaps,
        }
    }
}

/// A rendered view of [`ServeMetrics`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted.
    pub requests: u64,
    /// Undeliverable replies.
    pub errors: u64,
    /// Batches scored.
    pub batches: u64,
    /// Median end-to-end latency (µs, bucket upper bound).
    pub latency_p50_us: u64,
    /// 95th-percentile latency (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency (µs).
    pub latency_p99_us: u64,
    /// Worst observed latency (µs, exact).
    pub latency_max_us: u64,
    /// Mean batch size.
    pub mean_batch: f64,
    /// Largest batch scored.
    pub max_batch: u64,
    /// Batch-size distribution as `(bucket upper bound, count)`.
    pub batch_buckets: Vec<(u64, u64)>,
    /// Deepest queue observed at admission.
    pub max_queue_depth: u64,
    /// Model hot-swaps performed.
    pub swaps: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {}  errors: {}  batches: {}",
            self.requests, self.errors, self.batches
        )?;
        writeln!(
            f,
            "latency  p50: {}us  p95: {}us  p99: {}us  max: {}us",
            self.latency_p50_us, self.latency_p95_us, self.latency_p99_us, self.latency_max_us
        )?;
        writeln!(
            f,
            "batch    mean: {:.1}  max: {}  queue depth max: {}  swaps: {}",
            self.mean_batch, self.max_batch, self.max_queue_depth, self.swaps
        )?;
        write!(f, "batch-size histogram (<=bound: count):")?;
        for (bound, n) in &self.batch_buckets {
            write!(f, " <={bound}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_special_cased() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(upper_bound(0), 0);
        assert_eq!(upper_bound(1), 1);
        assert_eq!(upper_bound(3), 7);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 1);
        // The 100 sample sits in bucket [64, 127] -> upper bound 127.
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 10.9).abs() < 1e-9);
    }

    #[test]
    fn quantile_never_exceeds_one_bucket_of_error() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q) as f64;
            let exact = q * 999.0;
            assert!(est >= exact, "quantile {q} must not under-report: {est} < {exact}");
            assert!(est <= exact.max(1.0) * 2.0, "at most 2x over: {est} vs {exact}");
        }
    }

    #[test]
    fn snapshot_renders_report() {
        let m = ServeMetrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.batches.fetch_add(2, Ordering::Relaxed);
        m.latency_us.record(80);
        m.latency_us.record(120);
        m.latency_us.record(2000);
        m.batch_size.record(1);
        m.batch_size.record(2);
        m.queue_depth.record(5);
        let snap = m.snapshot(4);
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.swaps, 4);
        assert_eq!(snap.max_queue_depth, 5);
        assert!((snap.mean_batch - 1.5).abs() < 1e-9);
        let text = snap.to_string();
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("swaps: 4"), "{text}");
        assert!(text.contains("batch-size histogram"), "{text}");
    }
}
