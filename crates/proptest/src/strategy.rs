//! Strategy trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking tree; `generate` draws a
/// single value from the given deterministic generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by the `prop_oneof!` expansion, where an `as`
/// cast cannot perform the unsize coercion).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// A strategy choosing uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `T`: `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Arbitrary finite float in a wide range; NaN/inf excluded on
        // purpose (tests needing them construct them explicitly).
        rng.gen_range(-1.0e12..1.0e12)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}
