//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships a
//! minimal property-testing harness with the same surface the tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and
//! [`any`] strategies, [`collection::vec`], [`prop_oneof!`], [`Just`], and
//! `prop_map`. Failing cases report their inputs; there is **no shrinking**
//! — rerun with the printed inputs to debug.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod num;
pub mod strategy;

pub use strategy::{Arbitrary, BoxedStrategy, Just, Strategy};

/// Non-success outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
    /// `prop_assert!`-family failure with its message.
    Fail(String),
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must accumulate.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic per-(test, case) generator used by the [`proptest!`]
/// expansion. Seeded from an FNV-1a hash of the test path and the case
/// index so every test sees an independent, reproducible stream.
pub fn test_rng(test_path: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::num::f64::NORMAL`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each function runs `config.cases` successful
/// random cases; failures panic with the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    // `#[test]` is captured by the meta repetition (macro_rules cannot match
    // it literally after an attribute repetition without ambiguity) and
    // re-emitted verbatim, along with any doc comments or other attributes.
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut successes: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = cfg.cases.saturating_mul(8).max(64);
                while successes < cfg.cases && attempts < max_attempts {
                    let mut __rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts as u64,
                    );
                    attempts += 1;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    // Captured before the body, which may consume the inputs.
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!("  ", stringify!($arg), " = "));
                            s.push_str(&format!("{:?}\n", &$arg));
                        )+
                        s
                    };
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => successes += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {}:\n{}\ninputs:\n{}",
                            stringify!($name), attempts, msg, __inputs
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

/// Rejects the current case (skipped, not failed) when the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(stringify!($cond)));
        }
    };
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::boxed_strategy($strat) ),+
        ])
    };
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -4i32..=4, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..10, 2..6), w in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), Just(2u32), (5u32..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || x == 2 || (50..80).contains(&x), "unexpected {x}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn normal_floats_are_normal(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_normal(), "{x} not a normal float");
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_rng("mod::case", 3);
        let mut b = crate::test_rng("mod::case", 3);
        let mut c = crate::test_rng("mod::case", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn prop_assert_failures_surface_as_errors() {
        // Exercise the Err path of the assert macros directly.
        fn failing() -> Result<(), crate::TestCaseError> {
            prop_assert!(1 > 2, "one is not greater than two");
            Ok(())
        }
        match failing() {
            Err(crate::TestCaseError::Fail(msg)) => {
                assert!(msg.contains("one is not greater"))
            }
            other => panic!("expected Fail, got {other:?}"),
        }
    }
}
