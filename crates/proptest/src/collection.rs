//! Collection strategies (`proptest::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec`]: a fixed `usize` or a `usize` range.
pub trait IntoSizeRange {
    /// Inclusive min and exclusive max length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end() + 1)
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
