//! Numeric strategies (`prop::num`).

/// `f64` strategies.
pub mod f64 {
    use rand::rngs::StdRng;
    use rand::RngCore;

    use crate::strategy::Strategy;

    /// Generates *normal* floats: finite, non-zero, non-subnormal, either
    /// sign. Mirrors `proptest::num::f64::NORMAL`.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    /// The normal-float strategy instance.
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            let sign = rng.next_u64() & 1;
            // Biased exponent in [1, 2046]: excludes subnormals/zero (0)
            // and inf/NaN (2047). Bias the draw toward mid-range exponents
            // to keep magnitudes testable.
            let exp = 1 + rng.next_u64() % 2046;
            let mantissa = rng.next_u64() >> 12;
            f64::from_bits((sign << 63) | (exp << 52) | mantissa)
        }
    }
}
