//! Negative-tuple sampling (§6).
//!
//! Before a clause is built, the negative tuples are down-sampled so that at
//! most `NEG_POS_RATIO · P` (capped at `MAX_NUM_NEGATIVE`) remain. Clause
//! accuracy is then computed with a *safe* estimate of the number of
//! negatives the clause would cover on the full set: find `n` such that the
//! observed sample count `n'` is at the 10th percentile of
//! `Binomial(N', n/N)` under the normal approximation (eq. 5), i.e. solve
//!
//! ```text
//! (1 + 1.64/N') x² − (2d + 1.64/N') x + d² = 0 ,   d = n'/N' ,  x = n/N
//! ```
//!
//! (eq. 6) and take the **larger** root `x₂` (the positive square root), so
//! that `n = x₂·N` is unlikely to be an underestimate.

use rand::seq::SliceRandom;
use rand::Rng;

use crossmine_relational::Row;

use crate::idset::TargetSet;
use crate::params::CrossMineParams;

/// The number of negatives the sampler keeps for `pos` positives under the
/// paper's two constraints.
pub fn negative_cap(pos: usize, params: &CrossMineParams) -> usize {
    let ratio_cap = (params.neg_pos_ratio * pos as f64).floor() as usize;
    ratio_cap.min(params.max_num_negative)
}

/// Down-samples the negatives of `remaining` to [`negative_cap`], keeping
/// every positive. Returns the sampled target set and the number of
/// negatives kept; when no sampling is needed the set is returned unchanged.
pub fn sample_negatives(
    remaining: &TargetSet,
    is_pos: &[bool],
    params: &CrossMineParams,
    rng: &mut impl Rng,
) -> (TargetSet, usize) {
    let cap = negative_cap(remaining.pos(), params);
    if remaining.neg() <= cap {
        params.obs.add("sampling.rounds_skipped", 1);
        return (remaining.clone(), remaining.neg());
    }
    let mut negatives: Vec<Row> = remaining.iter().filter(|r| !is_pos[r.0 as usize]).collect();
    negatives.shuffle(rng);
    negatives.truncate(cap);
    let rows: Vec<Row> = remaining
        .iter()
        .filter(|r| is_pos[r.0 as usize])
        .chain(negatives.iter().copied())
        .collect();
    let sampled = TargetSet::from_rows(is_pos, rows);
    let kept = sampled.neg();
    params.obs.add("sampling.rounds", 1);
    params.obs.add("sampling.negatives_dropped", (remaining.neg() - kept) as u64);
    params.obs.record("sampling.negatives_kept", kept as u64);
    (sampled, kept)
}

/// The safe estimate of the full-set negative support `n` given that `n_obs`
/// of the `n_sampled` sampled negatives satisfy the clause, out of `n_full`
/// total negatives (eq. 5/6). Returns `n_obs` unchanged when no sampling
/// happened.
pub fn safe_negative_estimate(n_obs: usize, n_sampled: usize, n_full: usize) -> f64 {
    if n_sampled == 0 || n_full <= n_sampled {
        return n_obs as f64;
    }
    let d = n_obs as f64 / n_sampled as f64;
    let k = 1.64 / n_sampled as f64; // 1.28² / N'
                                     // (1 + k) x² − (2d + k) x + d² = 0
    let a = 1.0 + k;
    let b = -(2.0 * d + k);
    let c = d * d;
    let disc = (b * b - 4.0 * a * c).max(0.0);
    let x2 = (-b + disc.sqrt()) / (2.0 * a); // larger root = positive sqrt branch
    (x2 * n_full as f64).min(n_full as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cap_respects_both_limits() {
        let p = CrossMineParams::default(); // ratio 1.0, max 600
        assert_eq!(negative_cap(50, &p), 50);
        assert_eq!(negative_cap(1000, &p), 600);
        let p2 = CrossMineParams::builder().neg_pos_ratio(2.0).build().unwrap();
        assert_eq!(negative_cap(100, &p2), 200);
    }

    #[test]
    fn sampling_noop_when_balanced() {
        let is_pos = vec![true, true, false];
        let all = TargetSet::all(&is_pos);
        let mut rng = StdRng::seed_from_u64(1);
        let (s, kept) = sample_negatives(&all, &is_pos, &CrossMineParams::default(), &mut rng);
        assert_eq!(s, all);
        assert_eq!(kept, 1);
    }

    #[test]
    fn sampling_downsamples_negatives_keeps_positives() {
        let mut is_pos = vec![true; 10];
        is_pos.extend(vec![false; 100]);
        let all = TargetSet::all(&is_pos);
        let mut rng = StdRng::seed_from_u64(7);
        let (s, kept) = sample_negatives(&all, &is_pos, &CrossMineParams::default(), &mut rng);
        assert_eq!(s.pos(), 10);
        assert_eq!(s.neg(), 10);
        assert_eq!(kept, 10);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut is_pos = vec![true; 5];
        is_pos.extend(vec![false; 50]);
        let all = TargetSet::all(&is_pos);
        let p = CrossMineParams::default();
        let (a, _) = sample_negatives(&all, &is_pos, &p, &mut StdRng::seed_from_u64(3));
        let (b, _) = sample_negatives(&all, &is_pos, &p, &mut StdRng::seed_from_u64(3));
        let (c, _) = sample_negatives(&all, &is_pos, &p, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely with 50-choose-5 subsets
    }

    #[test]
    fn safe_estimate_no_sampling_passthrough() {
        assert_eq!(safe_negative_estimate(7, 100, 100), 7.0);
        assert_eq!(safe_negative_estimate(7, 0, 100), 7.0);
    }

    #[test]
    fn safe_estimate_exceeds_naive_scaling() {
        // Naive: n ≈ n'·N/N' = 5·1000/100 = 50. The safe estimate must be
        // larger (we picked the larger root: the clause could have been
        // lucky on the sample).
        let n = safe_negative_estimate(5, 100, 1000);
        assert!(n > 50.0, "safe estimate {n} should exceed naive 50");
        assert!(n < 1000.0);
    }

    #[test]
    fn safe_estimate_zero_observed_is_still_positive() {
        // Even observing 0 of 100 sampled negatives, the safe estimate
        // charges some negatives on the full 1000.
        let n = safe_negative_estimate(0, 100, 1000);
        assert!(n > 0.0);
        assert!(n < 100.0);
    }

    #[test]
    fn safe_estimate_converges_with_large_samples() {
        // With a huge sample the correction term vanishes: n -> n'·N/N'.
        let n = safe_negative_estimate(5_000, 100_000, 1_000_000);
        let naive = 50_000.0;
        assert!((n - naive).abs() / naive < 0.02, "{n} vs {naive}");
    }

    #[test]
    fn safe_estimate_monotone_in_observed() {
        let a = safe_negative_estimate(1, 100, 1000);
        let b = safe_negative_estimate(10, 100, 1000);
        let c = safe_negative_estimate(50, 100, 1000);
        assert!(a < b && b < c);
    }

    #[test]
    fn safe_estimate_capped_at_full_count() {
        assert!(safe_negative_estimate(100, 100, 1000) <= 1000.0);
    }

    #[test]
    fn quadratic_satisfies_eq5() {
        // Verify the chosen root satisfies eq. (5) with the paper's rounded
        // constant (eq. 6 uses 1.64 ≈ 1.28²):
        // d = x − √1.64·sqrt(x(1−x)/N′).
        let n_obs = 20;
        let n_sampled = 200;
        let n_full = 10_000;
        let x = safe_negative_estimate(n_obs, n_sampled, n_full) / n_full as f64;
        let d = n_obs as f64 / n_sampled as f64;
        let rhs = x - 1.64_f64.sqrt() * (x * (1.0 - x) / n_sampled as f64).sqrt();
        assert!((d - rhs).abs() < 1e-9, "d={d} rhs={rhs}");
    }
}
