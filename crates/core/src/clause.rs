//! Clauses: lists of complex literals with a predicted class (§3.3).

use crossmine_relational::{ClassLabel, DatabaseSchema};

use crate::gain::laplace_accuracy;
use crate::literal::ComplexLiteral;

/// A learned clause: `target(label) :- literal, literal, ...` plus the
/// bookkeeping CrossMine needs for prediction (estimated accuracy, eq. 3/4)
/// and diagnostics (training support).
#[derive(Debug, Clone)]
pub struct Clause {
    /// The complex literals, in the order they were appended.
    pub literals: Vec<ComplexLiteral>,
    /// The class this clause predicts.
    pub label: ClassLabel,
    /// Positive training tuples satisfying the clause when it was built.
    pub sup_pos: usize,
    /// Negative training tuples satisfying the clause (estimated from the
    /// sample when negative sampling was used, hence fractional — §6).
    pub sup_neg: f64,
    /// Laplace accuracy estimate used to rank clauses at prediction time.
    pub accuracy: f64,
}

impl Clause {
    /// Builds a clause, computing its accuracy with eq. (3)/(4).
    pub fn new(
        literals: Vec<ComplexLiteral>,
        label: ClassLabel,
        sup_pos: usize,
        sup_neg: f64,
        num_classes: usize,
    ) -> Self {
        Clause {
            literals,
            label,
            sup_pos,
            sup_neg,
            accuracy: laplace_accuracy(sup_pos, sup_neg, num_classes),
        }
    }

    /// Number of complex literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True when the clause body is empty.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Renders the clause in the paper's notation, e.g.
    /// `Loan(+) :- [Loan.account_id -> Account.account_id, Account.frequency = monthly]`.
    pub fn display(&self, schema: &DatabaseSchema) -> String {
        let head = match schema.target {
            Some(t) => schema.relation(t).name.clone(),
            None => "target".to_string(),
        };
        let body: Vec<String> = self.literals.iter().map(|l| l.display(schema)).collect();
        format!("{}({}) :- {}", head, self.label, body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::{CmpOp, Constraint, ConstraintKind};
    use crossmine_relational::{AttrId, AttrType, Attribute, RelId, RelationSchema};

    fn schema() -> DatabaseSchema {
        let mut s = DatabaseSchema::new();
        let mut t = RelationSchema::new("Loan");
        t.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        t.add_attribute(Attribute::new("amount", AttrType::Numerical)).unwrap();
        let tid = s.add_relation(t).unwrap();
        s.set_target(tid);
        s
    }

    fn lit(rel: RelId) -> ComplexLiteral {
        ComplexLiteral::local(Constraint {
            rel,
            kind: ConstraintKind::Num { attr: AttrId(1), op: CmpOp::Ge, threshold: 100.0 },
        })
    }

    #[test]
    fn accuracy_computed_on_construction() {
        let c = Clause::new(vec![], ClassLabel::POS, 9, 0.0, 2);
        assert!((c.accuracy - 10.0 / 11.0).abs() < 1e-12);
        assert!(c.is_empty());
    }

    #[test]
    fn fractional_negative_support() {
        let c = Clause::new(vec![], ClassLabel::POS, 10, 2.5, 2);
        assert!((c.accuracy - 11.0 / 14.5).abs() < 1e-12);
    }

    #[test]
    fn display_notation() {
        let s = schema();
        let c = Clause::new(vec![lit(RelId(0))], ClassLabel::POS, 3, 1.0, 2);
        assert_eq!(c.display(&s), "Loan(+) :- [Loan.amount >= 100]");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn higher_support_ranks_higher_at_equal_purity() {
        let small = Clause::new(vec![], ClassLabel::POS, 2, 0.0, 2);
        let big = Clause::new(vec![], ClassLabel::POS, 50, 0.0, 2);
        assert!(big.accuracy > small.accuracy);
    }
}
