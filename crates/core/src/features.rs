//! Propositionalization: CrossMine clauses as features (§9's future work).
//!
//! The paper closes with: "it is interesting to study how to integrate
//! CrossMine methodology with other classification methods (such as SVM,
//! Neural Networks, and k-nearest neighbors) in the multi-relational
//! environment". This module implements that bridge: every learned clause
//! becomes a binary feature (does the target tuple satisfy it?), turning a
//! multi-relational problem into a flat one that any statistical learner
//! can consume — here demonstrated with the bundled logistic regression
//! ([`crate::logistic`]) as [`CrossMineHybrid`].

use crossmine_relational::{ClassLabel, Database, Row};

use crate::classifier::{CrossMine, CrossMineModel};
use crate::eval::RelationalClassifier;
use crate::logistic::LogisticRegression;
use crate::params::CrossMineParams;

/// Builds the clause-indicator feature matrix for `rows`: one row per
/// target tuple, one 0/1 column per clause of `model` (clause order).
pub fn propositionalize(model: &CrossMineModel, db: &Database, rows: &[Row]) -> Vec<Vec<f64>> {
    let mut matrix = vec![vec![0.0; model.clauses.len()]; rows.len()];
    let mut slot_of: Vec<Option<usize>> = vec![None; db.num_targets()];
    for (i, r) in rows.iter().enumerate() {
        slot_of[r.0 as usize] = Some(i);
    }
    for (j, clause) in model.clauses.iter().enumerate() {
        for r in model.satisfiers(db, clause, rows) {
            if let Some(i) = slot_of[r.0 as usize] {
                matrix[i][j] = 1.0;
            }
        }
    }
    matrix
}

/// The §9 hybrid: CrossMine learns the clauses, a logistic regression
/// weighs them. Binary problems only (the positive class is the largest
/// label, as elsewhere).
#[derive(Debug, Clone)]
pub struct CrossMineHybrid {
    /// Parameters of the underlying clause learner.
    pub params: CrossMineParams,
    /// Gradient-descent epochs for the logistic head.
    pub epochs: usize,
    /// Learning rate for the logistic head.
    pub learning_rate: f64,
}

impl Default for CrossMineHybrid {
    fn default() -> Self {
        CrossMineHybrid { params: CrossMineParams::default(), epochs: 200, learning_rate: 0.5 }
    }
}

/// A trained hybrid model.
#[derive(Debug, Clone)]
pub struct CrossMineHybridModel {
    /// The clause set providing the features.
    pub clauses: CrossMineModel,
    /// The logistic head over clause indicators.
    pub head: LogisticRegression,
    /// The label predicted at probability ≥ 0.5.
    pub pos_label: ClassLabel,
    /// The other label.
    pub neg_label: ClassLabel,
}

impl CrossMineHybrid {
    /// Trains clauses then the logistic head on their indicators.
    ///
    /// # Errors
    ///
    /// Same validation as [`CrossMine::fit`]: no target relation, empty
    /// training set, unlabeled or out-of-range rows.
    pub fn fit(
        &self,
        db: &Database,
        train_rows: &[Row],
    ) -> Result<CrossMineHybridModel, crossmine_relational::RelationalError> {
        let clauses = CrossMine::new(self.params.clone()).fit(db, train_rows)?;
        let mut labels: Vec<ClassLabel> = train_rows.iter().map(|&r| db.label(r)).collect();
        labels.sort();
        labels.dedup();
        let pos_label = labels.last().copied().unwrap_or(ClassLabel::POS);
        let neg_label = labels.first().copied().unwrap_or(ClassLabel::NEG);

        let x = propositionalize(&clauses, db, train_rows);
        let y: Vec<f64> =
            train_rows.iter().map(|&r| if db.label(r) == pos_label { 1.0 } else { 0.0 }).collect();
        let mut head = LogisticRegression::new(clauses.clauses.len());
        head.fit(&x, &y, self.epochs, self.learning_rate);
        Ok(CrossMineHybridModel { clauses, head, pos_label, neg_label })
    }
}

impl CrossMineHybridModel {
    /// Predicted probability of the positive class for each row.
    pub fn predict_proba(&self, db: &Database, rows: &[Row]) -> Vec<f64> {
        let x = propositionalize(&self.clauses, db, rows);
        x.iter().map(|f| self.head.predict_proba(f)).collect()
    }

    /// Hard predictions at the 0.5 threshold.
    pub fn predict(&self, db: &Database, rows: &[Row]) -> Vec<ClassLabel> {
        self.predict_proba(db, rows)
            .into_iter()
            .map(|p| if p >= 0.5 { self.pos_label } else { self.neg_label })
            .collect()
    }
}

impl RelationalClassifier for CrossMineHybrid {
    fn train_predict(
        &self,
        db: &Database,
        train_rows: &[Row],
        test_rows: &[Row],
    ) -> Vec<ClassLabel> {
        // The trait is infallible by design (harness code hands it validated
        // folds); the inherent `fit` validates and returns `Result`.
        let model = self.fit(db, train_rows).expect("cross-validation folds are valid rows");
        model.predict(db, test_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossmine_relational::{AttrType, Attribute, DatabaseSchema, RelationSchema, Value};

    fn simple_db(n: u64) -> Database {
        let mut schema = DatabaseSchema::new();
        let mut t = RelationSchema::new("T");
        t.add_attribute(Attribute::new("id", AttrType::PrimaryKey)).unwrap();
        let mut c = Attribute::new("c", AttrType::Categorical);
        c.intern("a");
        c.intern("b");
        t.add_attribute(c).unwrap();
        let tid = schema.add_relation(t).unwrap();
        schema.set_target(tid);
        let mut db = Database::new(schema).unwrap();
        for i in 0..n {
            db.push_row(tid, vec![Value::Key(i), Value::Cat((i % 2) as u32)]).unwrap();
            db.push_label(if i % 2 == 0 { ClassLabel::POS } else { ClassLabel::NEG });
        }
        db
    }

    #[test]
    fn features_are_clause_indicators() {
        let db = simple_db(40);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = CrossMine::default().fit(&db, &rows).unwrap();
        let x = propositionalize(&model, &db, &rows);
        assert_eq!(x.len(), rows.len());
        for (i, feats) in x.iter().enumerate() {
            assert_eq!(feats.len(), model.clauses.len());
            for (j, clause) in model.clauses.iter().enumerate() {
                let satisfied = model.satisfiers(&db, clause, &rows).contains(&rows[i]);
                assert_eq!(feats[j] == 1.0, satisfied, "row {i} clause {j}");
            }
        }
    }

    #[test]
    fn hybrid_solves_separable_data() {
        let db = simple_db(60);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let (train, test): (Vec<Row>, Vec<Row>) = rows.iter().partition(|r| r.0 % 3 != 0);
        let model = CrossMineHybrid::default().fit(&db, &train).unwrap();
        let preds = model.predict(&db, &test);
        let correct = preds.iter().zip(&test).filter(|(p, r)| **p == db.label(**r)).count();
        assert_eq!(correct, test.len());
    }

    #[test]
    fn probabilities_are_calibrated_direction() {
        let db = simple_db(60);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let model = CrossMineHybrid::default().fit(&db, &rows).unwrap();
        let probs = model.predict_proba(&db, &rows);
        for (r, p) in rows.iter().zip(&probs) {
            if db.label(*r) == ClassLabel::POS {
                assert!(*p > 0.5, "positive row should get p > 0.5, got {p}");
            } else {
                assert!(*p < 0.5, "negative row should get p < 0.5, got {p}");
            }
        }
    }

    #[test]
    fn hybrid_with_no_clauses_falls_back_to_prior() {
        let db = simple_db(20);
        let rows: Vec<Row> = db.relation(db.target().unwrap()).iter_rows().collect();
        let hybrid = CrossMineHybrid {
            params: CrossMineParams::builder().min_foil_gain(1e9).build().unwrap(),
            ..Default::default()
        };
        let model = hybrid.fit(&db, &rows).unwrap();
        assert_eq!(model.clauses.num_clauses(), 0);
        // With no features the head predicts the bias; predictions are a
        // single constant class.
        let preds = model.predict(&db, &rows);
        assert!(preds.windows(2).all(|w| w[0] == w[1]));
    }
}
